//! Sharded-store tests: disk layout compatibility, cross-shard crash
//! atomicity (the multi-WAL extension of the PR 1 torn-WAL test), and
//! the global-commit-version invariants the closure cache and snapshots
//! rely on.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_core::{keyspace, ClosureStrategy, Pass, PassConfig};
use pass_index::{Direction, TraverseOpts};
use pass_model::{
    keys, Attributes, ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp, ToolDescriptor,
    TupleSet, TupleSetId,
};
use pass_storage::tempdir::TempDir;
use pass_storage::{
    EngineOptions, KvStore, LsmEngine, ShardedStore, StorageError, SyncPolicy, WriteBatch,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn mk(seq: i64) -> TupleSet {
    let at = Timestamp(seq as u64 * 1_000);
    let readings = vec![Reading::new(SensorId(0), at).with("v", seq)];
    let attrs = Attributes::new().with(keys::DOMAIN, "shardtest").with("seq", seq);
    let record = ProvenanceBuilder::new(SiteId(9), at)
        .attrs(&attrs)
        .build(TupleSet::content_digest_of(&readings));
    TupleSet::new(record, readings).expect("digest matches by construction")
}

/// First generated tuple set landing on `shard` (of `shards`).
fn mk_on_shard(shard: usize, shards: usize, salt: i64) -> TupleSet {
    (0..10_000)
        .map(|i| mk(salt * 10_000 + i))
        .find(|ts| keyspace::shard_of(ts.provenance.id, shards) == shard)
        .expect("hash reaches every shard well before 10k draws")
}

// ---------------------------------------------------------------------------
// Layout compatibility
// ---------------------------------------------------------------------------

#[test]
fn shards_one_layout_is_byte_compatible_with_pre_shard_store() {
    let dir = TempDir::new("shard-compat-1");
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(1)).unwrap();
    pass.ingest(&mk(1)).unwrap();
    drop(pass);
    // Exactly the pre-sharding files: engine rooted at the store dir,
    // no SHARDS marker, no shard subdirectories, no intent log.
    assert!(dir.path().join("wal.log").exists());
    assert!(!dir.path().join("SHARDS").exists());
    assert!(!dir.path().join("shard-00").exists());
    assert!(!dir.path().join("xcommit.log").exists());
}

#[test]
fn pre_shard_store_reopens_as_single_shard_despite_config() {
    let dir = TempDir::new("shard-compat-reopen");
    // A store created before sharding existed (default config).
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).unwrap();
    let id = pass.ingest(&mk(7)).unwrap();
    drop(pass);

    // Reopening with shards = 4 must honor the on-disk layout, not the
    // config: same single engine, same data, nothing repartitioned.
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(4)).unwrap();
    assert_eq!(pass.shards(), 1, "persisted layout wins over config");
    assert!(pass.contains(id));
    assert_eq!(pass.get_data(id).unwrap().unwrap().len(), 1);
    assert!(!dir.path().join("shard-00").exists(), "no shard dirs sprouted");
    assert!(!dir.path().join("SHARDS").exists());
    pass.ingest(&mk(8)).unwrap();
    assert!(pass.verify_consistency().unwrap().is_consistent());
}

#[test]
fn sharded_layout_persists_across_reopen() {
    let dir = TempDir::new("shard-layout");
    let sets: Vec<TupleSet> = (0..32).map(mk).collect();
    let ids: Vec<TupleSetId> = sets.iter().map(|ts| ts.provenance.id).collect();
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(4)).unwrap();
    assert_eq!(pass.shards(), 4);
    pass.ingest_batch(&sets).unwrap();
    drop(pass);
    assert!(dir.path().join("SHARDS").exists());
    assert!(dir.path().join("shard-00").join("wal.log").exists());

    // Reopen with a *different* configured count: layout wins.
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(1)).unwrap();
    assert_eq!(pass.shards(), 4);
    for id in &ids {
        assert!(pass.contains(*id));
        assert!(pass.has_data(*id));
    }
    assert!(pass.verify_consistency().unwrap().is_consistent());
}

#[test]
fn cross_shard_batch_survives_reopen_consistently() {
    let dir = TempDir::new("shard-xbatch");
    let sets: Vec<TupleSet> = (100..164).map(mk).collect();
    // The batch really spans shards.
    let shards_hit: std::collections::HashSet<usize> =
        sets.iter().map(|ts| keyspace::shard_of(ts.provenance.id, 4)).collect();
    assert!(shards_hit.len() > 1, "corpus must span shards");

    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(4)).unwrap();
    pass.ingest_batch(&sets).unwrap();
    drop(pass);

    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).unwrap();
    assert_eq!(pass.len(), sets.len());
    for ts in &sets {
        assert_eq!(
            pass.get_data(ts.provenance.id).unwrap().as_deref(),
            Some(&ts.readings[..]),
            "readings round-trip through the shard engines"
        );
    }
    assert!(pass.verify_consistency().unwrap().is_consistent());
    // The completed commit left no pending intent behind.
    let xlog = dir.path().join("xcommit.log");
    assert!(!xlog.exists() || std::fs::metadata(&xlog).unwrap().len() == 0);
}

// ---------------------------------------------------------------------------
// Cross-shard crash injection
// ---------------------------------------------------------------------------

/// A shard engine that "dies" on command: applies fail as if the
/// process had been killed mid-commit (the write never reaches this
/// shard's WAL).
struct DyingShard {
    inner: LsmEngine,
    dead: AtomicBool,
}

impl DyingShard {
    fn alive(inner: LsmEngine) -> Self {
        DyingShard { inner, dead: AtomicBool::new(false) }
    }
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }
}

impl KvStore for DyingShard {
    fn get(&self, key: &[u8]) -> pass_storage::Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }
    fn apply(&self, batch: WriteBatch) -> pass_storage::Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(StorageError::io(
                "injected crash before shard WAL append",
                std::io::Error::other("killed"),
            ));
        }
        self.inner.apply(batch)
    }
    fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> pass_storage::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan_range(start, end)
    }
    fn flush(&self) -> pass_storage::Result<()> {
        self.inner.flush()
    }
}

/// Builds an injection harness over an existing 2-shard store directory:
/// shard 0 is healthy, shard 1 can be killed mid-commit.
fn injection_store(dir: &std::path::Path) -> (Arc<ShardedStore>, Arc<DyingShard>) {
    let opts = EngineOptions::default();
    let healthy: Arc<dyn KvStore> =
        Arc::new(LsmEngine::open(dir.join("shard-00"), opts.clone()).unwrap());
    let dying = Arc::new(DyingShard::alive(LsmEngine::open(dir.join("shard-01"), opts).unwrap()));
    let shards: Vec<Arc<dyn KvStore>> = vec![healthy, Arc::clone(&dying) as Arc<dyn KvStore>];
    let store = ShardedStore::open(
        shards,
        Box::new(|key: &[u8]| keyspace::shard_of_key(key, 2)),
        Some(dir.join("xcommit.log")),
        SyncPolicy::OnWrite,
    )
    .unwrap();
    (Arc::new(store), dying)
}

fn triple(ts: &TupleSet) -> WriteBatch {
    use pass_model::codec::Encode;
    let mut batch = WriteBatch::new();
    let id = ts.provenance.id;
    let mut data_buf = Vec::new();
    ts.readings.encode_into(&mut data_buf);
    batch.put(keyspace::key(keyspace::RECORD, id).to_vec(), ts.provenance.encode_to_vec());
    batch.put(keyspace::key(keyspace::DATA, id).to_vec(), data_buf);
    batch.put(keyspace::key(keyspace::MARKER, id).to_vec(), vec![1u8]);
    batch
}

/// The multi-WAL extension of PR 1's torn-WAL test: a crash *between*
/// the per-shard WAL appends of a cross-shard commit — shard 0 applied,
/// shard 1 never did — must recover to the whole commit (the intent was
/// durable: roll forward), never to a torn half.
#[test]
fn crash_between_shard_wal_appends_rolls_forward() {
    let dir = TempDir::new("shard-crash-forward");
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(2)).unwrap();
    let baseline = pass.ingest(&mk(1)).unwrap();
    pass.flush().unwrap();
    drop(pass);

    let on0 = mk_on_shard(0, 2, 2);
    let on1 = mk_on_shard(1, 2, 3);
    let (store, dying) = injection_store(dir.path());
    dying.kill();
    let parts = vec![(0usize, triple(&on0)), (1usize, triple(&on1))];
    let err = store.apply_split(parts).expect_err("shard 1 dies mid-commit");
    assert!(err.to_string().contains("injected crash"), "unexpected error: {err}");
    drop(store);
    drop(dying);

    // The tear is real: shard 0's WAL has its half, shard 1's does not.
    let s0 = LsmEngine::open(dir.path().join("shard-00"), EngineOptions::default()).unwrap();
    let s1 = LsmEngine::open(dir.path().join("shard-01"), EngineOptions::default()).unwrap();
    assert!(s0.get(&keyspace::key(keyspace::RECORD, on0.provenance.id)).unwrap().is_some());
    assert!(s1.get(&keyspace::key(keyspace::RECORD, on1.provenance.id)).unwrap().is_none());
    drop((s0, s1));

    // Reopen: recovery replays the durable intent — all, not half.
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).unwrap();
    assert_eq!(pass.shards(), 2);
    for id in [baseline, on0.provenance.id, on1.provenance.id] {
        assert!(pass.contains(id), "commit is all-or-nothing: ALL after durable intent");
        assert!(pass.has_data(id));
    }
    assert!(pass.verify_consistency().unwrap().is_consistent());
}

/// The other half of all-or-nothing: a crash *during* the intent append
/// (torn intent record, no shard touched) must recover to NONE of the
/// commit.
#[test]
fn torn_cross_shard_intent_recovers_to_nothing() {
    let dir = TempDir::new("shard-crash-none");
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(2)).unwrap();
    let baseline = pass.ingest(&mk(1)).unwrap();
    pass.flush().unwrap();
    drop(pass);

    let on0 = mk_on_shard(0, 2, 4);
    let on1 = mk_on_shard(1, 2, 5);
    // Kill *both* shard applies so the durable intent is the only trace
    // of the commit, then tear it: every truncation point inside the
    // intent record must discard the whole commit.
    let (store, dying) = injection_store(dir.path());
    dying.kill();
    let block0 = triple(&on0);
    let err = store
        .apply_split(vec![(1usize, triple(&on1)), (0usize, block0)])
        .expect_err("first (dying) shard fails");
    assert!(err.to_string().contains("injected crash"));
    drop(store);
    drop(dying);

    let xlog = dir.path().join("xcommit.log");
    let full = std::fs::metadata(&xlog).unwrap().len();
    assert!(full > 8, "intent record was written");
    for cut in [4u64, 8, full / 2, full - 1] {
        let bytes = std::fs::read(&xlog).unwrap();
        std::fs::write(&xlog, &bytes[..cut as usize]).unwrap();

        let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).unwrap();
        assert!(pass.contains(baseline));
        assert!(!pass.contains(on0.provenance.id), "cut at {cut}: torn intent must not apply");
        assert!(!pass.contains(on1.provenance.id), "cut at {cut}");
        assert!(pass.verify_consistency().unwrap().is_consistent());
        drop(pass);
        // Recovery cleared the torn log; restore the full bytes to test
        // the next truncation point.
        assert_eq!(std::fs::metadata(&xlog).map(|m| m.len()).unwrap_or(0), 0, "cut at {cut}");
        std::fs::write(&xlog, &bytes).unwrap();
    }

    // Un-truncated, the durable intent rolls forward as usual.
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).unwrap();
    assert!(pass.contains(on0.provenance.id));
    assert!(pass.contains(on1.provenance.id));
    assert!(pass.verify_consistency().unwrap().is_consistent());
}

// ---------------------------------------------------------------------------
// Global commit version: closure cache + snapshots
// ---------------------------------------------------------------------------

/// Regression (ISSUE 6 satellite): the shared closure cache keys on the
/// *global* commit version, so a cross-shard commit can never pair a
/// stale closure with a new version — a snapshot taken after the commit
/// must see the grown closure, and an older snapshot must keep its own.
#[test]
fn closure_cache_tracks_global_version_across_cross_shard_commits() {
    let config = PassConfig::memory(SiteId(1)).with_shards(4).with_closure(ClosureStrategy::Memo);
    let pass = Pass::open(config).unwrap();
    let root = pass
        .capture(Attributes::new().with(keys::DOMAIN, "roots"), Vec::new(), Timestamp(1))
        .unwrap();

    let s1 = pass.snapshot();
    let lin1 = s1.lineage(root, Direction::Descendants, TraverseOpts::default()).unwrap();
    assert!(lin1.is_empty(), "no descendants yet");

    // One cross-shard batch of children of the root.
    let tool = ToolDescriptor::new("xform", "1.0");
    let children: Vec<TupleSet> = (0..16)
        .map(|i| {
            let at = Timestamp(100 + i);
            let readings = vec![Reading::new(SensorId(1), at).with("v", i as i64)];
            let record = ProvenanceBuilder::new(SiteId(1), at)
                .attr("seq", i as i64)
                .derived_from(root, tool.clone())
                .build(TupleSet::content_digest_of(&readings));
            TupleSet::new(record, readings).unwrap()
        })
        .collect();
    let spans: std::collections::HashSet<usize> =
        children.iter().map(|ts| pass.shard_of(ts.provenance.id)).collect();
    assert!(spans.len() > 1, "batch must span shards");
    pass.ingest_batch(&children).unwrap();

    let s2 = pass.snapshot();
    assert!(s2.version() > s1.version(), "global version advanced");
    let lin2 = s2.lineage(root, Direction::Descendants, TraverseOpts::default()).unwrap();
    assert_eq!(lin2.len(), children.len(), "fresh snapshot sees the whole cross-shard commit");

    // The old snapshot still answers from its own version — the cache
    // rebuilt for v2 must not leak into v1 (and vice versa).
    let lin1_again = s1.lineage(root, Direction::Descendants, TraverseOpts::default()).unwrap();
    assert!(lin1_again.is_empty(), "stale snapshot keeps its pinned closure");
    let lin2_again = s2.lineage(root, Direction::Descendants, TraverseOpts::default()).unwrap();
    assert_eq!(lin2_again.len(), children.len());
}

/// A sharded memory store answers exactly like the single-shard store:
/// same records, same readings, same query results.
#[test]
fn sharded_store_is_semantically_identical_to_single_shard() {
    let sets: Vec<TupleSet> = (0..64).map(mk).collect();
    let single = Pass::open_memory(SiteId(1));
    let sharded = Pass::open(PassConfig::memory(SiteId(1)).with_shards(4)).unwrap();
    single.ingest_batch(&sets).unwrap();
    sharded.ingest_batch(&sets).unwrap();

    let mut ids_a = single.ids();
    let mut ids_b = sharded.ids();
    ids_a.sort_unstable();
    ids_b.sort_unstable();
    assert_eq!(ids_a, ids_b);
    for id in &ids_a {
        assert_eq!(single.get_data(*id).unwrap(), sharded.get_data(*id).unwrap());
    }
    let q = r#"FIND WHERE seq >= 10 AND seq < 20"#;
    assert_eq!(
        single.query_text(q).unwrap().records.len(),
        sharded.query_text(q).unwrap().records.len()
    );
    assert!(sharded.verify_consistency().unwrap().is_consistent());
}
