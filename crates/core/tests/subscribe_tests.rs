//! Subscription tests: the snapshot-then-tail handoff must deliver
//! exactly the records a final re-query returns — no gap, no duplicate,
//! in commit order — even when the subscription opens mid-ingest, and a
//! stalled consumer must lag, never block ingest.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use crossbeam::thread;
use pass_core::{Event, Pass};
use pass_model::{
    keys, Attributes, ProvenanceRecord, Reading, SensorId, SiteId, Timestamp, ToolDescriptor,
    TupleSetId,
};
use pass_query::{parse, parse_subscribe};
use proptest::prelude::*;
use std::time::Duration;

fn items(worker: u64, range: std::ops::Range<u64>) -> Vec<(Attributes, Vec<Reading>, Timestamp)> {
    range
        .map(|i| {
            let at = Timestamp(worker * 1_000_000 + i);
            let attrs = Attributes::new()
                .with(keys::DOMAIN, "traffic")
                .with("worker", worker as i64)
                .with("seq", i as i64);
            (attrs, vec![Reading::new(SensorId(worker), at).with("v", i as i64)], at)
        })
        .collect()
}

/// Drains a subscription until `CaughtUp`, returning the catch-up
/// records.
fn drain_catch_up(sub: &mut pass_core::Subscription) -> Vec<ProvenanceRecord> {
    let mut out = Vec::new();
    loop {
        match sub.next_timeout(Duration::from_secs(5)).expect("catch-up never times out") {
            Event::Match(r) => out.push(r),
            Event::CaughtUp { .. } => return out,
            Event::Lagged(n) => panic!("lagged {n} during catch-up"),
        }
    }
}

#[test]
fn catch_up_then_tail_delivers_everything_once() {
    let pass = Pass::open_memory(SiteId(1));
    pass.capture_batch(items(1, 0..10)).expect("pre-subscribe batch");

    let mut sub = pass.subscribe(&parse("FIND WHERE worker = 1").unwrap()).expect("subscribe");
    let catch_up = drain_catch_up(&mut sub);
    assert_eq!(catch_up.len(), 10, "catch-up covers the pre-subscribe commits");

    pass.capture_batch(items(1, 10..15)).expect("tail batch");
    pass.capture_batch(items(2, 0..5)).expect("non-matching batch");

    let mut tail = Vec::new();
    while let Some(event) = sub.try_next() {
        match event {
            Event::Match(r) => tail.push(r),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(tail.len(), 5, "tail delivers only the matching commits");
    let seqs: Vec<i64> =
        tail.iter().map(|r| r.attributes.get("seq").unwrap().as_int().unwrap()).collect();
    assert_eq!(seqs, vec![10, 11, 12, 13, 14], "commit order preserved");

    // Delivered stream == final re-query, record for record.
    let mut delivered: Vec<TupleSetId> = catch_up.iter().chain(&tail).map(|r| r.id).collect();
    let mut want = pass.query_text("FIND WHERE worker = 1").unwrap().ids();
    delivered.sort();
    want.sort();
    assert_eq!(delivered, want);
}

#[test]
fn subscribe_text_speaks_the_statement_grammar() {
    let pass = Pass::open_memory(SiteId(1));
    pass.capture_batch(items(1, 0..3)).expect("batch");
    let mut sub = pass.subscribe_text("SUBSCRIBE FIND WHERE worker = 1").expect("subscribe");
    assert_eq!(drain_catch_up(&mut sub).len(), 3);
    assert!(pass.subscribe_text("FIND WHERE worker = 1").is_err(), "bare query is not a statement");
}

#[test]
fn ancestors_subscription_is_rejected() {
    let pass = Pass::open_memory(SiteId(1));
    let root = pass.capture(Attributes::new(), vec![], Timestamp(1)).unwrap();
    let err = pass
        .subscribe_text(&format!("SUBSCRIBE FIND ANCESTORS OF ts:{}", root.full_hex()))
        .unwrap_err();
    assert!(err.to_string().contains("DESCENDANTS"), "{err}");
}

#[test]
fn unknown_watch_root_fails_and_unregisters() {
    let pass = Pass::open_memory(SiteId(1));
    assert!(pass.subscribe_text("WATCH DESCENDANTS OF ts:deadbeef").is_err());
    assert_eq!(pass.subscriber_count(), 0, "failed subscribe leaves no channel behind");
}

#[test]
fn dropping_a_subscription_unregisters_it() {
    let pass = Pass::open_memory(SiteId(1));
    let sub = pass.subscribe(&parse("FIND").unwrap()).expect("subscribe");
    assert_eq!(pass.subscriber_count(), 1);
    drop(sub);
    assert_eq!(pass.subscriber_count(), 0);
}

#[test]
fn stalled_consumer_lags_instead_of_blocking_ingest() {
    let pass = Pass::open_memory(SiteId(1));
    // Room for 4 commits; the consumer never drains while 20 commits land.
    let mut sub =
        pass.subscribe_with(&parse("FIND WHERE worker = 1").unwrap(), 4).expect("subscribe");
    assert_eq!(drain_catch_up(&mut sub).len(), 0);

    for i in 0..20u64 {
        pass.capture_batch(items(1, i * 10..i * 10 + 10)).expect("ingest proceeds unblocked");
    }
    assert_eq!(pass.len(), 200, "every commit landed");

    let first = sub.try_next().expect("something queued");
    let Event::Lagged(n) = first else { panic!("expected Lagged first, got {first:?}") };
    assert_eq!(n as usize, 160, "16 overflowed commits × 10 records each");
    // The surviving window still delivers, in commit order.
    let mut survived = Vec::new();
    while let Some(event) = sub.try_next() {
        match event {
            Event::Match(r) => survived.push(r),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(survived.len(), 40, "the 4 newest commits survived");
    let seqs: Vec<i64> =
        survived.iter().map(|r| r.attributes.get("seq").unwrap().as_int().unwrap()).collect();
    assert_eq!(seqs, (160..200).collect::<Vec<i64>>());
}

#[test]
fn watch_descendants_fires_on_live_taint() {
    let pass = Pass::open_memory(SiteId(1));
    let suspect = pass
        .capture(Attributes::new().with(keys::DOMAIN, "volcano"), vec![], Timestamp(1))
        .unwrap();
    let clean = pass
        .capture(Attributes::new().with(keys::DOMAIN, "volcano"), vec![], Timestamp(2))
        .unwrap();
    let existing = pass
        .derive(
            &[suspect],
            &ToolDescriptor::new("denoise", "1.0"),
            Attributes::new(),
            vec![],
            Timestamp(3),
        )
        .unwrap();

    let mut sub = pass
        .subscribe_text(&format!("WATCH DESCENDANTS OF ts:{}", suspect.full_hex()))
        .expect("watch");
    let catch_up = drain_catch_up(&mut sub);
    assert_eq!(catch_up.iter().map(|r| r.id).collect::<Vec<_>>(), vec![existing]);

    // Live: a derivation from the clean root must NOT fire; a transitive
    // descendant of the suspect must.
    let unrelated = pass
        .derive(
            &[clean],
            &ToolDescriptor::new("denoise", "1.0"),
            Attributes::new(),
            vec![],
            Timestamp(4),
        )
        .unwrap();
    let tainted = pass
        .derive(
            &[existing, unrelated],
            &ToolDescriptor::new("summary", "2.0"),
            Attributes::new(),
            vec![],
            Timestamp(5),
        )
        .unwrap();
    let deeper = pass
        .derive(
            &[tainted],
            &ToolDescriptor::new("report", "1.0"),
            Attributes::new(),
            vec![],
            Timestamp(6),
        )
        .unwrap();

    let mut live = Vec::new();
    while let Some(event) = sub.try_next() {
        match event {
            Event::Match(r) => live.push(r.id),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(live, vec![tainted, deeper], "taint propagates transitively, clean line ignored");

    // Cross-check against a fresh one-shot closure query.
    let mut requery =
        pass.query_text(&format!("FIND DESCENDANTS OF ts:{}", suspect.full_hex())).unwrap().ids();
    let mut delivered: Vec<TupleSetId> = catch_up.iter().map(|r| r.id).chain(live).collect();
    requery.sort();
    delivered.sort();
    assert_eq!(delivered, requery);
}

#[test]
fn watch_where_filter_narrows_delivery_but_not_membership() {
    let pass = Pass::open_memory(SiteId(1));
    let root = pass.capture(Attributes::new(), vec![], Timestamp(1)).unwrap();
    let mut sub = pass
        .subscribe_text(&format!(
            r#"WATCH DESCENDANTS OF ts:{} WHERE stage = "final""#,
            root.full_hex()
        ))
        .expect("watch");
    drain_catch_up(&mut sub);

    // Intermediate fails the filter but must still propagate membership.
    let mid = pass
        .derive(
            &[root],
            &ToolDescriptor::new("t", "1"),
            Attributes::new().with("stage", "mid"),
            vec![],
            Timestamp(2),
        )
        .unwrap();
    let fin = pass
        .derive(
            &[mid],
            &ToolDescriptor::new("t", "1"),
            Attributes::new().with("stage", "final"),
            vec![],
            Timestamp(3),
        )
        .unwrap();

    let mut live = Vec::new();
    while let Some(event) = sub.try_next() {
        if let Event::Match(r) = event {
            live.push(r.id);
        }
    }
    assert_eq!(live, vec![fin], "filter narrows delivery; taint still flowed through mid");
}

/// Pins the documented addition-only tail semantics: annotation merges
/// mutate an existing record and are not replayed into tails, so an
/// `ANNOTATION CONTAINS` subscription matches records as they were
/// *added* — text annotated later is visible to re-queries only.
#[test]
fn annotation_merges_do_not_fire_the_tail() {
    use pass_model::Annotation;
    let pass = Pass::open_memory(SiteId(1));
    let plain = pass.capture(Attributes::new(), vec![], Timestamp(1)).unwrap();

    let mut sub =
        pass.subscribe_text(r#"SUBSCRIBE FIND WHERE ANNOTATION CONTAINS "suspect""#).unwrap();
    assert_eq!(drain_catch_up(&mut sub).len(), 0);

    // A record *added* with matching text fires the tail...
    let mut attrs = Attributes::new();
    attrs.set(keys::DESCRIPTION, "suspect reading pattern");
    let flagged = pass.capture(attrs, vec![], Timestamp(2)).unwrap();
    let event = sub.try_next().expect("tail delivery");
    assert_eq!(event.into_match().expect("match").id, flagged);

    // ...but annotating an existing record into the match set does not
    // (the re-query sees it; the tail, by documented design, does not).
    pass.annotate(plain, Annotation::new(Timestamp(3), "ops", "suspect after review")).unwrap();
    assert!(sub.try_next().is_none(), "annotation merge must not be re-delivered");
    let requery = pass.query_text(r#"FIND WHERE ANNOTATION CONTAINS "suspect""#).unwrap();
    assert_eq!(requery.records.len(), 2, "one-shot reads do see the annotation");
}

/// The acceptance-criteria stress test: a subscription opened mid-ingest
/// delivers exactly the records a fresh `execute()` returns at the end —
/// no gaps, no dupes, commit order — under concurrent `ingest_batch`
/// from multiple writers.
#[test]
fn handoff_under_concurrent_ingest_equals_final_requery() {
    const WRITERS: u64 = 4;
    const BATCHES_PER_WRITER: u64 = 25;
    const PER_BATCH: u64 = 8;

    for round in 0..3u64 {
        let pass = Pass::open_memory(SiteId(1));
        // Pre-populate so catch-up has real work.
        pass.capture_batch(items(0, 0..40)).expect("seed batch");

        let collected = thread::scope(|s| {
            for w in 1..=WRITERS {
                let pass = &pass;
                s.spawn(move |_| {
                    for b in 0..BATCHES_PER_WRITER {
                        let lo = b * PER_BATCH;
                        pass.capture_batch(items(w + round * 10, lo..lo + PER_BATCH))
                            .expect("ingest");
                    }
                });
            }
            // Subscriber opens mid-ingest (writers already racing) with a
            // queue deep enough to never lag.
            let pass = &pass;
            let handle = s.spawn(move |_| {
                let mut sub = pass
                    .subscribe_with(&parse("FIND").unwrap(), 4_096)
                    .expect("subscribe mid-ingest");
                let mut seen: Vec<TupleSetId> = Vec::new();
                let mut versions_ok = true;
                let mut caught_up_at = None;
                loop {
                    match sub.next_timeout(Duration::from_millis(200)) {
                        Some(Event::Match(r)) => seen.push(r.id),
                        Some(Event::CaughtUp { version }) => caught_up_at = Some(version),
                        Some(Event::Lagged(_)) => versions_ok = false,
                        // Writers are finite: once the stream stays quiet
                        // for the timeout AND the store stopped growing,
                        // we are drained.
                        None => {
                            if seen.len()
                                >= (40 + WRITERS * BATCHES_PER_WRITER * PER_BATCH) as usize
                            {
                                break;
                            }
                            // Not everything arrived yet; keep waiting.
                        }
                    }
                }
                (seen, versions_ok, caught_up_at)
            });
            handle.join().expect("subscriber thread")
        })
        .expect("no thread panicked");

        let (seen, no_lag, caught_up_at) = collected;
        assert!(no_lag, "queue sized to never lag in this test");
        assert!(caught_up_at.is_some(), "handoff marker delivered");

        // Exactly-once: delivered multiset == final re-query.
        let mut delivered = seen.clone();
        delivered.sort();
        let dedup_len = {
            let mut d = delivered.clone();
            d.dedup();
            d.len()
        };
        assert_eq!(dedup_len, delivered.len(), "round {round}: duplicates delivered");
        let mut want = pass.query_text("FIND").unwrap().ids();
        want.sort();
        assert_eq!(delivered, want, "round {round}: delivered stream != final re-query");

        // Commit order within each writer: seqs of one worker ascend.
        for w in 1..=WRITERS {
            let worker = w + round * 10;
            let seqs: Vec<i64> = seen
                .iter()
                .filter_map(|id| pass.get_record(*id))
                .filter(|r| {
                    r.attributes.get("worker").and_then(|v| v.as_int()) == Some(worker as i64)
                })
                .map(|r| r.attributes.get("seq").unwrap().as_int().unwrap())
                .collect();
            assert!(
                seqs.windows(2).all(|p| p[0] < p[1]),
                "round {round}: worker {worker} out of commit order: {seqs:?}"
            );
        }
    }
}

// -- Property: catch-up is byte-identical to execute() -----------------

const DOMAINS: [&str; 3] = ["traffic", "weather", "volcano"];

fn arb_corpus() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    // (domain index, seq, worker) triples; ids derive from the digest of
    // the triple so corpora are collision-free.
    proptest::collection::vec((0u8..3, 0u8..50, 0u8..4), 0..25)
}

fn arb_query_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("FIND".to_owned()),
        (0usize..3).prop_map(|d| format!(r#"FIND WHERE domain = "{}""#, DOMAINS[d])),
        (0i64..50).prop_map(|n| format!("FIND WHERE seq >= {n}")),
        (0i64..50).prop_map(|n| format!("FIND WHERE seq < {n} ORDER BY created DESC")),
        (1usize..10).prop_map(|n| format!("FIND ORDER BY created ASC LIMIT {n}")),
        (0usize..3, 1usize..8)
            .prop_map(|(d, n)| format!(r#"FIND WHERE domain = "{}" LIMIT {n}"#, DOMAINS[d])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SUBSCRIBE <q>` catch-up output is byte-identical to
    /// `execute(<q>)` at subscribe time — same records, same order.
    #[test]
    fn subscribe_catch_up_matches_execute(corpus in arb_corpus(), text in arb_query_text()) {
        let pass = Pass::open_memory(SiteId(1));
        let mut seen = std::collections::HashSet::new();
        for (d, seq, worker) in &corpus {
            if !seen.insert((*d, *seq, *worker)) {
                continue; // identical triple ⇒ identical tuple set; skip
            }
            let attrs = Attributes::new()
                .with("domain", DOMAINS[*d as usize])
                .with("seq", i64::from(*seq))
                .with("worker", i64::from(*worker));
            pass.capture(attrs, vec![], Timestamp(u64::from(*seq))).expect("capture");
        }

        let query = parse(&text).expect("well-formed");
        let want = pass.query(&query).expect("execute").records;
        let statement = parse_subscribe(&format!("SUBSCRIBE {text}")).expect("statement");
        let mut sub = pass.subscribe(&statement.query).expect("subscribe");
        let mut got = Vec::new();
        loop {
            match sub.try_next() {
                Some(Event::Match(r)) => got.push(r),
                Some(Event::CaughtUp { .. }) | None => break,
                Some(Event::Lagged(n)) => panic!("lagged {n} with no writers"),
            }
        }
        prop_assert_eq!(got, want, "catch-up diverged from execute on {}", text);
    }
}
