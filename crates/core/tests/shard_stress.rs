//! Concurrency stress for sharded multi-writer ingest: parallel writers
//! on disjoint shards, cross-shard batches racing single-shard ones,
//! snapshot consistency under fire, and the subscription guarantee that
//! delivery follows global commit-version order with no gaps and no
//! duplicates even when the writers commit through different shard
//! locks.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use crossbeam::thread;
use pass_core::{keyspace, Event, Pass, PassConfig, Subscription};
use pass_model::{keys, Attributes, Reading, SensorId, SiteId, Timestamp, TupleSet, TupleSetId};
use pass_storage::tempdir::TempDir;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Sized for the regular CI release run. Sanitizer builds are an order
/// of magnitude slower, so the nightly TSan job shrinks the run through
/// these env knobs instead of maintaining a second stress test.
fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn workers() -> u64 {
    env_u64("SHARD_STRESS_WORKERS", 4)
}

fn commits_per_worker() -> u64 {
    env_u64("SHARD_STRESS_COMMITS", 40)
}

fn item(worker: u64, seq: u64) -> (Attributes, Vec<Reading>, Timestamp) {
    let at = Timestamp(worker * 1_000_000 + seq);
    let attrs = Attributes::new()
        .with(keys::DOMAIN, "stress")
        .with("worker", worker as i64)
        .with("seq", seq as i64);
    (attrs, vec![Reading::new(SensorId(worker), at).with("v", seq as i64)], at)
}

/// Pre-built tuple sets for one worker, bucketed by owning shard so a
/// writer can issue pure single-shard batches.
fn sets_by_shard(pass: &Pass, worker: u64, n: u64) -> HashMap<usize, Vec<TupleSet>> {
    let mut by_shard: HashMap<usize, Vec<TupleSet>> = HashMap::new();
    for seq in 0..n {
        let (attrs, readings, at) = item(worker, seq);
        let record = pass_model::ProvenanceBuilder::new(SiteId(1), at)
            .attrs(&attrs)
            .build(TupleSet::content_digest_of(&readings));
        let shard = keyspace::shard_of(record.id, pass.shards());
        by_shard.entry(shard).or_default().push(TupleSet::new(record, readings).unwrap());
    }
    by_shard
}

/// Writers pinned to disjoint shards never cross a lock: every commit is
/// single-shard. The store must end complete and consistent, and the
/// global version must have advanced once per commit.
#[test]
fn disjoint_shard_writers_commit_concurrently() {
    let pass = Pass::open(PassConfig::memory(SiteId(1)).with_shards(workers() as usize)).unwrap();
    let v0 = pass.snapshot().version();
    let mut commits = 0u64;
    thread::scope(|s| {
        for worker in 0..workers() {
            let pass = &pass;
            s.spawn(move |_| {
                // Each worker only commits batches owned by one shard.
                for (_, sets) in sets_by_shard(pass, worker, commits_per_worker()) {
                    for chunk in sets.chunks(4) {
                        pass.ingest_batch(chunk).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    for worker in 0..workers() {
        commits += sets_by_shard(&pass, worker, commits_per_worker())
            .values()
            .map(|v| v.chunks(4).count() as u64)
            .sum::<u64>();
    }
    assert_eq!(pass.len(), (workers() * commits_per_worker()) as usize);
    assert_eq!(pass.snapshot().version(), v0 + commits, "one global version per commit");
    assert!(pass.verify_consistency().unwrap().is_consistent());
}

/// Cross-shard batches race single-shard ones on a disk store (intent
/// log in play); a snapshot-taking reader races both. Every snapshot
/// must observe a consistent prefix: record count never decreases as the
/// observed version increases.
#[test]
fn snapshots_see_consistent_prefixes_under_mixed_writers() {
    let dir = TempDir::new("shard-stress-mixed");
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path()).with_shards(4)).unwrap();
    let total = workers() * commits_per_worker();
    let samples = thread::scope(|s| {
        for worker in 0..workers() {
            let pass = &pass;
            s.spawn(move |_| {
                if worker % 2 == 0 {
                    // Cross-shard writer: unrouted batches span shards.
                    let items: Vec<_> =
                        (0..commits_per_worker()).map(|seq| item(worker, seq)).collect();
                    for chunk in items.chunks(8) {
                        pass.capture_batch(chunk.to_vec()).unwrap();
                    }
                } else {
                    // Single-shard writer.
                    for (_, sets) in sets_by_shard(pass, worker, commits_per_worker()) {
                        for chunk in sets.chunks(4) {
                            pass.ingest_batch(chunk).unwrap();
                        }
                    }
                }
            });
        }
        let reader = s.spawn(|_| {
            let mut samples = Vec::new();
            loop {
                let snap = pass.snapshot();
                samples.push((snap.version(), snap.len()));
                if snap.len() >= total as usize {
                    return samples;
                }
                std::thread::yield_now();
            }
        });
        reader.join().unwrap()
    })
    .unwrap();

    let mut sorted = samples.clone();
    sorted.sort_unstable_by_key(|(v, _)| *v);
    for pair in sorted.windows(2) {
        assert!(
            pair[0].1 <= pair[1].1,
            "record count regressed between versions {:?} -> {:?}",
            pair[0],
            pair[1]
        );
    }
    assert_eq!(pass.len(), total as usize);
    assert!(pass.verify_consistency().unwrap().is_consistent());
}

fn drain_catch_up(sub: &mut Subscription) -> Vec<(i64, i64, TupleSetId)> {
    let mut out = Vec::new();
    loop {
        match sub.next_timeout(Duration::from_secs(10)).expect("catch-up never times out") {
            Event::Match(r) => out.push(worker_seq(&r)),
            Event::CaughtUp { .. } => return out,
            Event::Lagged(n) => panic!("lagged {n} during catch-up"),
        }
    }
}

fn worker_seq(r: &pass_model::ProvenanceRecord) -> (i64, i64, TupleSetId) {
    let get = |name: &str| match r.attributes.get(name) {
        Some(pass_model::Value::Int(i)) => *i,
        other => panic!("missing {name}: {other:?}"),
    };
    (get("worker"), get("seq"), r.id)
}

/// ISSUE 6 satellite: a subscription opened mid-ingest while writers
/// commit concurrently through *different shard locks* still delivers in
/// global commit-version order — observable as per-writer seq
/// monotonicity — with no gaps and no duplicates across the
/// catch-up/tail handoff.
#[test]
fn subscription_delivers_in_global_order_across_shards() {
    let pass = Pass::open(PassConfig::memory(SiteId(1)).with_shards(4)).unwrap();
    let events = thread::scope(|s| {
        for worker in 0..workers() {
            let pass = &pass;
            s.spawn(move |_| {
                // One commit per seq so commit order == seq order; each
                // writer's ids scatter over the shards, so concurrent
                // commits constantly hold different shard locks.
                for seq in 0..commits_per_worker() {
                    pass.capture_batch(vec![item(worker, seq)]).unwrap();
                }
            });
        }
        // Subscribe mid-ingest: catch-up snapshot + live tail.
        let mut sub = pass
            .subscribe_with(&pass_query::parse("FIND WHERE domain = \"stress\"").unwrap(), 1 << 14)
            .unwrap();
        let mut events = drain_catch_up(&mut sub);
        let total = (workers() * commits_per_worker()) as usize;
        while events.len() < total {
            match sub.next_timeout(Duration::from_secs(10)).expect("tail stalled") {
                Event::Match(r) => events.push(worker_seq(&r)),
                Event::CaughtUp { .. } => unreachable!("catch-up already drained"),
                Event::Lagged(n) => panic!("lagged {n} with oversized buffer"),
            }
        }
        events
    })
    .unwrap();

    // No gaps, no duplicates: exactly every (worker, seq) once.
    let unique: HashSet<(i64, i64)> = events.iter().map(|(w, q, _)| (*w, *q)).collect();
    assert_eq!(unique.len(), events.len(), "duplicate delivery");
    assert_eq!(unique.len(), (workers() * commits_per_worker()) as usize, "gap in delivery");

    // Global version order: each writer commits seq ascending, so its
    // events must arrive seq-ascending no matter which shard lock each
    // commit went through.
    let mut last: HashMap<i64, i64> = HashMap::new();
    for (worker, seq, id) in &events {
        if let Some(prev) = last.insert(*worker, *seq) {
            assert!(
                prev < *seq,
                "worker {worker} delivered seq {seq} (id {id:?}) after seq {prev}: \
                 delivery violated global commit order"
            );
        }
    }
    assert!(pass.verify_consistency().unwrap().is_consistent());
}
