//! Integration tests for the local PASS: the four §V properties, atomic
//! crash behaviour, and query semantics end to end.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_core::{ClosureStrategy, Pass, PassConfig, PassError};
use pass_index::{Direction, TraverseOpts};
use pass_model::{
    keys, Annotation, Attributes, ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp,
    ToolDescriptor, TupleSet, TupleSetId,
};
use pass_storage::tempdir::TempDir;

fn readings(sensor: u64, n: usize, base_ms: u64) -> Vec<Reading> {
    (0..n)
        .map(|i| {
            Reading::new(SensorId(sensor), Timestamp(base_ms + i as u64 * 10))
                .with("value", i as i64)
        })
        .collect()
}

fn traffic_attrs(region: &str) -> Attributes {
    Attributes::new()
        .with(keys::DOMAIN, "traffic")
        .with(keys::REGION, region)
        .with(keys::TYPE, "car_sighting")
}

/// Builds a small three-generation store: raw → filtered → aggregated.
fn populated() -> (Pass, TupleSetId, TupleSetId, TupleSetId) {
    let pass = Pass::open_memory(SiteId(1));
    let raw = pass
        .capture(
            traffic_attrs("london")
                .with(keys::TIME_START, Timestamp(0))
                .with(keys::TIME_END, Timestamp(100)),
            readings(1, 20, 0),
            Timestamp(100),
        )
        .unwrap();
    let filtered = pass
        .derive(
            &[raw],
            &ToolDescriptor::new("filter", "1.0"),
            traffic_attrs("london"),
            readings(1, 10, 0),
            Timestamp(200),
        )
        .unwrap();
    let aggregated = pass
        .derive(
            &[filtered],
            &ToolDescriptor::new("aggregate", "2.1"),
            traffic_attrs("london").with("window_ms", 3_600_000i64),
            readings(1, 2, 0),
            Timestamp(300),
        )
        .unwrap();
    (pass, raw, filtered, aggregated)
}

// ---------------------------------------------------------------------------
// PASS property 1: provenance is a first-class object
// ---------------------------------------------------------------------------

#[test]
fn records_are_independent_of_data() {
    let (pass, raw, ..) = populated();
    let record = pass.get_record(raw).unwrap();
    assert_eq!(record.attributes.get_str(keys::DOMAIN), Some("traffic"));
    // The record is retrievable without touching data, and vice versa.
    let data = pass.get_data(raw).unwrap().unwrap();
    assert_eq!(data.len(), 20);
}

// ---------------------------------------------------------------------------
// PASS property 2: provenance can be queried
// ---------------------------------------------------------------------------

#[test]
fn attribute_and_tool_queries() {
    let (pass, _raw, filtered, aggregated) = populated();
    let hits = pass.query_text(r#"FIND WHERE tool.name = "aggregate""#).unwrap();
    assert_eq!(hits.ids(), vec![aggregated]);
    let hits = pass.query_text(r#"FIND WHERE domain = "traffic" AND HAS window_ms"#).unwrap();
    assert_eq!(hits.ids(), vec![aggregated]);
    let hits = pass.query_text(r#"FIND WHERE tool.name = "filter""#).unwrap();
    assert_eq!(hits.ids(), vec![filtered]);
}

#[test]
fn lineage_queries_both_directions() {
    let (pass, raw, filtered, aggregated) = populated();
    let anc = pass.lineage(aggregated, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    let mut ids: Vec<_> = anc.iter().map(|r| r.id).collect();
    ids.sort();
    let mut want = vec![raw, filtered];
    want.sort();
    assert_eq!(ids, want);

    let desc = pass.lineage(raw, Direction::Descendants, TraverseOpts::unbounded()).unwrap();
    assert_eq!(desc.len(), 2);
}

#[test]
fn lineage_query_via_text_language() {
    let (pass, raw, ..) = populated();
    let q = format!("FIND DESCENDANTS OF ts:{} WITH SELF", raw.full_hex());
    let hits = pass.query_text(&q).unwrap();
    assert_eq!(hits.records.len(), 3);
}

#[test]
fn annotation_queries() {
    let (pass, raw, ..) = populated();
    pass.annotate(raw, Annotation::new(Timestamp(500), "ops", "sensor 1 replaced with mk2"))
        .unwrap();
    let hits = pass.query_text(r#"FIND WHERE ANNOTATION CONTAINS "replaced mk2""#).unwrap();
    assert_eq!(hits.ids(), vec![raw]);
    // Annotation did not change identity.
    assert!(pass.get_record(raw).unwrap().verify_identity());
}

#[test]
fn time_overlap_queries() {
    let (pass, raw, ..) = populated();
    let hits = pass.query_text("FIND WHERE time OVERLAPS [50, 60]").unwrap();
    assert_eq!(hits.ids(), vec![raw], "only raw declared a time window");
    let hits = pass.query_text("FIND WHERE time OVERLAPS [101, 200]").unwrap();
    assert!(hits.records.is_empty());
}

// ---------------------------------------------------------------------------
// PASS property 3: nonidentical data ⇒ nonidentical provenance
// ---------------------------------------------------------------------------

#[test]
fn identical_captures_share_identity_distinct_data_does_not() {
    let pass = Pass::open_memory(SiteId(1));
    let a = pass.capture(traffic_attrs("x"), readings(1, 5, 0), Timestamp(10)).unwrap();
    // Same attrs, same data, same time: the same tuple set — idempotent.
    let b = pass.capture(traffic_attrs("x"), readings(1, 5, 0), Timestamp(10)).unwrap();
    assert_eq!(a, b);
    assert_eq!(pass.len(), 1);
    // Different data: different identity.
    let c = pass.capture(traffic_attrs("x"), readings(1, 6, 0), Timestamp(10)).unwrap();
    assert_ne!(a, c);
    assert_eq!(pass.len(), 2);
}

#[test]
fn forged_records_are_rejected() {
    let pass = Pass::open_memory(SiteId(1));
    let rs = readings(1, 3, 0);
    let record = ProvenanceBuilder::new(SiteId(1), Timestamp(5))
        .attr("domain", "traffic")
        .build(TupleSet::content_digest_of(&rs));

    // Tamper with attributes after identity was minted.
    let mut forged = record.clone();
    forged.attributes.set("domain", "weather");
    let ts = TupleSet::new_unchecked(forged, rs.clone());
    assert!(matches!(pass.ingest(&ts), Err(PassError::Model(_))));

    // Correct record with wrong data.
    let ts = TupleSet::new_unchecked(record, readings(9, 4, 0));
    assert!(matches!(pass.ingest(&ts), Err(PassError::Model(_))));
}

// ---------------------------------------------------------------------------
// PASS property 4: provenance survives ancestor removal
// ---------------------------------------------------------------------------

#[test]
fn removing_ancestor_data_preserves_lineage() {
    let (pass, raw, filtered, aggregated) = populated();
    assert!(pass.remove_data(raw).unwrap());
    assert!(!pass.has_data(raw));
    // Record survives; data does not.
    assert!(pass.get_record(raw).is_some());
    assert_eq!(pass.get_data(raw).unwrap(), None);
    assert_eq!(pass.get_tuple_set(raw).unwrap(), None);
    // Lineage from the leaf still reaches the removed ancestor.
    let anc = pass.lineage(aggregated, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    let ids: Vec<_> = anc.iter().map(|r| r.id).collect();
    assert!(ids.contains(&raw), "removed ancestor still named in lineage");
    assert!(ids.contains(&filtered));
    // Second removal is a no-op, unknown id errors.
    assert!(!pass.remove_data(raw).unwrap());
    assert!(matches!(pass.remove_data(TupleSetId(42)), Err(PassError::NotFound(_))));
}

#[test]
fn queries_still_match_removed_data_records() {
    let (pass, raw, ..) = populated();
    pass.remove_data(raw).unwrap();
    let hits = pass.query_text(r#"FIND WHERE domain = "traffic""#).unwrap();
    assert_eq!(hits.records.len(), 3, "record of removed data still queryable");
}

// ---------------------------------------------------------------------------
// Durability & crash consistency
// ---------------------------------------------------------------------------

#[test]
fn disk_store_reopens_with_full_state() {
    let dir = TempDir::new("core-reopen");
    let (raw, derived);
    {
        let pass = Pass::open(PassConfig::disk(SiteId(4), dir.path())).unwrap();
        raw = pass.capture(traffic_attrs("boston"), readings(1, 8, 0), Timestamp(10)).unwrap();
        derived = pass
            .derive(
                &[raw],
                &ToolDescriptor::new("clean", "0.9"),
                traffic_attrs("boston"),
                readings(1, 4, 0),
                Timestamp(20),
            )
            .unwrap();
        pass.annotate(raw, Annotation::new(Timestamp(30), "ops", "calibration drift noted"))
            .unwrap();
        pass.remove_data(derived).unwrap();
        pass.flush().unwrap();
    }
    let pass = Pass::open(PassConfig::disk(SiteId(4), dir.path())).unwrap();
    assert_eq!(pass.len(), 2);
    assert!(pass.has_data(raw));
    assert!(!pass.has_data(derived), "data removal survived reopen");
    let rec = pass.get_record(raw).unwrap();
    assert_eq!(rec.annotations.len(), 1, "annotation survived reopen");
    let hits = pass.query_text(r#"FIND WHERE ANNOTATION CONTAINS "calibration""#).unwrap();
    assert_eq!(hits.ids(), vec![raw]);
    let anc = pass.lineage(derived, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    assert_eq!(anc[0].id, raw);
    assert!(pass.verify_consistency().unwrap().is_consistent());
}

#[test]
fn torn_wal_never_splits_record_from_data() {
    let dir = TempDir::new("core-torn");
    {
        let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).unwrap();
        pass.capture(traffic_attrs("a"), readings(1, 3, 0), Timestamp(10)).unwrap();
        pass.capture(traffic_attrs("b"), readings(2, 3, 0), Timestamp(20)).unwrap();
        // Drop without flush: everything lives in the WAL.
    }
    let wal = dir.path().join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    // Truncate at every byte boundary; the store must always reopen with
    // a consistent prefix — a record implies its data and marker.
    for cut in (0..bytes.len()).step_by(7) {
        std::fs::write(&wal, &bytes[..cut]).unwrap();
        let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).unwrap();
        let report = pass.verify_consistency().unwrap();
        assert!(report.is_consistent(), "cut at {cut}: {report:?}");
        assert!(pass.len() <= 2);
        for id in pass.ids() {
            assert!(pass.has_data(id), "cut at {cut}: record without data");
        }
        drop(pass);
        std::fs::write(&wal, &bytes).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Closure strategies through the full stack
// ---------------------------------------------------------------------------

#[test]
fn all_closure_strategies_agree_through_query_layer() {
    let dirs = ["bfs", "naive", "memo", "interval"];
    let strategies = [
        ClosureStrategy::Bfs,
        ClosureStrategy::NaiveJoin,
        ClosureStrategy::Memo,
        ClosureStrategy::Interval,
    ];
    let mut answers = Vec::new();
    for (strategy, _dir) in strategies.iter().zip(dirs) {
        let pass = Pass::open(PassConfig::memory(SiteId(1)).with_closure(*strategy)).unwrap();
        let raw_a = pass.capture(traffic_attrs("a"), readings(1, 2, 0), Timestamp(1)).unwrap();
        let raw_b = pass.capture(traffic_attrs("b"), readings(2, 2, 0), Timestamp(2)).unwrap();
        let merged = pass
            .derive(
                &[raw_a, raw_b],
                &ToolDescriptor::new("merge", "1"),
                traffic_attrs("ab"),
                readings(3, 2, 0),
                Timestamp(3),
            )
            .unwrap();
        let leaf = pass
            .derive(
                &[merged],
                &ToolDescriptor::new("sharpen", "2"),
                traffic_attrs("ab"),
                readings(3, 1, 0),
                Timestamp(4),
            )
            .unwrap();
        let mut anc: Vec<_> = pass
            .lineage(leaf, Direction::Ancestors, TraverseOpts::unbounded())
            .unwrap()
            .iter()
            .map(|r| r.id)
            .collect();
        anc.sort();
        answers.push((anc, raw_a, raw_b, merged));
    }
    for w in answers.windows(2) {
        assert_eq!(w[0], w[1], "strategies disagree");
    }
}

#[test]
fn closure_cache_invalidates_on_new_ingest() {
    let pass =
        Pass::open(PassConfig::memory(SiteId(1)).with_closure(ClosureStrategy::Memo)).unwrap();
    let a = pass.capture(traffic_attrs("a"), readings(1, 1, 0), Timestamp(1)).unwrap();
    let b = pass
        .derive(&[a], &ToolDescriptor::new("t", "1"), traffic_attrs("a"), vec![], Timestamp(2))
        .unwrap();
    // First query builds the memo structure.
    assert_eq!(pass.lineage(b, Direction::Ancestors, TraverseOpts::unbounded()).unwrap().len(), 1);
    // New derivation must appear in subsequent closures.
    let c = pass
        .derive(&[b], &ToolDescriptor::new("t", "1"), traffic_attrs("a"), vec![], Timestamp(3))
        .unwrap();
    let anc = pass.lineage(c, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    assert_eq!(anc.len(), 2, "cache rebuilt after version bump");
}

// ---------------------------------------------------------------------------
// Abstraction boundaries (§V, experiment E16)
// ---------------------------------------------------------------------------

#[test]
fn abstracted_toolchain_collapses_in_lineage() {
    let pass = Pass::open_memory(SiteId(1));
    // Model gcc's own provenance as a chain of tuple sets.
    let gcc_src = pass
        .capture(Attributes::new().with("domain", "toolchain"), readings(9, 1, 0), Timestamp(1))
        .unwrap();
    let gcc_bin = pass
        .derive(
            &[gcc_src],
            &ToolDescriptor::new("bootstrap", "1"),
            Attributes::new().with("domain", "toolchain"),
            readings(9, 1, 10),
            Timestamp(2),
        )
        .unwrap();
    // Analysis output depends on raw data (concrete) and gcc (abstracted).
    let raw = pass.capture(traffic_attrs("x"), readings(1, 4, 0), Timestamp(3)).unwrap();
    let result_attrs = Attributes::new().with("domain", "analysis");
    let mut builder = ProvenanceBuilder::new(SiteId(1), Timestamp(4)).attrs(&result_attrs);
    builder = builder.derived_from(raw, ToolDescriptor::new("analyze", "3"));
    builder = builder.derived_from(gcc_bin, ToolDescriptor::abstracted("gcc", "3.3.3"));
    let rs = readings(1, 1, 50);
    let record = builder.build(TupleSet::content_digest_of(&rs));
    let result = pass.ingest(&TupleSet::new(record, rs).unwrap()).unwrap();

    // Full lineage sees the whole toolchain.
    let full = pass.lineage(result, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    assert_eq!(full.len(), 3);
    // Abstracted lineage reports only the data ancestry; "gcc 3.3.3"
    // remains readable on the derivation record itself.
    let abstracted = pass
        .lineage(
            result,
            Direction::Ancestors,
            TraverseOpts { stop_at_abstraction: true, ..TraverseOpts::default() },
        )
        .unwrap();
    let ids: Vec<_> = abstracted.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec![raw]);
    let record = pass.get_record(result).unwrap();
    let gcc_edge = record.ancestry.iter().find(|d| d.tool.name == "gcc").unwrap();
    assert_eq!(gcc_edge.tool.label(), "gcc v3.3.3");
}

// ---------------------------------------------------------------------------
// Stats & misc
// ---------------------------------------------------------------------------

#[test]
fn stats_reflect_activity() {
    let (pass, ..) = populated();
    pass.query_text("FIND").unwrap();
    let stats = pass.stats();
    assert_eq!(stats.records, 3);
    assert_eq!(stats.data_blobs, 3);
    assert_eq!(stats.graph_nodes, 3);
    assert_eq!(stats.graph_edges, 2);
    assert!(stats.attr_entries > 0);
    assert!(stats.index_bytes > 0);
    assert_eq!(stats.ingests, 3);
    assert!(stats.queries >= 1);
}

#[test]
fn unknown_ids_error_cleanly() {
    let pass = Pass::open_memory(SiteId(1));
    assert!(pass.get_record(TupleSetId(1)).is_none());
    assert!(pass.get_data(TupleSetId(1)).unwrap().is_none());
    assert!(matches!(
        pass.lineage(TupleSetId(1), Direction::Ancestors, TraverseOpts::unbounded()),
        Err(PassError::NotFound(_))
    ));
    assert!(matches!(
        pass.annotate(TupleSetId(1), Annotation::new(Timestamp(0), "a", "b")),
        Err(PassError::NotFound(_))
    ));
}

#[test]
fn cross_site_parents_are_queryable_as_placeholders() {
    // A derivation whose parent lives at another site: lineage knows the
    // id even though the record is absent locally.
    let pass = Pass::open_memory(SiteId(2));
    let remote_parent = TupleSetId(0xabcdef);
    let local = pass
        .derive(
            &[remote_parent],
            &ToolDescriptor::new("import", "1"),
            traffic_attrs("remote"),
            readings(1, 1, 0),
            Timestamp(5),
        )
        .unwrap();
    // The closure reaches the placeholder, but no record exists for it,
    // so record-level lineage returns empty — without erroring.
    let anc = pass.lineage(local, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    assert!(anc.is_empty());
    let rec = pass.get_record(local).unwrap();
    assert_eq!(rec.parents().collect::<Vec<_>>(), vec![remote_parent]);
}

#[test]
fn range_and_order_queries() {
    let (pass, ..) = populated();
    let hits = pass.query_text("FIND WHERE created_at >= @200 ORDER BY created DESC").unwrap();
    assert_eq!(hits.records.len(), 2);
    assert!(hits.records[0].created_at > hits.records[1].created_at);
    let hits = pass.query_text("FIND WHERE window_ms BETWEEN 0 AND 9999999999").unwrap();
    assert_eq!(hits.records.len(), 1);
}

#[test]
fn explain_shows_plan_shape() {
    let (pass, ..) = populated();
    let hits = pass.query_text(r#"FIND WHERE domain = "traffic" AND NOT HAS window_ms"#).unwrap();
    assert!(hits.stats.plan.contains("index"));
    assert!(hits.stats.plan.contains("recheck"));
    assert_eq!(hits.records.len(), 2);
}
