//! Concurrency tests: `Pass` is `Send + Sync`; concurrent ingests,
//! queries, and annotations must neither deadlock nor corrupt state.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use crossbeam::thread;
use pass_core::Pass;
use pass_model::{keys, Annotation, Attributes, Reading, SensorId, SiteId, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};

fn capture_one(pass: &Pass, worker: u64, i: u64) -> pass_model::TupleSetId {
    let readings = vec![Reading::new(SensorId(worker), Timestamp(i)).with("v", i as i64)];
    let attrs = Attributes::new()
        .with(keys::DOMAIN, "traffic")
        .with("worker", worker as i64)
        .with("seq", i as i64);
    pass.capture(attrs, readings, Timestamp(worker * 1_000_000 + i)).expect("capture")
}

#[test]
fn concurrent_ingest_preserves_every_record() {
    let pass = Pass::open_memory(SiteId(1));
    const WORKERS: u64 = 4;
    const PER_WORKER: u64 = 250;
    thread::scope(|s| {
        for w in 0..WORKERS {
            let pass = &pass;
            s.spawn(move |_| {
                for i in 0..PER_WORKER {
                    capture_one(pass, w, i);
                }
            });
        }
    })
    .expect("no worker panicked");
    assert_eq!(pass.len(), (WORKERS * PER_WORKER) as usize);
    for w in 0..WORKERS {
        let hits = pass.query_text(&format!("FIND WHERE worker = {w}")).expect("query");
        assert_eq!(hits.records.len(), PER_WORKER as usize, "worker {w}");
    }
}

#[test]
fn readers_and_writers_interleave() {
    let pass = Pass::open_memory(SiteId(2));
    let written = AtomicU64::new(0);
    thread::scope(|s| {
        // One writer…
        s.spawn(|_| {
            for i in 0..500u64 {
                capture_one(&pass, 9, i);
                written.fetch_add(1, Ordering::Release);
            }
        });
        // …two readers observing monotone growth.
        for _ in 0..2 {
            s.spawn(|_| {
                let mut last = 0usize;
                loop {
                    let seen =
                        pass.query_text("FIND WHERE worker = 9").expect("query").records.len();
                    assert!(seen >= last, "result set shrank: {last} -> {seen}");
                    last = seen;
                    if written.load(Ordering::Acquire) >= 500 && seen >= 500 {
                        break;
                    }
                }
            });
        }
    })
    .expect("no thread panicked");
    assert_eq!(pass.len(), 500);
}

#[test]
fn concurrent_annotation_and_lineage() {
    let pass = Pass::open_memory(SiteId(3));
    let root = capture_one(&pass, 1, 0);
    let derived: Vec<_> = (0..8)
        .map(|i| {
            pass.derive(
                &[root],
                &pass_model::ToolDescriptor::new("t", "1"),
                Attributes::new().with(keys::DOMAIN, "traffic").with("i", i as i64),
                vec![],
                Timestamp(100 + i),
            )
            .expect("derive")
        })
        .collect();
    thread::scope(|s| {
        let annotator = &pass;
        s.spawn(move |_| {
            for i in 0..50u64 {
                annotator
                    .annotate(root, Annotation::new(Timestamp(i), "ops", format!("note {i}")))
                    .expect("annotate");
            }
        });
        for &child in &derived {
            let reader = &pass;
            s.spawn(move |_| {
                for _ in 0..20 {
                    let anc = reader
                        .lineage(
                            child,
                            pass_index::Direction::Ancestors,
                            pass_index::TraverseOpts::unbounded(),
                        )
                        .expect("lineage");
                    assert_eq!(anc.len(), 1);
                    assert_eq!(anc[0].id, root);
                }
            });
        }
    })
    .expect("no thread panicked");
    let record = pass.get_record(root).expect("exists");
    assert_eq!(record.annotations.len(), 50);
    assert!(record.verify_identity(), "annotations never disturb identity");
}
