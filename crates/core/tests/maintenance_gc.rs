//! Background maintenance through the `Pass` API: compaction keeps the
//! on-disk table set bounded under sustained ingest, snapshot and
//! subscription pins hold the storage-GC floor down while they live,
//! and tiered aging moves cold readings into an archive export without
//! losing their provenance (PASS property 4).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_core::{Backend, Pass, PassConfig};
use pass_model::{Attributes, Reading, SensorId, SiteId, Timestamp};
use pass_storage::tempdir::TempDir;
use pass_storage::EngineOptions;
use std::path::Path;
use std::time::{Duration, Instant};

/// Disk config with a tiny memtable so every few records seal a table,
/// and background maintenance on a fast tick.
fn churn_config(dir: &Path) -> PassConfig {
    let options = EngineOptions { memtable_bytes: 2 << 10, ..EngineOptions::default() };
    let mut config = PassConfig {
        backend: Backend::Disk { dir: dir.to_path_buf(), options },
        ..PassConfig::memory(SiteId(3))
    };
    config.maintenance.tick = Duration::from_millis(20);
    config.with_maintenance()
}

fn capture_round(pass: &Pass, round: u64, count: u64) {
    let batch = (0..count).map(|i| {
        let at = Timestamp(round * 10_000 + i);
        let readings = vec![Reading::new(SensorId(1), at).with("v", (round * count + i) as i64)];
        let attrs = Attributes::new().with("round", round as i64).with("i", i as i64);
        (attrs, readings, at)
    });
    pass.capture_batch(batch).unwrap();
}

fn sst_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".sst"))
        .count()
}

/// Sustained ingest with the worker on: the live table count stays
/// bounded (tiered merges run between commits), every record stays
/// readable, and no background errors accumulate.
#[test]
fn maintenance_bounds_tables_under_sustained_ingest() {
    let dir = TempDir::new("maint-bounds");
    let pass = Pass::open(churn_config(dir.path())).unwrap();
    for round in 0..12 {
        capture_round(&pass, round, 40);
        pass.flush().unwrap();
    }
    pass.wake_maintenance();
    let deadline = Instant::now() + Duration::from_secs(10);
    while sst_count(dir.path()) > 8 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(sst_count(dir.path()) <= 8, "worker keeps the table set bounded");
    assert_eq!(pass.maintenance_errors(), 0);
    assert_eq!(pass.len(), 12 * 40, "every captured record still present");
    let snap = pass.snapshot();
    for id in pass.ids() {
        assert!(snap.get_tuple_set(id).unwrap().is_some(), "readings survive compaction");
    }
}

/// Snapshots and subscriptions pin the GC floor at their version; the
/// floor rises only as the oldest pin drops.
#[test]
fn pin_floor_tracks_snapshots_and_subscriptions() {
    let dir = TempDir::new("maint-pins");
    let pass = Pass::open(churn_config(dir.path())).unwrap();
    assert_eq!(pass.pin_floor(), None, "fresh store has no pinned readers");

    capture_round(&pass, 0, 10);
    let snap = pass.snapshot();
    capture_round(&pass, 1, 10);
    let sub = pass.subscribe_text("SUBSCRIBE FIND").unwrap();
    capture_round(&pass, 2, 10);

    let floor = pass.pin_floor().expect("two live pins");
    assert_eq!(floor, snap.version(), "oldest pin wins");
    assert!(floor < pass.snapshot().version(), "ingest moved past the pinned version");

    drop(snap);
    let floor = pass.pin_floor().expect("subscription still pinned");
    assert!(floor > 0);
    drop(sub);
    // Only the probe snapshots above ever pinned anything else, and
    // they were temporaries: the registry must drain to empty.
    assert_eq!(pass.pin_floor(), None, "all pins released");
}

/// A snapshot opened before heavy ingest keeps answering from its
/// version while the worker compacts behind it — repeatable reads under
/// background churn.
#[test]
fn snapshot_reads_stay_repeatable_while_maintenance_churns() {
    let dir = TempDir::new("maint-repeatable");
    let pass = Pass::open(churn_config(dir.path())).unwrap();
    capture_round(&pass, 0, 25);
    let snap = pass.snapshot();
    let seen: Vec<_> = pass.ids();
    assert_eq!(snap.len(), 25);

    for round in 1..10 {
        capture_round(&pass, round, 40);
        pass.flush().unwrap();
        pass.wake_maintenance();
    }
    // The snapshot still answers exactly its edition...
    assert_eq!(snap.len(), 25, "snapshot does not see later ingest");
    for id in &seen {
        assert!(snap.get_tuple_set(*id).unwrap().is_some(), "pinned reads stay whole");
    }
    // ...while the live store moved on.
    assert_eq!(pass.len(), 25 + 9 * 40);
    assert_eq!(pass.maintenance_errors(), 0);
    drop(snap);
    assert_eq!(pass.pin_floor(), None);
}

/// `age_data` implements tiered aging: readings created before the
/// cutoff are exported and removed, their provenance records stay
/// queryable, and importing the export restores the readings — aging is
/// a move, not a loss.
#[test]
fn age_data_moves_cold_readings_into_a_restorable_export() {
    let dir = TempDir::new("maint-age");
    let pass = Pass::open(churn_config(dir.path())).unwrap();
    let cold = pass
        .capture(Attributes::new().with("era", "cold"), vec![reading(100)], Timestamp(100))
        .unwrap();
    let warm = pass
        .capture(Attributes::new().with("era", "warm"), vec![reading(900)], Timestamp(900))
        .unwrap();

    let report = pass.age_data(Timestamp(500)).unwrap();
    assert_eq!(report.aged, 1);
    assert_eq!(report.export.tuple_sets.len(), 1);
    assert_eq!(report.export.tuple_sets[0].provenance.id, cold);

    // PASS property 4: the record outlives its data.
    assert!(pass.contains(cold), "provenance survives aging");
    assert!(!pass.has_data(cold), "cold readings left the hot store");
    assert!(pass.has_data(warm), "records past the cutoff are untouched");
    assert_eq!(pass.query_text(r#"FIND WHERE era = "cold""#).unwrap().ids(), vec![cold]);

    // Aging again is a no-op: the data is already gone.
    assert_eq!(pass.age_data(Timestamp(500)).unwrap().aged, 0);

    // The export restores the readings — round trip complete.
    let stats = pass.import_archive(&report.export).unwrap();
    assert_eq!(stats.data_restored, 1);
    assert!(pass.has_data(cold));
    assert!(pass.get_tuple_set(cold).unwrap().is_some());
}

/// The aging worker sweeps on its own tick and hands exports to the
/// sink; it holds only a weak reference and stops with its handle.
#[test]
fn spawn_aging_sweeps_in_the_background() {
    use std::sync::{Arc, Mutex};

    let dir = TempDir::new("maint-age-worker");
    let pass = Arc::new(Pass::open(churn_config(dir.path())).unwrap());
    let cold = pass
        .capture(Attributes::new().with("era", "old"), vec![reading(10)], Timestamp(10))
        .unwrap();

    let shipped: Arc<Mutex<Vec<pass_core::ArchiveExport>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&shipped);
    let worker = pass.spawn_aging(
        Duration::from_millis(10),
        || Timestamp(500),
        move |export| sink.lock().unwrap().push(export),
    );

    let deadline = Instant::now() + Duration::from_secs(10);
    while shipped.lock().unwrap().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    worker.shutdown();

    let shipped = shipped.lock().unwrap();
    assert_eq!(shipped.len(), 1, "one sweep shipped the cold set, later sweeps found nothing");
    assert_eq!(shipped[0].tuple_sets[0].provenance.id, cold);
    assert!(pass.contains(cold) && !pass.has_data(cold));
}

fn reading(at: u64) -> Reading {
    Reading::new(SensorId(2), Timestamp(at)).with("v", at as i64)
}
