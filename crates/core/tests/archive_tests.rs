//! Archive exchange tests: the §V "merge local PASS installations into
//! globally searchable archives" goal. Content-addressed identity must
//! make merges conflict-free, idempotent, and commutative; annotations
//! union; removed data stays removable yet restorable from archives
//! that still hold it.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_core::{Pass, PassError};
use pass_index::{Direction, TraverseOpts};
use pass_model::{
    Annotation, Attributes, Digest128, ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp,
    ToolDescriptor, TupleSetId,
};
use proptest::prelude::*;

fn reading(n: u64) -> Reading {
    Reading::new(SensorId(n), Timestamp(n)).with("v", n as i64)
}

fn capture(pass: &Pass, tag: i64, n: u64) -> TupleSetId {
    pass.capture(
        Attributes::new().with("domain", "traffic").with("tag", tag),
        vec![reading(n)],
        Timestamp(n),
    )
    .expect("capture")
}

fn sorted_ids(pass: &Pass) -> Vec<TupleSetId> {
    let mut ids = pass.ids();
    ids.sort_unstable();
    ids
}

#[test]
fn import_unions_two_stores() {
    // Two replicas of the same logical site (identity covers the origin
    // site, so only same-origin captures can coincide).
    let a = Pass::open_memory(SiteId(1));
    let b = Pass::open_memory(SiteId(1));
    let ia = capture(&a, 1, 10);
    let shared_attrs = Attributes::new().with("domain", "weather");
    let shared_a = a.capture(shared_attrs.clone(), vec![reading(7)], Timestamp(7)).unwrap();
    let shared_b = b.capture(shared_attrs, vec![reading(7)], Timestamp(7)).unwrap();
    assert_eq!(shared_a, shared_b, "same provenance + content ⇒ same name everywhere");
    let ib = capture(&b, 2, 20);

    let stats = b.import_archive(&a.export_archive().unwrap()).unwrap();
    assert_eq!(stats.tuple_sets_added, 1, "only the non-shared record is new");
    assert_eq!(stats.already_present, 1);
    assert!(b.contains(ia) && b.contains(ib) && b.contains(shared_a));
    assert_eq!(b.len(), 3);
    // Imported data is readable, not just the metadata.
    assert_eq!(b.get_data(ia).unwrap().unwrap(), vec![reading(10)]);
}

#[test]
fn import_is_idempotent() {
    let a = Pass::open_memory(SiteId(1));
    let b = Pass::open_memory(SiteId(2));
    for n in 0..5 {
        capture(&a, n, n as u64);
    }
    let archive = a.export_archive().unwrap();
    let first = b.import_archive(&archive).unwrap();
    assert_eq!(first.tuple_sets_added, 5);
    let second = b.import_archive(&archive).unwrap();
    assert_eq!(second.changed(), 0, "re-import is a no-op: {second:?}");
    assert_eq!(second.already_present, 5);
    assert_eq!(b.len(), 5);
}

#[test]
fn lineage_spans_stores_after_merge() {
    // Site 1 captures raw data; site 2 derives from it (parent not local);
    // merging both into an archive store answers the full closure.
    let site1 = Pass::open_memory(SiteId(1));
    let site2 = Pass::open_memory(SiteId(2));
    let raw = capture(&site1, 1, 1);
    let derived = site2
        .derive(
            &[raw],
            &ToolDescriptor::new("sharpen", "2.0"),
            Attributes::new().with("domain", "traffic"),
            vec![reading(99)],
            Timestamp(99),
        )
        .unwrap();

    let global = Pass::open_memory(SiteId(9));
    global.import_archive(&site1.export_archive().unwrap()).unwrap();
    global.import_archive(&site2.export_archive().unwrap()).unwrap();

    let ancestors =
        global.lineage(derived, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    assert_eq!(ancestors.iter().map(|r| r.id).collect::<Vec<_>>(), vec![raw]);
    let descendants =
        global.lineage(raw, Direction::Descendants, TraverseOpts::unbounded()).unwrap();
    assert_eq!(descendants.iter().map(|r| r.id).collect::<Vec<_>>(), vec![derived]);
    // And the merged archive is searchable as one store (§V).
    let hits = global.query_text(r#"FIND WHERE tool.name = "sharpen""#).unwrap();
    assert_eq!(hits.ids(), vec![derived]);
}

#[test]
fn removed_data_merges_as_record_only_and_restores() {
    let a = Pass::open_memory(SiteId(1));
    let id = capture(&a, 1, 42);

    // Mirror the full store first, then remove the data at the origin.
    let mirror = Pass::open_memory(SiteId(2));
    mirror.import_archive(&a.export_archive().unwrap()).unwrap();
    a.remove_data(id).unwrap();

    // The origin's export now carries a bare record…
    let archive = a.export_archive().unwrap();
    assert_eq!((archive.tuple_sets.len(), archive.records_only.len()), (0, 1));

    // …which merges into an empty store as metadata (property 4 travels).
    let fresh = Pass::open_memory(SiteId(3));
    let stats = fresh.import_archive(&archive).unwrap();
    assert_eq!(stats.records_added, 1);
    assert!(fresh.contains(id) && !fresh.has_data(id));

    // And the mirror, which still holds the readings, restores them.
    let stats = a.import_archive(&mirror.export_archive().unwrap()).unwrap();
    assert_eq!(stats.data_restored, 1);
    assert_eq!(a.get_data(id).unwrap().unwrap(), vec![reading(42)]);
}

#[test]
fn annotations_union_on_merge() {
    let a = Pass::open_memory(SiteId(1));
    let b = Pass::open_memory(SiteId(1)); // same origin ⇒ same identity
    let attrs = Attributes::new().with("domain", "weather");
    let ia = a.capture(attrs.clone(), vec![reading(5)], Timestamp(5)).unwrap();
    let ib = b.capture(attrs, vec![reading(5)], Timestamp(5)).unwrap();
    assert_eq!(ia, ib);
    a.annotate(ia, Annotation::new(Timestamp(6), "alice", "sensor recalibrated")).unwrap();
    b.annotate(ib, Annotation::new(Timestamp(7), "bob", "gap during storm")).unwrap();

    let stats = b.import_archive(&a.export_archive().unwrap()).unwrap();
    assert_eq!(stats.annotations_merged, 1);
    let record = b.get_record(ib).unwrap();
    assert_eq!(record.annotations.len(), 2);
    // Both annotations are keyword-searchable after the merge.
    assert_eq!(
        b.query_text(r#"FIND WHERE ANNOTATION CONTAINS "recalibrated""#).unwrap().ids(),
        vec![ib]
    );
    assert_eq!(b.query_text(r#"FIND WHERE ANNOTATION CONTAINS "storm""#).unwrap().ids(), vec![ib]);
    // Merging back the other way completes the union symmetrically.
    a.import_archive(&b.export_archive().unwrap()).unwrap();
    assert_eq!(a.get_record(ia).unwrap().annotations.len(), 2);
}

#[test]
fn forged_records_are_rejected() {
    let a = Pass::open_memory(SiteId(1));
    let id = capture(&a, 1, 1);

    // Tampered identity: flip a bit in the id.
    let mut forged = a.get_record(id).unwrap();
    forged.id = TupleSetId(forged.id.0 ^ 1);
    assert!(matches!(a.ingest_record(&forged), Err(PassError::Model(_))));

    // Valid identity but colliding digest: rebuild a record with the same
    // attributes and a different content digest — ids differ, so to force
    // a collision we claim the old id with new content.
    let record = a.get_record(id).unwrap();
    let mut collider = ProvenanceBuilder::new(record.origin, record.created_at)
        .attrs(&record.attributes)
        .build(Digest128::of(b"different readings"));
    collider.id = id; // forged: same name, different content
    assert!(matches!(
        a.ingest_record(&collider),
        Err(PassError::Model(_)) | Err(PassError::IdentityCollision(_))
    ));
}

#[test]
fn record_only_ingest_is_queryable_and_lineage_capable() {
    let hub = Pass::open_memory(SiteId(10));
    let origin = Pass::open_memory(SiteId(1));
    let raw = capture(&origin, 3, 3);
    let derived = origin
        .derive(
            &[raw],
            &ToolDescriptor::new("clean", "1.0"),
            Attributes::new().with("domain", "traffic"),
            vec![reading(4)],
            Timestamp(4),
        )
        .unwrap();

    // Ship only metadata to the hub (records, no readings) — the
    // centralized-warehouse posture of §IV-A.
    for id in [raw, derived] {
        hub.ingest_record(&origin.get_record(id).unwrap()).unwrap();
    }
    assert_eq!(hub.len(), 2);
    assert!(!hub.has_data(raw) && !hub.has_data(derived));
    let hits = hub.query_text(r#"FIND WHERE domain = "traffic""#).unwrap();
    assert_eq!(hits.ids().len(), 2);
    let anc = hub.lineage(derived, Direction::Ancestors, TraverseOpts::unbounded()).unwrap();
    assert_eq!(anc.len(), 1);
}

// ---------------------------------------------------------------------
// Property: merges commute and converge.
// ---------------------------------------------------------------------

fn arb_corpus(site: u32) -> impl Strategy<Value = Vec<(i64, u64)>> {
    proptest::collection::vec((0i64..4, 0u64..24), 0..12).prop_map(move |v| {
        let _ = site;
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merge_is_commutative_and_idempotent(
        corpus_a in arb_corpus(1),
        corpus_b in arb_corpus(2),
    ) {
        let a = Pass::open_memory(SiteId(1));
        let b = Pass::open_memory(SiteId(1)); // same site ⇒ overlapping ids possible
        for (tag, n) in &corpus_a {
            let _ = capture(&a, *tag, *n);
        }
        for (tag, n) in &corpus_b {
            let _ = capture(&b, *tag, *n);
        }

        // a ∪ b == b ∪ a (same record sets), and double import changes nothing.
        let archive_a = a.export_archive().unwrap();
        let archive_b = b.export_archive().unwrap();
        let ab = Pass::open_memory(SiteId(7));
        ab.import_archive(&archive_a).unwrap();
        ab.import_archive(&archive_b).unwrap();
        let ba = Pass::open_memory(SiteId(8));
        ba.import_archive(&archive_b).unwrap();
        ba.import_archive(&archive_a).unwrap();
        prop_assert_eq!(sorted_ids(&ab), sorted_ids(&ba));

        let again = ab.import_archive(&archive_b).unwrap();
        prop_assert_eq!(again.changed(), 0);

        // The merged store's export re-imports as a pure no-op elsewhere.
        let round = Pass::open_memory(SiteId(9));
        round.import_archive(&ab.export_archive().unwrap()).unwrap();
        prop_assert_eq!(sorted_ids(&round), sorted_ids(&ab));
    }
}
