//! Interleaving-exploration model of the sharded commit + publish +
//! subscribe handoff, built with a vendored loom-compatible shim
//! (`vendor/loom`). The model mirrors the protocol in
//! `pass::ingest_batch_inner` / `shard::lock_many` rather than driving
//! the real `Pass` (whose internals use `std`/`parking_lot` primitives
//! the shim cannot instrument):
//!
//!   1. take per-shard commit locks in ascending shard order,
//!   2. apply the batch to every locked shard,
//!   3. inside the `publish_order` critical section, assign the next
//!      commit version and hand the event to subscribers,
//!   4. release in reverse order.
//!
//! Checked properties:
//!   * subscribers observe commit versions with no gap and no duplicate,
//!   * a version is never published before its batch is applied,
//!   * ascending lock order keeps concurrent single- and cross-shard
//!     writers deadlock-free (the shim's watchdog aborts stuck runs).
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p pass-core --test
//! loom_commit`; the file compiles to nothing otherwise.

#![cfg(loom)]
#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// What a shard commit lock protects in the model: the set of commit
/// versions whose batches have been applied to this shard.
type ShardState = Vec<u64>;

struct Model {
    /// Per-shard commit locks, to be taken in ascending index order only.
    shards: Vec<Mutex<ShardState>>,
    /// Serializes version assignment + subscriber handoff (the real
    /// `publish_order` mutex).
    publish_order: Mutex<()>,
    /// Last published commit version.
    published: AtomicU64,
    /// Subscriber mailbox: (version, shards the batch touched).
    events: Mutex<Vec<(u64, Vec<usize>)>>,
    events_ready: Condvar,
}

impl Model {
    fn new(nshards: usize) -> Self {
        Model {
            shards: (0..nshards).map(|_| Mutex::new(Vec::new())).collect(),
            publish_order: Mutex::new(()),
            published: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            events_ready: Condvar::new(),
        }
    }

    /// One commit: lock `targets` (must be sorted ascending), apply,
    /// publish. Mirrors `ingest_batch_inner`'s lock chain.
    fn commit(&self, targets: &[usize]) {
        debug_assert!(targets.windows(2).all(|w| w[0] < w[1]), "ascending lock order");
        let mut guards = Vec::with_capacity(targets.len());
        for &s in targets {
            guards.push(self.shards[s].lock().unwrap());
        }
        // Publish under `publish_order`, while still holding the shard
        // locks — exactly the real protocol's nesting.
        {
            let _order = self.publish_order.lock().unwrap();
            let version = self.published.load(Ordering::SeqCst) + 1;
            for guard in &mut guards {
                guard.push(version);
            }
            let mut events = self.events.lock().unwrap();
            events.push((version, targets.to_vec()));
            self.published.store(version, Ordering::SeqCst);
            self.events_ready.notify_all();
        }
        drop(guards);
    }

    /// Blocks until `expected` events have been delivered, then returns
    /// them in arrival order.
    fn drain(&self, expected: usize) -> Vec<(u64, Vec<usize>)> {
        let mut events = self.events.lock().unwrap();
        while events.len() < expected {
            events = self.events_ready.wait(events).unwrap();
        }
        events.clone()
    }
}

#[test]
fn two_shard_commit_publish_subscribe_handoff() {
    loom::model(|| {
        let model = Arc::new(Model::new(2));

        let writers: Vec<_> = [vec![0usize], vec![1], vec![0, 1]]
            .into_iter()
            .map(|targets| {
                let m = Arc::clone(&model);
                thread::spawn(move || m.commit(&targets))
            })
            .collect();

        let subscriber = {
            let m = Arc::clone(&model);
            thread::spawn(move || m.drain(3))
        };

        for w in writers {
            w.join().unwrap();
        }
        let events = subscriber.join().unwrap();

        // No gap, no duplicate: versions arrive as exactly 1, 2, 3.
        let versions: Vec<u64> = events.iter().map(|(v, _)| *v).collect();
        assert_eq!(versions, vec![1, 2, 3], "publish order must be gap- and dup-free");
        assert_eq!(model.published.load(Ordering::SeqCst), 3);

        // Apply-before-publish: every published version is present in the
        // state of every shard its batch targeted.
        for (version, targets) in &events {
            for &s in targets {
                let state = model.shards[s].lock().unwrap();
                assert!(
                    state.contains(version),
                    "version {version} published but not applied to shard {s}"
                );
            }
        }

        // Per-shard apply order matches publish order (commit locks are
        // held across publish, so versions are ascending per shard).
        for (s, shard) in model.shards.iter().enumerate() {
            let state = shard.lock().unwrap();
            assert!(
                state.windows(2).all(|w| w[0] < w[1]),
                "shard {s} applied versions out of publish order: {state:?}"
            );
        }
    });
}

#[test]
fn cross_shard_writers_do_not_deadlock() {
    // Two cross-shard writers contending for the same pair of locks plus
    // a single-shard writer in the middle. With ascending acquisition the
    // shim's watchdog never fires; a descending acquisition in one writer
    // would abort the test via the deadlock detector.
    loom::model(|| {
        let model = Arc::new(Model::new(3));
        let handles: Vec<_> = [vec![0usize, 2], vec![1], vec![0, 1, 2], vec![0, 2]]
            .into_iter()
            .map(|targets| {
                let m = Arc::clone(&model);
                thread::spawn(move || m.commit(&targets))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = model.drain(4);
        let mut versions: Vec<u64> = events.iter().map(|(v, _)| *v).collect();
        versions.sort_unstable();
        assert_eq!(versions, vec![1, 2, 3, 4]);
    });
}
