//! Reliability experiment E10: crash-recovery consistency and cost.

use pass_core::{Pass, PassConfig};
use pass_model::{keys, Attributes, Reading, SensorId, SiteId, Timestamp};
use pass_storage::tempdir::TempDir;
use rand::Rng;
use std::time::Instant;

/// Writes `n` tuple sets to a disk store without flushing, so everything
/// lives in the WAL; returns the directory.
pub fn e10_populate(n: usize) -> TempDir {
    let dir = TempDir::new("e10");
    let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).expect("open");
    for i in 0..n {
        let readings = vec![Reading::new(SensorId(1), Timestamp(i as u64)).with("v", i as i64)];
        let attrs = Attributes::new()
            .with(keys::DOMAIN, "traffic")
            .with(keys::TYPE, "capture")
            .with("seq", i as i64);
        pass.capture(attrs, readings, Timestamp(i as u64)).expect("capture");
    }
    // Dropped without flush: a crash.
    dir
}

/// E10 sweep: truncate the WAL at `trials` random points, reopen, audit.
/// Returns `(trials_run, consistent_trials, mean_recovery_ms)`.
pub fn e10_sweep(n_records: usize, trials: usize, seed: u64) -> (usize, usize, f64) {
    let dir = e10_populate(n_records);
    let wal_path = dir.path().join("wal.log");
    let bytes = std::fs::read(&wal_path).expect("wal exists");
    let mut rng = pass_sensor::gen::rng_for(seed, "e10");
    let mut consistent = 0usize;
    let mut total_ms = 0.0;
    for _ in 0..trials {
        let cut = rng.gen_range(0..=bytes.len());
        std::fs::write(&wal_path, &bytes[..cut]).expect("truncate");
        let t = Instant::now();
        let pass = Pass::open(PassConfig::disk(SiteId(1), dir.path())).expect("reopen");
        total_ms += t.elapsed().as_secs_f64() * 1_000.0;
        let report = pass.verify_consistency().expect("audit");
        if report.is_consistent() {
            consistent += 1;
        }
        drop(pass);
        std::fs::write(&wal_path, &bytes).expect("restore");
    }
    (trials, consistent, total_ms / trials as f64)
}

/// E10 table: consistency rate and recovery time vs log size.
pub fn e10_table() -> String {
    let mut out = String::from(
        "E10  crash recovery: random WAL truncation, reopen, audit\n\
         records   trials   consistent   mean_recovery_ms\n",
    );
    for n in [100usize, 1_000, 5_000] {
        let (trials, consistent, mean_ms) = e10_sweep(n, 20, n as u64);
        out.push_str(&format!(
            "{:>7} {:>8} {:>10}/{:<3} {:>15.2}\n",
            n, trials, consistent, trials, mean_ms
        ));
    }
    out
}
