//! §V privacy/security and replication experiments: E17 (degree of
//! aggregation), E18 (policy-enforcement overhead), E19 (replication
//! strategies).

use pass_core::Pass;
use pass_distrib::{Architecture, Replicated, ReplicationStrategy};
use pass_index::{Direction, TraverseOpts};
use pass_model::{
    Attributes, Digest128, ProvenanceBuilder, ProvenanceRecord, Reading, SensorId, SiteId,
    Timestamp, ToolDescriptor, TupleSetId,
};
use pass_net::{SimTime, Topology, TrafficClass};
use pass_policy::{
    kanonymize, Action, GuardedPass, NumericLadder, PolicyEngine, PolicyLabel, Principal,
    QuasiSpec, Rule, Sensitivity,
};
use pass_query::Predicate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

// ---------------------------------------------------------------------
// E17 — what degree of aggregation is necessary? (§V)
// ---------------------------------------------------------------------

/// A synthetic mass-casualty roster: per-patient vitals with demographic
/// quasi-identifiers (age, triage zone). Heart rate correlates weakly
/// with age so utility loss is observable.
pub fn e17_patients(n: usize, seed: u64) -> Vec<Reading> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let age = rng.gen_range(16.0f64..96.0).floor();
            let zone = rng.gen_range(0.0f64..10.0).floor();
            let hr = 60.0 + (age - 50.0) * 0.15 + rng.gen_range(-12.0..12.0);
            Reading::new(SensorId(i as u64), Timestamp(i as u64))
                .with("age", age)
                .with("zone", zone)
                .with("heart_rate", hr)
        })
        .collect()
}

/// The E17 quasi-identifier spec: age generalizes 5→10→25-year bands,
/// triage zone 2→5-zone sectors; heart rate is the sensitive field.
pub fn e17_spec() -> QuasiSpec {
    QuasiSpec::new(
        vec![
            NumericLadder::new("age", vec![5.0, 10.0, 25.0]).expect("valid ladder"),
            NumericLadder::new("zone", vec![2.0, 5.0]).expect("valid ladder"),
        ],
        "heart_rate",
    )
    .expect("valid spec")
}

/// E17 table: k sweep vs privacy (risk) and utility (error, info loss).
pub fn e17_table() -> String {
    let patients = e17_patients(400, 17);
    let spec = e17_spec();
    let mut out = String::from(
        "E17  degree of aggregation: k vs re-identification risk vs utility (400 patients)\n\
         k      level   groups   released   suppr_rate   risk      hr_mae   info_loss\n",
    );
    for k in [1usize, 2, 5, 10, 25, 50] {
        let anon = kanonymize(&patients, k, &spec, 0.05).expect("aggregation succeeds");
        out.push_str(&format!(
            "{:<6} {:>5} {:>8} {:>10} {:>12.3} {:>9.4} {:>8.2} {:>11.2}\n",
            k,
            anon.level,
            anon.groups.len(),
            anon.released(),
            anon.suppression_rate(),
            anon.risk(),
            anon.mean_abs_error,
            anon.info_loss,
        ));
    }
    out
}

/// E17 companion measurement: provenance of the aggregate. Ingests the
/// roster as per-incident tuple sets, releases a k-anonymous aggregate
/// through the guard, and returns (ancestry_len, tool_k) — the §V
/// "provenance of such aggregates" check.
pub fn e17_aggregate_provenance(k: usize) -> (usize, i64) {
    let clinician = Principal::new("emt-0")
        .with_role("clinician")
        .with_clearance(Sensitivity::Private)
        .with_category("phi");
    let engine = PolicyEngine::deny_by_default()
        .with_rule(Rule::allow("clinician").for_role("clinician"))
        // Anyone may read records whose label is public (sensitivity 0).
        .with_rule(Rule::allow("public-read").when(Predicate::Cmp(
            pass_policy::label::ATTR_SENSITIVITY.into(),
            pass_query::CmpOp::Le,
            0i64.into(),
        )));
    let guard = GuardedPass::new(Pass::open_memory(SiteId(1)), engine);
    let label = PolicyLabel::new(Sensitivity::Private).with_category("phi");

    let patients = e17_patients(120, 18);
    let mut parents = Vec::new();
    for (i, chunk) in patients.chunks(30).enumerate() {
        let id = guard
            .capture(
                &clinician,
                label.clone(),
                Attributes::new().with("domain", "medical").with("incident", i as i64),
                chunk.to_vec(),
                Timestamp(i as u64),
            )
            .expect("capture");
        parents.push(id);
    }
    let (agg, anon) = guard
        .aggregate(
            &clinician,
            &parents,
            k,
            &e17_spec(),
            0.05,
            PolicyLabel::public(),
            Attributes::new().with("domain", "medical"),
            Timestamp(99),
        )
        .expect("aggregate");
    let record = guard.get_record(&Principal::new("citizen"), agg).expect("public aggregate");
    let tool_k = record.ancestry[0].tool.params.get_int("k").unwrap_or(-1);
    assert_eq!(anon.k as i64, tool_k);
    (record.ancestry.len(), tool_k)
}

// ---------------------------------------------------------------------
// E18 — policy enforcement overhead
// ---------------------------------------------------------------------

/// Builds the E18 store: `n` labelled records (half private/phi, half
/// public) across four regions, plus one depth-`chain` derivation chain
/// with alternating labels for the redaction measurement.
pub fn e18_store(n: usize, chain: usize) -> (Pass, Vec<TupleSetId>, TupleSetId) {
    let pass = Pass::open_memory(SiteId(1));
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let mut attrs = Attributes::new()
            .with("domain", "traffic")
            .with("region", format!("metro-{}", i % 4))
            .with("window", i as i64);
        let label = if i % 2 == 0 {
            PolicyLabel::public()
        } else {
            PolicyLabel::new(Sensitivity::Private).with_category("phi")
        };
        label.apply_to(&mut attrs);
        let readings =
            vec![Reading::new(SensorId(i as u64), Timestamp(i as u64)).with("speed", 42.0)];
        ids.push(pass.capture(attrs, readings, Timestamp(i as u64)).expect("capture"));
    }

    // Alternating-label chain for lineage redaction. The head (last
    // element) must be public so the analyst can anchor the traversal.
    let mut prev: Option<TupleSetId> = None;
    let mut head = ids[0];
    for i in 0..chain {
        let mut attrs = Attributes::new().with("domain", "pipeline").with("step", i as i64);
        let label = if (chain - 1 - i).is_multiple_of(2) {
            PolicyLabel::public()
        } else {
            PolicyLabel::new(Sensitivity::Private).with_category("phi")
        };
        label.apply_to(&mut attrs);
        let id = match prev {
            None => pass.capture(attrs, vec![], Timestamp(1_000_000 + i as u64)).expect("capture"),
            Some(p) => pass
                .derive(
                    &[p],
                    &ToolDescriptor::new("stage", "1"),
                    attrs,
                    vec![],
                    Timestamp(1_000_000 + i as u64),
                )
                .expect("derive"),
        };
        prev = Some(id);
        head = id;
    }
    (pass, ids, head)
}

/// The E18 reader: cleared for public+internal, not private.
pub fn e18_analyst() -> Principal {
    Principal::new("analyst").with_role("analyst").with_clearance(Sensitivity::Internal)
}

/// The E18 engine: analysts may read/query/traverse anything their
/// clearance dominates.
pub fn e18_engine() -> PolicyEngine {
    PolicyEngine::deny_by_default().with_rule(Rule::allow("analyst-read").for_role("analyst").on([
        Action::ReadProvenance,
        Action::ReadLineage,
        Action::ReadData,
    ]))
}

/// E18 table: per-operation latency with and without the guard.
pub fn e18_table() -> String {
    let n = 2_000;
    let chain = 64;
    let rounds = 200;

    // Unguarded baseline.
    let (pass, ids, head) = e18_store(n, chain);
    let queries: Vec<String> =
        (0..4).map(|r| format!(r#"FIND WHERE region = "metro-{r}""#)).collect();

    let t = Instant::now();
    let mut matched = 0usize;
    for i in 0..rounds {
        matched += pass.query_text(&queries[i % 4]).expect("query").ids().len();
    }
    let plain_query_us = t.elapsed().as_micros() as f64 / rounds as f64;

    let t = Instant::now();
    for &id in &ids {
        std::hint::black_box(pass.get_record(id));
    }
    let plain_get_us = t.elapsed().as_micros() as f64 / ids.len() as f64;

    let t = Instant::now();
    let full =
        pass.lineage(head, Direction::Ancestors, TraverseOpts::unbounded()).expect("lineage");
    let plain_lineage_us = t.elapsed().as_micros() as f64;
    let full_len = full.len();

    // Guarded.
    let guard = GuardedPass::new(pass, e18_engine());
    let analyst = e18_analyst();

    let t = Instant::now();
    let mut visible = 0usize;
    let mut withheld = 0usize;
    for i in 0..rounds {
        let (v, w) = guard.query_text(&analyst, &queries[i % 4]).expect("query");
        visible += v.len();
        withheld += w;
    }
    let guarded_query_us = t.elapsed().as_micros() as f64 / rounds as f64;

    let t = Instant::now();
    let mut allowed = 0usize;
    for &id in &ids {
        if guard.get_record(&analyst, id).is_ok() {
            allowed += 1;
        }
    }
    let guarded_get_us = t.elapsed().as_micros() as f64 / ids.len() as f64;

    let t = Instant::now();
    let view = guard
        .lineage(&analyst, head, Direction::Ancestors, TraverseOpts::unbounded())
        .expect("redacted lineage");
    let guarded_lineage_us = t.elapsed().as_micros() as f64;

    let mut out = String::from(
        "E18  policy enforcement overhead (2000 records, 50% private; 200 queries)\n\
         operation              unguarded_us   guarded_us   factor\n",
    );
    let row = |op: &str, a: f64, b: f64| {
        format!("{:<22} {:>13.1} {:>12.1} {:>8.2}\n", op, a, b, b / a.max(0.001))
    };
    out.push_str(&row("attribute query", plain_query_us, guarded_query_us));
    out.push_str(&row("get_record", plain_get_us, guarded_get_us));
    out.push_str(&row("lineage depth-64", plain_lineage_us, guarded_lineage_us));
    out.push_str(&format!(
        "query results: {} matched unguarded; {} visible + {} withheld guarded\n",
        matched, visible, withheld
    ));
    out.push_str(&format!(
        "get_record: {}/{} allowed; lineage: {} full nodes -> {} visible + {} redacted \
         ({} contracted edges); audit entries: {}\n",
        allowed,
        ids.len(),
        full_len,
        view.visible.len(),
        view.redacted_count,
        view.edges.iter().filter(|e| e.via_redacted > 0).count(),
        guard.audit().len(),
    ));
    out
}

// ---------------------------------------------------------------------
// E19 — replication strategies (§V "supporting replication cheaply")
// ---------------------------------------------------------------------

/// E19 topology: 4 metro clusters × 4 sites.
pub fn e19_topology() -> Topology {
    Topology::clustered(4, 4, 2.0, 40.0)
}

/// E19 corpus: `per_site` traffic records at each of 16 sites, region
/// keyed by metro cluster.
pub fn e19_corpus(per_site: usize) -> Vec<(usize, ProvenanceRecord)> {
    let sites = 16;
    let mut out = Vec::with_capacity(sites * per_site);
    let mut n = 0u64;
    for site in 0..sites {
        for _ in 0..per_site {
            let record = ProvenanceBuilder::new(SiteId(site as u32), Timestamp(n))
                .attrs(
                    &Attributes::new()
                        .with("domain", "traffic")
                        .with("region", format!("metro-{}", site / 4))
                        .with("window", n as i64),
                )
                .build(Digest128::of(&n.to_be_bytes()));
            out.push((site, record));
            n += 1;
        }
    }
    out
}

/// One E19 measurement row.
#[derive(Debug, Clone)]
pub struct E19Row {
    /// Strategy label.
    pub strategy: String,
    /// Update-class traffic for the whole publish phase, KiB.
    pub publish_kib: f64,
    /// First query latency (cold), simulated ms.
    pub first_ms: f64,
    /// Same query repeated from the same site, simulated ms.
    pub repeat_ms: f64,
    /// Recall of the warmed query after 4/16 sites died.
    pub warm_recall: f64,
    /// Recall of a never-before-seen query after the failures.
    pub cold_recall: f64,
}

fn issue_and_latency(
    arch: &mut Replicated,
    site: usize,
    query: &pass_query::Query,
) -> (f64, Vec<TupleSetId>) {
    let start = arch.now();
    let op = arch.query(site, query);
    // Long enough for the 2 s query deadline plus slack.
    arch.run_for(SimTime::from_millis(5_000));
    let outcome = arch.outcomes().into_iter().find(|o| o.op == op);
    match outcome {
        Some(o) => {
            let ms = (o.at.as_micros().saturating_sub(start.as_micros())) as f64 / 1_000.0;
            (ms, o.ids)
        }
        None => (f64::NAN, Vec::new()),
    }
}

fn recall_of(ids: &[TupleSetId], truth: &[TupleSetId]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hit = ids.iter().filter(|id| truth.contains(id)).count();
    hit as f64 / truth.len() as f64
}

/// Runs E19 for one strategy.
pub fn e19_run(strategy: ReplicationStrategy) -> E19Row {
    let corpus = e19_corpus(25);
    let mut arch = Replicated::new(e19_topology(), 19, strategy);

    for (site, record) in &corpus {
        arch.publish(*site, record);
    }
    arch.run_quiet();
    let publish_kib = arch.net().class(TrafficClass::Update).bytes as f64 / 1024.0;
    arch.reset_net();

    // The client in metro-0 investigates metro-1 (cross-WAN locale).
    let warm_q = pass_query::parse(r#"FIND WHERE region = "metro-1""#).expect("parse");
    let cold_q = pass_query::parse(r#"FIND WHERE region = "metro-2""#).expect("parse");
    let truth = |pred: &Predicate| -> Vec<TupleSetId> {
        corpus.iter().filter(|(_, r)| pred.matches(r)).map(|(_, r)| r.id).collect()
    };
    let warm_truth = truth(&warm_q.filter);
    let cold_truth = truth(&cold_q.filter);

    let (first_ms, _) = issue_and_latency(&mut arch, 0, &warm_q);
    let (repeat_ms, _) = issue_and_latency(&mut arch, 0, &warm_q);

    // Kill one site per metro (none of them the client).
    for site in [2usize, 6, 10, 14] {
        arch.crash_now(site);
    }
    let (_, warm_ids) = issue_and_latency(&mut arch, 0, &warm_q);
    let (_, cold_ids) = issue_and_latency(&mut arch, 0, &cold_q);

    E19Row {
        strategy: strategy.label(),
        publish_kib,
        first_ms,
        repeat_ms,
        warm_recall: recall_of(&warm_ids, &warm_truth),
        cold_recall: recall_of(&cold_ids, &cold_truth),
    }
}

/// E19 table: replication strategy vs cost, speed, and post-failure
/// recall.
pub fn e19_table() -> String {
    let mut out = String::from(
        "E19  replication strategies: cost vs repeat-query speed vs post-failure recall\n\
         (16 sites in 4 metros; 400 records; 4 sites killed after the warm query)\n\
         strategy       publish_KiB   first_q_ms   repeat_q_ms   warm_recall   cold_recall\n",
    );
    for strategy in [
        ReplicationStrategy::OriginOnly,
        ReplicationStrategy::Eager { factor: 2 },
        ReplicationStrategy::Eager { factor: 4 },
        ReplicationStrategy::Eager { factor: 16 },
        ReplicationStrategy::OnRead,
    ] {
        let row = e19_run(strategy);
        out.push_str(&format!(
            "{:<14} {:>11.1} {:>12.2} {:>13.2} {:>13.3} {:>13.3}\n",
            row.strategy,
            row.publish_kib,
            row.first_ms,
            row.repeat_ms,
            row.warm_recall,
            row.cold_recall,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_risk_bounded_by_k() {
        let patients = e17_patients(200, 1);
        let spec = e17_spec();
        for k in [2usize, 5, 10] {
            let anon = kanonymize(&patients, k, &spec, 0.05).unwrap();
            assert!(anon.risk() <= 1.0 / k as f64 + 1e-9);
        }
    }

    #[test]
    fn e17_provenance_names_sources_and_k() {
        let (ancestry, tool_k) = e17_aggregate_provenance(5);
        assert_eq!(ancestry, 4, "four incident tuple sets pooled");
        assert_eq!(tool_k, 5);
    }

    #[test]
    fn e18_guard_withholds_half() {
        let (pass, ids, _) = e18_store(100, 4);
        let guard = GuardedPass::new(pass, e18_engine());
        let analyst = e18_analyst();
        let allowed = ids.iter().filter(|&&id| guard.get_record(&analyst, id).is_ok()).count();
        assert_eq!(allowed, 50);
    }

    #[test]
    fn e19_rows_have_expected_shape() {
        let origin = e19_run(ReplicationStrategy::OriginOnly);
        let full = e19_run(ReplicationStrategy::Eager { factor: 16 });
        let onread = e19_run(ReplicationStrategy::OnRead);
        // Full replication pays the publish bandwidth, wins everything else.
        assert!(full.publish_kib > origin.publish_kib * 10.0);
        assert!(full.warm_recall >= 0.999 && full.cold_recall >= 0.999);
        // Consumer caching: repeats are (near) free and warm survives.
        assert!(onread.repeat_ms < onread.first_ms / 2.0);
        assert!(onread.warm_recall >= 0.999);
        assert!(onread.cold_recall < 0.999, "cold query loses the dead site's share");
        // No replication: both recalls degrade.
        assert!(origin.warm_recall < 0.999);
    }
}
