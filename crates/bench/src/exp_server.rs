//! E24: open-loop serving-layer latency across the knee.
//!
//! The serving experiments so far drove the engine in-process. E24
//! measures the whole stack the way production sees it — real TCP,
//! framed codec, admission control — under an **open-loop** load whose
//! offered rate does not care how the server is doing.
//!
//! Method:
//!
//! 1. **Calibrate the knee.** A closed-loop burst (every connection
//!    publishing back-to-back) measures the server's maximum sustained
//!    commit rate on this host. That rate is the knee: open-loop
//!    behavior changes qualitatively on either side of it.
//! 2. **Sweep offered rates** at fixed multiples of the knee, below and
//!    above (default 0.3/0.6/0.9/1.2/2.0×). Each point runs against a
//!    fresh disk-backed store so points do not contaminate each other.
//! 3. **Report coordinated-omission-safe latency** (p50/p99/p999 from
//!    the *scheduled* arrival instant) plus the shed accounting: above
//!    the knee a server without admission control queues without bound;
//!    this one rejects with `Overloaded`, keeping the latency of
//!    admitted work bounded while the shed fraction grows.
//!
//! The admission byte budget is deliberately sized in *batches*
//! (`budget_batches × payload`), below the connection count: with
//! inline dispatch, in-flight bytes track the number of simultaneously
//! committing connections, so a budget under `connections × payload` is
//! what lets the gate express overload instead of letting the kernel's
//! socket buffers absorb it invisibly.

use pass_core::{Pass, PassConfig};
use pass_distrib::wire::WireMsg;
use pass_loadgen::{LoadConfig, LoadReport};
use pass_model::SiteId;
use pass_server::{serve, AdmissionConfig, Client, PublishOutcome, ServerConfig, ServerHandle};
use pass_storage::tempdir::TempDir;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E24 configuration (env-tunable via the bench driver).
#[derive(Debug, Clone)]
pub struct E24Config {
    /// Client connections (both calibration and sweep).
    pub connections: usize,
    /// Measurement window per sweep point.
    pub duration: Duration,
    /// Tuple sets per publish batch.
    pub sets_per_batch: usize,
    /// Readings per tuple set.
    pub readings_per_set: usize,
    /// Admission byte budget, in multiples of one batch payload. Keep
    /// at or below `connections / 2` so overload is expressed as
    /// explicit shed rather than disappearing into socket buffers.
    pub budget_batches: u64,
    /// Offered rates to sweep, as multiples of the calibrated knee.
    pub multipliers: Vec<f64>,
    /// Schedule/payload seed.
    pub seed: u64,
}

impl Default for E24Config {
    fn default() -> Self {
        E24Config {
            connections: 16,
            duration: Duration::from_secs(5),
            sets_per_batch: 4,
            readings_per_set: 4,
            budget_batches: 8,
            multipliers: vec![0.3, 0.6, 0.9, 1.2, 2.0],
            seed: 24,
        }
    }
}

/// One sweep point: offered rate in, latency + shed accounting out.
#[derive(Debug, Clone)]
pub struct E24Point {
    /// Offered rate as a multiple of the knee.
    pub mult: f64,
    /// Offered rate, publishes/s.
    pub offered: f64,
    /// Publishes sent / committed / shed / errored.
    pub sent: u64,
    /// Committed (`PublishOk`) publishes.
    pub committed: u64,
    /// Shed (`Overloaded`) publishes, as the client counted them.
    pub overloaded: u64,
    /// Client-side errors.
    pub errors: u64,
    /// Publishes unanswered within the drain window.
    pub unanswered: u64,
    /// Server-side rejection counter (cross-checks `overloaded`).
    pub server_rejected: u64,
    /// Committed publishes per second.
    pub goodput: f64,
    /// Commit latency percentiles, ms (CO-safe, from scheduled arrival).
    pub p50_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
    /// Mean, ms.
    pub mean_ms: f64,
    /// Max, ms.
    pub max_ms: f64,
    /// Median latency of a shed reply, ms (rejections must stay cheap).
    pub shed_p50_ms: f64,
}

/// The full experiment: calibration + sweep.
#[derive(Debug, Clone)]
pub struct E24Report {
    /// Calibrated knee, committed publishes/s (closed loop).
    pub knee: f64,
    /// Connections used.
    pub connections: usize,
    /// One batch's wire payload, bytes.
    pub payload_bytes: u64,
    /// Admission byte budget used for the sweep.
    pub budget_bytes: u64,
    /// Measurement window per point, seconds.
    pub duration_s: f64,
    /// The sweep, in multiplier order.
    pub points: Vec<E24Point>,
}

/// Wire payload bytes of one publish batch under `config`.
pub fn e24_payload_bytes(config: &E24Config) -> u64 {
    let sets = pass_loadgen::workload::batch(0, 0, config.sets_per_batch, config.readings_per_set);
    let mut buf = Vec::new();
    WireMsg::Publish { op: 1, sets }.encode_body(&mut buf);
    buf.len() as u64
}

fn fresh_server(budget_bytes: u64, connections: usize) -> (TempDir, ServerHandle) {
    let dir = TempDir::new("e24-server");
    let pass =
        Arc::new(Pass::open(PassConfig::disk(SiteId(1), dir.path())).expect("open e24 disk store"));
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_in_flight_bytes: budget_bytes,
            max_connections: connections + 8,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = serve("127.0.0.1:0", pass, config).expect("bind e24 server");
    (dir, server)
}

/// Closed-loop knee calibration: every connection publishes
/// back-to-back for `window`; the knee is the aggregate *commit* rate.
/// Runs against the same admission budget as the sweep, so the knee is
/// the configured server's maximum goodput — shed replies during
/// calibration simply don't count.
pub fn e24_calibrate(config: &E24Config, window: Duration) -> f64 {
    let budget_bytes = e24_payload_bytes(config) * config.budget_batches;
    let (_dir, server) = fresh_server(budget_bytes, config.connections);
    let addr = server.addr();
    let sets_per_batch = config.sets_per_batch;
    let readings = config.readings_per_set;

    let workers: Vec<_> = (0..config.connections)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(_) => return 0u64,
                };
                let start = Instant::now();
                let mut committed = 0u64;
                let mut seq = 0u64;
                while start.elapsed() < window {
                    let batch = pass_loadgen::workload::batch(
                        conn as u32 + 1_000,
                        seq,
                        sets_per_batch,
                        readings,
                    );
                    seq += 1;
                    match client.publish(batch) {
                        Ok(PublishOutcome::Committed(_)) => committed += 1,
                        Ok(PublishOutcome::Overloaded) => {}
                        Err(_) => break,
                    }
                }
                committed
            })
        })
        .collect();
    let committed: u64 = workers.into_iter().map(|w| w.join().unwrap_or(0)).sum();
    server.shutdown().expect("calibration shutdown");
    (committed as f64 / window.as_secs_f64()).max(1.0)
}

/// Runs the full sweep. `knee` comes from [`e24_calibrate`] (passed in
/// so the driver can print it first and reuse it across reruns).
pub fn e24_run(config: &E24Config, knee: f64) -> E24Report {
    let payload_bytes = e24_payload_bytes(config);
    let budget_bytes = payload_bytes * config.budget_batches;
    let mut points = Vec::with_capacity(config.multipliers.len());

    for (i, &mult) in config.multipliers.iter().enumerate() {
        let offered = (knee * mult).max(1.0);
        let (_dir, server) = fresh_server(budget_bytes, config.connections);
        let load = LoadConfig {
            offered_rate: offered,
            duration: config.duration,
            connections: config.connections,
            sets_per_batch: config.sets_per_batch,
            readings_per_set: config.readings_per_set,
            seed: config.seed.wrapping_add(i as u64),
            drain: Duration::from_secs(10),
        };
        let report = pass_loadgen::run(server.addr(), &load).expect("e24 load run");
        let stats = server.stats();
        points.push(point_of(mult, &report, stats.publishes_rejected));
        server.shutdown().expect("sweep point shutdown");
    }

    E24Report {
        knee,
        connections: config.connections,
        payload_bytes,
        budget_bytes,
        duration_s: config.duration.as_secs_f64(),
        points,
    }
}

fn point_of(mult: f64, report: &LoadReport, server_rejected: u64) -> E24Point {
    E24Point {
        mult,
        offered: report.offered_rate,
        sent: report.sent,
        committed: report.committed,
        overloaded: report.overloaded,
        errors: report.errors,
        unanswered: report.unanswered,
        server_rejected,
        goodput: report.goodput,
        p50_ms: report.latency.p50_ms,
        p99_ms: report.latency.p99_ms,
        p999_ms: report.latency.p999_ms,
        mean_ms: report.latency.mean_ms,
        max_ms: report.latency.max_ms,
        shed_p50_ms: report.shed_latency.p50_ms,
    }
}

impl E24Report {
    /// Human-readable sweep table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "E24 open-loop serving latency: knee {:.0}/s, {} conns, budget {} B ({}x payload)\n\
             mult  offered/s  committed  shed   unans  p50_ms  p99_ms  p999_ms  shed_p50\n",
            self.knee,
            self.connections,
            self.budget_bytes,
            self.budget_bytes / self.payload_bytes.max(1),
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<5.2} {:>9.0} {:>10} {:>6} {:>6} {:>7.2} {:>7.2} {:>8.2} {:>9.2}\n",
                p.mult,
                p.offered,
                p.committed,
                p.overloaded,
                p.unanswered,
                p.p50_ms,
                p.p99_ms,
                p.p999_ms,
                p.shed_p50_ms,
            ));
        }
        out
    }
}

/// `BENCH_e24.json` payload.
pub fn e24_json(report: &E24Report) -> String {
    fn num(v: f64) -> String {
        format!("{v:.3}")
    }
    let mut s = String::from("{\n  \"experiment\": \"e24_open_loop_serving\",\n");
    s.push_str(&format!("  \"knee_per_s\": {},\n", num(report.knee)));
    s.push_str(&format!("  \"connections\": {},\n", report.connections));
    s.push_str(&format!("  \"payload_bytes\": {},\n", report.payload_bytes));
    s.push_str(&format!("  \"budget_bytes\": {},\n", report.budget_bytes));
    s.push_str(&format!("  \"duration_s\": {},\n", num(report.duration_s)));
    s.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mult\": {}, \"offered_per_s\": {}, \"sent\": {}, \"committed\": {}, \
             \"overloaded\": {}, \"errors\": {}, \"unanswered\": {}, \"server_rejected\": {}, \
             \"goodput_per_s\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
             \"mean_ms\": {}, \"max_ms\": {}, \"shed_p50_ms\": {}}}{}\n",
            num(p.mult),
            num(p.offered),
            p.sent,
            p.committed,
            p.overloaded,
            p.errors,
            p.unanswered,
            p.server_rejected,
            num(p.goodput),
            num(p.p50_ms),
            num(p.p99_ms),
            num(p.p999_ms),
            num(p.mean_ms),
            num(p.max_ms),
            num(p.shed_p50_ms),
            if i + 1 == report.points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn e24_tiny_sweep_is_consistent() {
        let config = E24Config {
            connections: 2,
            duration: Duration::from_millis(500),
            multipliers: vec![0.5],
            ..E24Config::default()
        };
        let knee = e24_calibrate(&config, Duration::from_millis(300));
        assert!(knee >= 1.0);
        let report = e24_run(&config, knee);
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.committed + p.overloaded + p.unanswered, p.sent);
        assert_eq!(p.server_rejected, p.overloaded, "client and server agree on sheds");
        let json = e24_json(&report);
        assert!(json.contains("\"experiment\": \"e24_open_loop_serving\""));
        assert!(report.table().contains("E24"));
    }
}
