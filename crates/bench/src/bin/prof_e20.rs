use pass_bench::exp_local::e20_batched_store;
fn main() {
    for total in [8192usize, 32768] {
        for batch in [1usize, 256] {
            let t = std::time::Instant::now();
            let (_p, rate) = e20_batched_store(total, batch);
            eprintln!("total={total} batch={batch}: {rate:.0}/s wall={:?}", t.elapsed());
        }
    }
}
