//! Prints every experiment table (E1–E22). The output of this binary is
//! the source of record for `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p pass-bench --bin experiments            # all
//! cargo run --release -p pass-bench --bin experiments e3 e14     # some
//! ```

use pass_bench::{exp_dist, exp_local, exp_policy, exp_rel, exp_soft};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |tag: &str| args.is_empty() || args.iter().any(|a| a == tag);

    type Experiment = (&'static str, fn() -> String);
    let experiments: Vec<Experiment> = vec![
        ("e1", exp_local::e01_table),
        ("e2", exp_local::e02_table),
        ("e3", exp_local::e03_table),
        ("e4", exp_local::e04_table),
        ("e5", exp_dist::e05_table),
        ("e6", exp_dist::e06_table),
        ("e7", exp_dist::e07_table),
        ("e8", exp_dist::e08_table),
        ("e9", exp_soft::e09_table),
        ("e10", exp_rel::e10_table),
        ("e11", exp_soft::e11_table),
        ("e12", exp_local::e12_table),
        ("e13", exp_dist::e13_table),
        ("e14", exp_dist::e14_table),
        ("e15", exp_soft::e15_table),
        ("e16", exp_local::e16_table),
        ("e17", exp_policy::e17_table),
        ("e18", exp_policy::e18_table),
        ("e19", exp_policy::e19_table),
        ("e20", exp_local::e20_table),
        ("e21", exp_local::e21_table),
        ("e22", exp_dist::e22_table),
    ];
    for arg in &args {
        if !experiments.iter().any(|(tag, _)| tag == arg) {
            let known: Vec<&str> = experiments.iter().map(|(tag, _)| *tag).collect();
            eprintln!("unknown experiment {arg:?}; known: {}", known.join(" "));
            std::process::exit(2);
        }
    }
    for (tag, run) in experiments {
        if want(tag) {
            eprintln!("[running {tag}]");
            println!("{}", run());
        }
    }
}
