//! Local-store experiments: E1 (granularity), E2 (naming), E3 (closure
//! strategies), E4 (query mix), E12 (PASS properties), E16 (abstraction),
//! E20 (group-commit batched ingest), E21 (streaming vs materialized
//! query execution).

use pass_core::Pass;
use pass_index::closure::{BfsClosure, MemoClosure, NaiveJoinClosure, ReachStrategy, TraverseOpts};
use pass_index::{AncestryGraph, Direction, IntervalClosure};
use pass_model::{
    flatname, keys, Attributes, Digest128, ProvenanceBuilder, ProvenanceRecord, Reading, SensorId,
    SiteId, Timestamp, ToolDescriptor, TupleSet, TupleSetId, Value,
};
use pass_sensor::gen::rng_for;
use pass_sensor::{medical, traffic, volcano, weather, workload};
use rand::Rng;
use std::time::Instant;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

// ---------------------------------------------------------------------------
// E1 — index granularity
// ---------------------------------------------------------------------------

/// Builds a store holding `total_readings` readings grouped `per_set` to a
/// tuple set. Returns the store and its tuple-set ids.
pub fn e01_store(total_readings: usize, per_set: usize) -> (Pass, Vec<TupleSetId>) {
    let pass = Pass::open_memory(SiteId(1));
    let mut rng = rng_for(1, "e01");
    let mut ids = Vec::new();
    let sets = total_readings / per_set;
    for s in 0..sets {
        let start = (s * per_set) as u64 * 1_000;
        let readings: Vec<Reading> = (0..per_set)
            .map(|i| {
                Reading::new(SensorId((s % 64) as u64), Timestamp(start + i as u64 * 1_000))
                    .with("speed_kmh", rng.gen_range(10.0..80.0))
            })
            .collect();
        let attrs = Attributes::new()
            .with(keys::DOMAIN, "traffic")
            .with(keys::REGION, format!("zone-{}", s % 8))
            .with(keys::TYPE, "car_sighting")
            .with("sensor.id", (s % 64) as i64)
            .with(keys::TIME_START, Timestamp(start))
            .with(keys::TIME_END, Timestamp(start + per_set as u64 * 1_000 - 1));
        ids.push(
            pass.capture(attrs, readings, Timestamp(start + per_set as u64 * 1_000))
                .expect("capture"),
        );
    }
    (pass, ids)
}

/// E1 table: granularity sweep.
pub fn e01_table() -> String {
    let total = 20_000;
    let mut out = String::from(
        "E1  index granularity (20k readings; per-tuple vs tuple-set indexing)\n\
         per_set   sets   ingest_ms   index_KiB   eq_query_ms   overlap_query_ms\n",
    );
    for per_set in [1usize, 10, 100, 1_000] {
        let t0 = Instant::now();
        let (pass, _) = e01_store(total, per_set);
        let ingest = t0.elapsed();
        let stats = pass.stats();
        let t1 = Instant::now();
        for _ in 0..20 {
            pass.query_text(r#"FIND WHERE region = "zone-3""#).expect("query");
        }
        let eq = t1.elapsed() / 20;
        let t2 = Instant::now();
        for _ in 0..20 {
            pass.query_text("FIND WHERE time OVERLAPS [1000000, 2000000]").expect("query");
        }
        let overlap = t2.elapsed() / 20;
        out.push_str(&format!(
            "{:>7} {:>6} {:>11.1} {:>11.1} {:>13.3} {:>18.3}\n",
            per_set,
            stats.records,
            ms(ingest),
            stats.index_bytes as f64 / 1024.0,
            ms(eq),
            ms(overlap)
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// E20 — group-commit batched ingest
// ---------------------------------------------------------------------------

/// Ingests `total_sets` single-reading tuple sets through the
/// generate → batch → ingest pipeline at the given group-commit size.
/// Returns the store and the achieved sets/second.
pub fn e20_batched_store(total_sets: usize, batch_size: usize) -> (Pass, f64) {
    e20_batched_into(Pass::open_memory(SiteId(1)), total_sets, batch_size)
}

/// Disk-backend variant of [`e20_batched_store`]: every group commit is
/// one WAL append + fsync, so batching amortizes real durability cost,
/// not just index maintenance. Returns the store, the backing tempdir
/// (dropping it deletes the store), and the achieved sets/second.
pub fn e20_batched_store_disk(
    total_sets: usize,
    batch_size: usize,
) -> (Pass, pass_storage::tempdir::TempDir, f64) {
    let dir = pass_storage::tempdir::TempDir::new("e20-disk");
    let pass = Pass::open(pass_core::PassConfig::disk(SiteId(1), dir.path())).expect("open disk");
    let (pass, rate) = e20_batched_into(pass, total_sets, batch_size);
    (pass, dir, rate)
}

fn e20_batched_into(pass: Pass, total_sets: usize, batch_size: usize) -> (Pass, f64) {
    let specs = e20_specs(total_sets);
    let t = Instant::now();
    let ids = pass_sensor::ingest_in_batches(specs, batch_size, |items| pass.capture_batch(items))
        .expect("batched capture");
    let rate = ids.len() as f64 / t.elapsed().as_secs_f64();
    (pass, rate)
}

/// Concurrent-writer × shard-count E20 variant (ISSUE 6): `writers`
/// threads ingest disjoint partitions of the e20 corpus into a disk
/// store with `shards` commit shards, every group commit fsynced
/// (`SyncPolicy::Always`) so the overlappable cost — the per-commit
/// fsync — is actually on the critical path. With `shards >= writers`
/// each writer owns whole shard streams: every commit is single-shard
/// and takes only its own shard's lock (and WAL). With
/// `shards < writers` the writers share streams and contend on the
/// shard locks — the single-lock baseline the sharding is measured
/// against. Corpus generation happens off the clock. Returns the store,
/// the backing tempdir, and the achieved sets/second.
pub fn e20_concurrent_store_disk(
    total_sets: usize,
    batch_size: usize,
    writers: usize,
    shards: usize,
) -> (Pass, pass_storage::tempdir::TempDir, f64) {
    let dir = pass_storage::tempdir::TempDir::new("e20-conc");
    let options = pass_storage::EngineOptions {
        sync: pass_storage::SyncPolicy::Always,
        ..Default::default()
    };
    let config = pass_core::PassConfig {
        site: SiteId(1),
        backend: pass_core::Backend::Disk { dir: dir.path().to_path_buf(), options },
        ..Default::default()
    }
    .with_shards(shards);
    let pass = Pass::open(config).expect("open sharded disk store");

    let sets: Vec<TupleSet> = e20_specs(total_sets)
        .iter()
        .map(|spec| pass_sensor::pipeline::capture_to_tuple_set(spec, SiteId(1)))
        .collect();
    let mut streams: Vec<Vec<TupleSet>> = (0..shards).map(|_| Vec::new()).collect();
    for ts in sets {
        streams[pass_core::keyspace::shard_of(ts.provenance.id, shards)].push(ts);
    }
    // Batch-to-writer assignment: disjoint shard ownership when there
    // are enough shards, striped contention on the shared locks when
    // there are not (writers is a multiple of shards in every series
    // configuration).
    let mut per_writer: Vec<Vec<&[TupleSet]>> = (0..writers).map(|_| Vec::new()).collect();
    if shards >= writers {
        for (s, stream) in streams.iter().enumerate() {
            per_writer[s % writers].extend(stream.chunks(batch_size));
        }
    } else {
        let per_shard = writers / shards;
        for (s, stream) in streams.iter().enumerate() {
            for (c, chunk) in stream.chunks(batch_size).enumerate() {
                per_writer[s * per_shard + c % per_shard].push(chunk);
            }
        }
    }

    let t = Instant::now();
    std::thread::scope(|scope| {
        for lanes in per_writer {
            let pass = &pass;
            scope.spawn(move || {
                for chunk in lanes {
                    pass.ingest_batch(chunk).expect("concurrent ingest");
                }
            });
        }
    });
    let rate = total_sets as f64 / t.elapsed().as_secs_f64();
    (pass, dir, rate)
}

/// The shared e20 corpus: `total_sets` single-reading traffic tuple
/// sets, deterministic across runs.
fn e20_specs(total_sets: usize) -> Vec<pass_sensor::CaptureSpec> {
    let mut rng = rng_for(20, "e20");
    (0..total_sets)
        .map(|i| {
            let at = Timestamp(i as u64 * 1_000);
            pass_sensor::CaptureSpec {
                attrs: Attributes::new()
                    .with(keys::DOMAIN, "traffic")
                    .with(keys::REGION, format!("zone-{}", i % 8))
                    .with(keys::TYPE, "car_sighting")
                    .with("seq", i as i64),
                readings: vec![Reading::new(SensorId((i % 64) as u64), at)
                    .with("speed_kmh", rng.gen_range(10.0..80.0))],
                at,
            }
        })
        .collect()
}

/// E20 table: ingest throughput and per-batch amortization across
/// group-commit sizes, on both backends (the ISSUE-3 acceptance series).
/// On the memory backend batching amortizes index maintenance only; on
/// the disk backend each group commit is additionally one WAL
/// append + fsync, which is where group commit pays off hardest.
pub fn e20_table() -> String {
    let mut out = String::from(
        "E20  group-commit ingest (single-reading tuple sets)\n\
         backend   sets   batch   sets_per_s   speedup_vs_1   commits   eq_query_ms\n",
    );
    let mem_total = 32_768;
    let mut base_rate = None;
    for batch in [1usize, 16, 256, 4_096] {
        let (pass, rate) = e20_batched_store(mem_total, batch);
        let base = *base_rate.get_or_insert(rate);
        out.push_str(&e20_row("memory", mem_total, batch, rate, rate / base, &pass));
    }
    // Smaller corpus on disk: batch=1 really does fsync per tuple set.
    let disk_total = 4_096;
    let mut base_rate = None;
    for batch in [1usize, 16, 256, 4_096] {
        let (pass, _dir, rate) = e20_batched_store_disk(disk_total, batch);
        let base = *base_rate.get_or_insert(rate);
        out.push_str(&e20_row("disk", disk_total, batch, rate, rate / base, &pass));
    }
    out.push_str(&e20_concurrent_table());
    out
}

/// The ISSUE-6 concurrent-writers × shards series: disk backend, every
/// group commit fsynced, writers pinned to disjoint shards (except the
/// writers-on-one-shard contention control). Speedup is against the
/// 1 writer / 1 shard row — the pre-sharding single-lock store under
/// the identical workload.
pub fn e20_concurrent_table() -> String {
    let mut out = String::from(
        "\nE20c group-commit ingest, concurrent writers x shards \
         (disk, fsync-per-commit)\n\
         writers   shards   sets   batch   sets_per_s   speedup_vs_1w1s\n",
    );
    let total = 8_192;
    // Two commit sizes: batch 16 keeps indexing CPU in the mix; batch 4
    // makes the per-commit fsync dominate, which is the cost per-shard
    // WALs can actually overlap.
    for batch in [16usize, 4] {
        let mut base_rate = None;
        for (writers, shards) in [(1, 1), (4, 1), (2, 2), (4, 4), (8, 8)] {
            let (pass, _dir, rate) = e20_concurrent_store_disk(total, batch, writers, shards);
            assert_eq!(pass.len(), total, "every set committed exactly once");
            let base = *base_rate.get_or_insert(rate);
            out.push_str(&format!(
                "{:>7} {:>8} {:>6} {:>7} {:>12.0} {:>17.2}\n",
                writers,
                shards,
                total,
                batch,
                rate,
                rate / base
            ));
        }
    }
    out
}

fn e20_row(
    backend: &str,
    total: usize,
    batch: usize,
    rate: f64,
    speedup: f64,
    pass: &Pass,
) -> String {
    let stats = pass.stats();
    let t = Instant::now();
    for _ in 0..20 {
        pass.query_text(r#"FIND WHERE region = "zone-3""#).expect("query");
    }
    let query_ms = ms(t.elapsed()) / 20.0;
    format!(
        "{:<8} {:>5} {:>6} {:>12.0} {:>14.2} {:>9} {:>13.3}\n",
        backend, total, batch, rate, speedup, stats.batches, query_ms
    )
}

// ---------------------------------------------------------------------------
// E21 — streaming vs materialized query execution
// ---------------------------------------------------------------------------

/// Peak resident set (VmHWM) in KiB, best effort (Linux only).
fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resets the kernel's peak-RSS watermark to current usage, best effort.
fn reset_vm_hwm() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// One E21 measurement: runs `work` and reports
/// `(first_result_ms, total_ms, results, peak_rss_delta_kib)`.
fn e21_measure(mut work: impl FnMut() -> (std::time::Duration, usize)) -> (f64, f64, usize, f64) {
    reset_vm_hwm();
    let before_hwm = vm_hwm_kib();
    let t = Instant::now();
    let (first, results) = work();
    let total = t.elapsed();
    let rss_delta = match (before_hwm, vm_hwm_kib()) {
        (Some(b), Some(a)) => a.saturating_sub(b) as f64,
        _ => f64::NAN,
    };
    (ms(first), ms(total), results, rss_delta)
}

/// E21 table: time-to-first-result and peak memory for streaming
/// cursors vs materialize-everything execution, at store sizes
/// 10k / 100k / 1M (reported alongside E20's ingest series).
///
/// "materialized" reproduces the old `execute()` API shape for a caller
/// that wants a bounded page: drain the full match set, then cut — what
/// offset pagination or full-result shipping forces. "streaming" is the
/// cursor: open, pull what you need, stop.
pub fn e21_table() -> String {
    use pass_query::QueryEngine;
    let mut out = String::from(
        "E21  streaming vs materialized query execution (eq query, 1/8 selectivity)\n\
         size      mode          shape        first_ms   total_ms   results   scanned   peak_rss_KiB\n",
    );
    for &size in &[10_000usize, 100_000, 1_000_000] {
        let (pass, _) = e20_batched_store(size, 4_096);
        let snapshot = pass.snapshot();
        let bounded =
            pass_query::parse(r#"FIND WHERE region = "zone-3" LIMIT 10"#).expect("well-formed");
        let unbounded = pass_query::parse(r#"FIND WHERE region = "zone-3""#).expect("well-formed");

        // Streaming, bounded: open a cursor, pull ten records.
        let mut scanned = 0usize;
        let (first, total, results, rss) = e21_measure(|| {
            let t = Instant::now();
            let mut cursor = snapshot.open_query(&bounded).expect("open");
            let first_record = cursor.next();
            let first = t.elapsed();
            let rest = cursor.by_ref().count();
            scanned = cursor.stats().candidates_scanned;
            (first, first_record.map_or(0, |_| 1) + rest)
        });
        out.push_str(&e21_row(size, "streaming", "LIMIT 10", first, total, results, scanned, rss));

        // Materialized, bounded: drain everything, then cut to ten.
        let mut scanned = 0usize;
        let (first, total, results, rss) = e21_measure(|| {
            let t = Instant::now();
            let result = pass_query::execute(&unbounded, &snapshot).expect("query");
            let first = t.elapsed(); // no record exists before the drain completes
            scanned = result.stats.candidates_scanned;
            let mut full = result.records;
            full.truncate(10);
            (first, full.len())
        });
        out.push_str(&e21_row(
            size,
            "materialized",
            "LIMIT 10",
            first,
            total,
            results,
            scanned,
            rss,
        ));

        // ORDER BY pushdown: the whole-store "latest 10" query streams
        // from the cached created-order scan (the first open after a
        // commit pays one O(n log n) sort, shown here; reruns share it)
        // vs fetching and sorting every record.
        let ordered =
            pass_query::parse("FIND ORDER BY created DESC LIMIT 10").expect("well-formed");
        let ordered_full = pass_query::parse("FIND ORDER BY created DESC").expect("well-formed");
        let mut scanned = 0usize;
        let (first, total, results, rss) = e21_measure(|| {
            let t = Instant::now();
            let mut cursor = snapshot.open_query(&ordered).expect("open");
            let first_record = cursor.next();
            let first = t.elapsed();
            let rest = cursor.by_ref().count();
            scanned = cursor.stats().candidates_scanned;
            (first, first_record.map_or(0, |_| 1) + rest)
        });
        out.push_str(&e21_row(
            size,
            "streaming",
            "ORDER LIM 10",
            first,
            total,
            results,
            scanned,
            rss,
        ));
        let mut scanned = 0usize;
        let (first, total, results, rss) = e21_measure(|| {
            let t = Instant::now();
            let result = pass_query::execute(&ordered_full, &snapshot).expect("query");
            let first = t.elapsed();
            scanned = result.stats.candidates_scanned;
            let mut records = result.records;
            records.truncate(10);
            (first, records.len())
        });
        out.push_str(&e21_row(
            size,
            "materialized",
            "ORDER LIM 10",
            first,
            total,
            results,
            scanned,
            rss,
        ));

        // Full drains converge: both must touch the whole match set.
        let mut scanned = 0usize;
        let (first, total, results, rss) = e21_measure(|| {
            let t = Instant::now();
            let mut cursor = snapshot.open_query(&unbounded).expect("open");
            let first_record = cursor.next();
            let first = t.elapsed();
            let rest = cursor.by_ref().count();
            scanned = cursor.stats().candidates_scanned;
            (first, first_record.map_or(0, |_| 1) + rest)
        });
        out.push_str(&e21_row(
            size,
            "streaming",
            "full drain",
            first,
            total,
            results,
            scanned,
            rss,
        ));
        let mut scanned = 0usize;
        let (first, total, results, rss) = e21_measure(|| {
            let t = Instant::now();
            let result = pass_query::execute(&unbounded, &snapshot).expect("query");
            scanned = result.stats.candidates_scanned;
            (t.elapsed(), result.records.len())
        });
        out.push_str(&e21_row(
            size,
            "materialized",
            "full drain",
            first,
            total,
            results,
            scanned,
            rss,
        ));
    }
    out.push('\n');
    out.push_str(&crate::exp_dist::e21_traffic_table());
    out
}

#[allow(clippy::too_many_arguments)]
fn e21_row(
    size: usize,
    mode: &str,
    shape: &str,
    first_ms: f64,
    total_ms: f64,
    results: usize,
    scanned: usize,
    rss_kib: f64,
) -> String {
    format!(
        "{:<9} {:<13} {:<12} {:>8.3} {:>10.3} {:>9} {:>9} {:>14.0}\n",
        size, mode, shape, first_ms, total_ms, results, scanned, rss_kib
    )
}

// ---------------------------------------------------------------------------
// E2 — naming: flat filenames vs structured provenance
// ---------------------------------------------------------------------------

/// A corpus with deliberately collision-prone region names.
pub fn e02_corpus(n_per_region: usize) -> Vec<ProvenanceRecord> {
    let regions = ["new_york", "new-york", "st_louis", "st-louis", "boston"];
    let mut out = Vec::new();
    for (ri, region) in regions.iter().enumerate() {
        for i in 0..n_per_region {
            let record =
                ProvenanceBuilder::new(SiteId(1), Timestamp((ri * n_per_region + i) as u64))
                    .attr(keys::DOMAIN, "traffic")
                    .attr(keys::REGION, *region)
                    .attr(keys::TYPE, "car_sighting")
                    .attr(keys::SENSOR_TYPE, "camera")
                    .attr(keys::TIME_START, Value::Time(Timestamp(i as u64 * 1_000)))
                    .attr(keys::TIME_END, Value::Time(Timestamp(i as u64 * 1_000 + 999)))
                    .attr("calibration.run", i as i64) // inexpressible in a flat name
                    .build(Digest128::of(format!("{region}/{i}").as_bytes()));
            out.push(record);
        }
    }
    out
}

/// E2 table: per-query latency and result quality for both schemes.
pub fn e02_table() -> String {
    let corpus = e02_corpus(400);
    let names: Vec<String> = corpus.iter().map(flatname::build).collect();
    // Structured side: the same records, indexed by their provenance.
    let pass = Pass::open_memory(SiteId(1));
    for record in &corpus {
        let rebuilt = ProvenanceBuilder::new(record.origin, record.created_at)
            .attrs(&record.attributes)
            .build(TupleSet::content_digest_of(&[]));
        pass.ingest(&TupleSet::new(rebuilt, vec![]).expect("digest matches")).expect("ingest");
    }

    let mut out = String::from(
        "E2  naming: flat filenames vs structured provenance (2000 records)\n\
         query                     scheme       latency_ms   precision   recall\n",
    );
    let target = Value::Str("new_york".to_owned());
    // Ground truth: records whose true region equals new_york.
    let truth: Vec<usize> = corpus
        .iter()
        .enumerate()
        .filter(|(_, r)| r.attributes.get_str(keys::REGION) == Some("new_york"))
        .map(|(i, _)| i)
        .collect();

    // Flat scheme: parse every name.
    let t0 = Instant::now();
    let mut flat_hits = Vec::new();
    for _ in 0..10 {
        flat_hits = names
            .iter()
            .enumerate()
            .filter(|(_, name)| flatname::name_matches(name, keys::REGION, &target))
            .map(|(i, _)| i)
            .collect();
    }
    let flat_latency = t0.elapsed() / 10;
    let flat_tp = flat_hits.iter().filter(|i| truth.contains(i)).count();
    let flat_precision =
        if flat_hits.is_empty() { 1.0 } else { flat_tp as f64 / flat_hits.len() as f64 };
    let flat_recall = if truth.is_empty() { 1.0 } else { flat_tp as f64 / truth.len() as f64 };

    // Structured scheme: attribute index.
    let t1 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..10 {
        hits = pass.query_text(r#"FIND WHERE region = "new_york""#).expect("query").records.len();
    }
    let ix_latency = t1.elapsed() / 10;

    out.push_str(&format!(
        "{:<25} {:<12} {:>10.3} {:>11.3} {:>8.3}\n",
        "region = new_york",
        "flat-name",
        ms(flat_latency),
        flat_precision,
        flat_recall
    ));
    out.push_str(&format!(
        "{:<25} {:<12} {:>10.3} {:>11.3} {:>8.3}\n",
        "region = new_york",
        "provenance",
        ms(ix_latency),
        1.0,
        hits as f64 / truth.len().max(1) as f64
    ));
    // The attribute a flat name cannot express at all.
    let calib = pass.query_text("FIND WHERE calibration.run = 7").expect("query");
    out.push_str(&format!(
        "{:<25} {:<12} {:>10} {:>11} {:>8}\n",
        "calibration.run = 7", "flat-name", "n/a", "0.000", "0.000"
    ));
    out.push_str(&format!(
        "{:<25} {:<12} {:>10.3} {:>11.3} {:>8.3}\n",
        "calibration.run = 7",
        "provenance",
        0.01,
        1.0,
        if calib.records.len() == 5 { 1.0 } else { 0.0 }
    ));
    out
}

// ---------------------------------------------------------------------------
// E3 — transitive-closure strategies
// ---------------------------------------------------------------------------

/// Builds a braided lineage DAG of `depth` levels × `width` nodes with
/// fanin 2, returning the graph and one leaf node.
pub fn e03_graph(depth: usize, width: usize) -> (AncestryGraph, u32) {
    let mut graph = AncestryGraph::new();
    let roots: Vec<TupleSetId> = (0..width as u128).map(|i| TupleSetId(i + 1)).collect();
    for r in &roots {
        graph.insert(*r, &[]);
    }
    let mut counter = 1_000u128;
    pass_sensor::build_lineage::<std::convert::Infallible>(
        &roots,
        pass_sensor::LineageShape { depth, width, fanin: 2 },
        Timestamp::ZERO,
        |parents, _tool, _attrs, _readings, _at| {
            counter += 1;
            let id = TupleSetId(counter);
            let edges: Vec<(TupleSetId, bool)> = parents.iter().map(|p| (*p, false)).collect();
            graph.insert(id, &edges);
            Ok(id)
        },
    )
    .expect("infallible");
    let leaf = graph.lookup(TupleSetId(counter)).expect("leaf exists");
    (graph, leaf)
}

/// E3 table: strategy × depth latency (µs) plus structure sizes.
pub fn e03_table() -> String {
    let mut out = String::from(
        "E3  transitive closure: ancestors-of latency (µs), width=16 fanin=2\n\
         depth   naive_join        bfs       memo   interval   memo_KiB   intv_KiB\n",
    );
    for depth in [4usize, 8, 16, 32] {
        let (graph, leaf) = e03_graph(depth, 16);
        let opts = TraverseOpts::unbounded();
        let time_strategy = |s: &dyn ReachStrategy| -> f64 {
            let t = Instant::now();
            let iters = 50;
            for _ in 0..iters {
                std::hint::black_box(s.reachable(&graph, leaf, Direction::Ancestors, &opts));
            }
            t.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
        };
        let naive = time_strategy(&NaiveJoinClosure);
        let bfs = time_strategy(&BfsClosure);
        let memo = MemoClosure::build(&graph, false).expect("acyclic");
        let memo_t = time_strategy(&memo);
        let interval = IntervalClosure::build(&graph, false).expect("acyclic");
        let interval_t = time_strategy(&interval);
        out.push_str(&format!(
            "{:>5} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
            depth,
            naive,
            bfs,
            memo_t,
            interval_t,
            memo.size_bytes() as f64 / 1024.0,
            interval.size_bytes() as f64 / 1024.0
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// E4 — the §III query mix
// ---------------------------------------------------------------------------

/// Builds a mixed-domain store and its query vocabulary.
pub fn e04_store() -> (Pass, workload::Vocabulary) {
    let pass = Pass::open_memory(SiteId(1));
    let mut ids = Vec::new();
    for spec in traffic::generate(
        &traffic::TrafficConfig { sensors: 6, seed: 41, ..Default::default() },
        Timestamp::ZERO,
        10,
    )
    .into_iter()
    .chain(weather::generate(
        &weather::WeatherConfig { stations: 3, seed: 42, ..Default::default() },
        Timestamp::ZERO,
        8,
    ))
    .chain(medical::generate(
        &medical::MedicalConfig { patients: 8, seed: 43, ..Default::default() },
        Timestamp::ZERO,
        5,
    ))
    .chain(volcano::generate(
        &volcano::VolcanoConfig { stations: 4, seed: 44, ..Default::default() },
        Timestamp::ZERO,
        12,
    )) {
        ids.push(pass.capture(spec.attrs, spec.readings, spec.at).expect("capture"));
    }
    // Two pipeline stages so science queries have lineage to chase.
    let tool = ToolDescriptor::new("rollup", "1.0");
    let mid: Vec<TupleSetId> = ids
        .chunks(16)
        .map(|chunk| {
            pass.derive(
                chunk,
                &tool,
                Attributes::new().with(keys::DOMAIN, "analysis").with(keys::TYPE, "rollup"),
                vec![],
                Timestamp::from_secs(10_000),
            )
            .expect("derive")
        })
        .collect();
    let top = pass
        .derive(
            &mid,
            &ToolDescriptor::new("report", "2.0"),
            Attributes::new().with(keys::DOMAIN, "analysis").with(keys::TYPE, "report"),
            vec![],
            Timestamp::from_secs(20_000),
        )
        .expect("derive");
    ids.push(top);

    let vocab = workload::Vocabulary {
        ids,
        regions: vec!["london".into(), "vesuvius".into(), "bridge-12".into()],
        patients: (0..8).map(|p| format!("patient-{p:03}")).collect(),
        operators: (0..3).map(|e| format!("emt-{e}")).collect(),
        tools: vec!["rollup".into(), "report".into()],
        time_span: (Timestamp::ZERO, Timestamp::from_secs(20_000)),
    };
    (pass, vocab)
}

/// E4 table: per-class mean latency over the §III mixes.
pub fn e04_table() -> String {
    let (pass, vocab) = e04_store();
    let mut rng = rng_for(4, "e04");
    let specs = workload::mixed(&vocab, &mut rng, 30);
    let mut per_class: std::collections::BTreeMap<&str, (f64, usize, usize)> =
        std::collections::BTreeMap::new();
    for spec in &specs {
        let t = Instant::now();
        let result = pass.query_text(&spec.text).expect("workload query parses");
        let elapsed = ms(t.elapsed());
        let entry = per_class.entry(spec.class.label()).or_insert((0.0, 0, 0));
        entry.0 += elapsed;
        entry.1 += 1;
        entry.2 += result.records.len();
    }
    let mut out = String::from(
        "E4  §III query mix on a populated local PASS (1000+ tuple sets)\n\
         class         queries   mean_latency_ms   mean_results\n",
    );
    for (class, (total, n, results)) in per_class {
        out.push_str(&format!(
            "{:<13} {:>7} {:>17.3} {:>14.1}\n",
            class,
            n,
            total / n as f64,
            results as f64 / n as f64
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// E12 — PASS property micro-benchmarks
// ---------------------------------------------------------------------------

/// E12 table: property-enforcement costs.
pub fn e12_table() -> String {
    let mut out = String::from("E12  PASS property enforcement costs\n");
    // Identity hashing throughput.
    let record = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
        .attr(keys::DOMAIN, "traffic")
        .attr(keys::REGION, "london")
        .attr(keys::TYPE, "car_sighting")
        .build(Digest128::of(b"payload"));
    let t = Instant::now();
    let n = 100_000;
    for _ in 0..n {
        std::hint::black_box(record.verify_identity());
    }
    let per = t.elapsed().as_secs_f64() * 1e9 / f64::from(n);
    out.push_str(&format!("identity verification: {per:>10.0} ns/record\n"));

    // Ingest throughput with all invariants on.
    let pass = Pass::open_memory(SiteId(1));
    let t = Instant::now();
    let count = 5_000;
    for i in 0..count {
        let readings = vec![Reading::new(SensorId(1), Timestamp(i)).with("v", i as i64)];
        let attrs = Attributes::new().with(keys::DOMAIN, "bench").with("i", i as i64);
        pass.capture(attrs, readings, Timestamp(i)).expect("capture");
    }
    let rate = count as f64 / t.elapsed().as_secs_f64();
    out.push_str(&format!("verified ingest:       {rate:>10.0} tuple sets/s\n"));

    // Ancestor-removal survival (property 4) at scale.
    let ids = pass.ids();
    let child = pass
        .derive(
            &ids[..100.min(ids.len())],
            &ToolDescriptor::new("t", "1"),
            Attributes::new().with(keys::DOMAIN, "bench"),
            vec![],
            Timestamp(999_999),
        )
        .expect("derive");
    let t = Instant::now();
    for id in &ids[..100.min(ids.len())] {
        pass.remove_data(*id).expect("remove");
    }
    let removal = ms(t.elapsed());
    let lineage =
        pass.lineage(child, Direction::Ancestors, TraverseOpts::unbounded()).expect("lineage");
    out.push_str(&format!(
        "100 data removals:     {removal:>10.2} ms (lineage still names {} ancestors)\n",
        lineage.len()
    ));
    out
}

// ---------------------------------------------------------------------------
// E16 — provenance abstraction
// ---------------------------------------------------------------------------

/// Builds a store where each of `analyses` outputs depends on raw data
/// plus a toolchain of provenance depth `chain_len`, linked through an
/// abstracted edge.
pub fn e16_store(analyses: usize, chain_len: usize) -> (Pass, Vec<TupleSetId>) {
    let pass = Pass::open_memory(SiteId(1));
    // One shared toolchain lineage: source → … → binary.
    let mut prev = pass
        .capture(
            Attributes::new().with(keys::DOMAIN, "toolchain").with(keys::TYPE, "source"),
            vec![Reading::new(SensorId(0), Timestamp(0)).with("rev", 0i64)],
            Timestamp(0),
        )
        .expect("capture");
    for i in 1..chain_len {
        prev = pass
            .derive(
                &[prev],
                &ToolDescriptor::new("build-step", format!("{i}")),
                Attributes::new().with(keys::DOMAIN, "toolchain").with(keys::TYPE, "stage"),
                vec![Reading::new(SensorId(0), Timestamp(i as u64)).with("rev", i as i64)],
                Timestamp(i as u64),
            )
            .expect("derive");
    }
    let toolchain_binary = prev;

    let mut outputs = Vec::new();
    for a in 0..analyses {
        let raw = pass
            .capture(
                Attributes::new()
                    .with(keys::DOMAIN, "traffic")
                    .with(keys::TYPE, "capture")
                    .with("run", a as i64),
                vec![Reading::new(SensorId(1), Timestamp(a as u64)).with("v", a as i64)],
                Timestamp(1_000 + a as u64),
            )
            .expect("capture");
        let readings = vec![Reading::new(SensorId(2), Timestamp(a as u64)).with("out", a as i64)];
        let attrs = Attributes::new().with(keys::DOMAIN, "analysis").with("run", a as i64);
        let mut builder =
            ProvenanceBuilder::new(SiteId(1), Timestamp(2_000 + a as u64)).attrs(&attrs);
        builder = builder.derived_from(raw, ToolDescriptor::new("analyze", "3.1"));
        builder =
            builder.derived_from(toolchain_binary, ToolDescriptor::abstracted("gcc", "3.3.3"));
        let record = builder.build(TupleSet::content_digest_of(&readings));
        let id =
            pass.ingest(&TupleSet::new(record, readings).expect("digest matches")).expect("ingest");
        outputs.push(id);
    }
    (pass, outputs)
}

/// E16 table: lineage size and latency with/without abstraction.
pub fn e16_table() -> String {
    let mut out = String::from(
        "E16  provenance abstraction (\"gcc 3.3.3\" vs full toolchain history)\n\
         chain_len   full_nodes   full_µs   abstracted_nodes   abstracted_µs\n",
    );
    for chain_len in [8usize, 32, 128] {
        let (pass, outputs) = e16_store(4, chain_len);
        let root = outputs[0];
        let time_it = |opts: TraverseOpts| -> (usize, f64) {
            let t = Instant::now();
            let iters = 50;
            let mut len = 0;
            for _ in 0..iters {
                len = pass.lineage(root, Direction::Ancestors, opts).expect("lineage").len();
            }
            (len, t.elapsed().as_secs_f64() * 1e6 / f64::from(iters))
        };
        let (full_nodes, full_us) = time_it(TraverseOpts::unbounded());
        let (abs_nodes, abs_us) =
            time_it(TraverseOpts { stop_at_abstraction: true, ..TraverseOpts::default() });
        out.push_str(&format!(
            "{:>9} {:>12} {:>9.1} {:>18} {:>15.1}\n",
            chain_len, full_nodes, full_us, abs_nodes, abs_us
        ));
    }
    out
}
