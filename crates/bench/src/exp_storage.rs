//! E23 — sustained-ingest read latency: does background maintenance
//! keep point reads fast forever?
//!
//! The experiment ingests a stream of records into a raw [`LsmEngine`]
//! under two regimes and samples point-read latency at checkpoints:
//!
//! * **baseline** — no compaction at all (the inline fallback is
//!   disabled): the live table count grows linearly with ingest and
//!   every read pays one bloom probe per table, so read tails degrade
//!   as the run proceeds;
//! * **maintenance** — the background worker from
//!   [`pass_storage::maintenance`] runs tiered compaction behind the
//!   flushes, keeping the table count bounded and read tails flat.
//!
//! The run also reports space amplification (live table bytes over
//! logical data bytes) and the block-cache hit rate. Results feed
//! `BENCH_e23.json` (see `benches/e23_sustained_ingest.rs`) and the CI
//! smoke job, which asserts the maintenance run's end-of-ingest p99 is
//! within 2× of its p99 at 10% of ingest.

use pass_storage::maintenance::{spawn_engine_worker, MaintenanceOptions};
use pass_storage::tempdir::TempDir;
use pass_storage::{EngineOptions, KvStore, LsmEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency sample taken after a fixed fraction of the ingest.
#[derive(Debug, Clone)]
pub struct E23Checkpoint {
    /// Records ingested when the sample was taken.
    pub records: usize,
    /// Live SSTables at sample time.
    pub tables: usize,
    /// Median point-read latency, microseconds.
    pub read_p50_us: f64,
    /// 99th-percentile point-read latency, microseconds.
    pub read_p99_us: f64,
}

/// One full E23 regime (baseline or maintenance).
#[derive(Debug, Clone)]
pub struct E23Run {
    /// Regime label: `"baseline"` or `"maintenance"`.
    pub label: &'static str,
    /// Total records ingested.
    pub records: usize,
    /// Per-checkpoint latency samples, in ingest order.
    pub checkpoints: Vec<E23Checkpoint>,
    /// Live SSTables at end of ingest (before the final drain).
    pub tables_end_of_ingest: usize,
    /// Live SSTables after the compaction backlog drained.
    pub tables_after_drain: usize,
    /// Bytes held by live tables after the drain.
    pub live_table_bytes: u64,
    /// Logical bytes written (sum of key + value lengths, last write
    /// per key).
    pub logical_bytes: u64,
    /// live_table_bytes / logical_bytes.
    pub space_amp: f64,
    /// Block-cache hit rate over the whole run, `0.0..=1.0`.
    pub cache_hit_rate: f64,
    /// Wall-clock ingest time, seconds.
    pub elapsed_s: f64,
}

fn key_of(i: usize) -> Vec<u8> {
    format!("rec-{i:010}").into_bytes()
}

fn value_of(i: usize) -> Vec<u8> {
    // ~56 bytes of deterministic, compressible-but-not-constant payload.
    format!("{i:016x}:{:>038}", i.wrapping_mul(0x9e37_79b9)).into_bytes()
}

/// Samples `count` point reads of uniformly random already-written keys
/// and returns (p50, p99) in microseconds.
fn sample_reads(db: &LsmEngine, written: usize, count: usize, rng: &mut StdRng) -> (f64, f64) {
    let mut lat_us = Vec::with_capacity(count);
    for _ in 0..count {
        let i = rng.gen_range(0..written);
        let key = key_of(i);
        let t = Instant::now();
        let got = db.get(&key).expect("bench read");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(got.is_some(), "written key must be readable");
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize];
    (pick(0.50), pick(0.99))
}

/// Runs one E23 regime: `maintenance = false` is the degrading
/// baseline, `true` attaches the background worker.
pub fn e23_run(records: usize, maintenance: bool) -> E23Run {
    let checkpoints = 10usize;
    let reads_per_checkpoint = 400usize;
    let dir = TempDir::new(if maintenance { "e23-maint" } else { "e23-base" });

    let opts = EngineOptions {
        // Small memtable: 1M records seal a few hundred tables, so the
        // baseline's per-read table probing visibly degrades.
        memtable_bytes: 256 << 10,
        // Disable the inline fallback: the baseline must not compact at
        // all, and the maintenance run compacts through the worker.
        compact_at: usize::MAX,
        sync: pass_storage::SyncPolicy::Lazy,
        ..EngineOptions::default()
    }
    .with_cache_bytes(32 << 20);

    let db = Arc::new(LsmEngine::open(dir.path().to_path_buf(), opts).expect("open e23 engine"));
    let worker = maintenance.then(|| {
        spawn_engine_worker(
            Arc::clone(&db),
            MaintenanceOptions { tick: Duration::from_millis(5), pin_floor: None },
        )
    });

    let mut rng = StdRng::seed_from_u64(23);
    let mut out = Vec::with_capacity(checkpoints);
    let mut logical_bytes = 0u64;
    let step = records / checkpoints;
    let t0 = Instant::now();
    for c in 0..checkpoints {
        let start = c * step;
        let end = if c + 1 == checkpoints { records } else { start + step };
        for i in start..end {
            let (key, value) = (key_of(i), value_of(i));
            logical_bytes += (key.len() + value.len()) as u64;
            db.put(&key, &value).expect("bench put");
        }
        let (p50, p99) = sample_reads(&db, end, reads_per_checkpoint, &mut rng);
        out.push(E23Checkpoint {
            records: end,
            tables: db.stats().num_tables,
            read_p50_us: p50,
            read_p99_us: p99,
        });
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let tables_end_of_ingest = db.stats().num_tables;

    // Drain the backlog: stop the worker, then run the picker dry so
    // the "after" numbers describe a quiesced store.
    drop(worker);
    if maintenance {
        while db.maybe_compact(None).expect("drain compaction") {}
    }
    let stats = db.stats();
    let looked = stats.cache_hits + stats.cache_misses;
    E23Run {
        label: if maintenance { "maintenance" } else { "baseline" },
        records,
        checkpoints: out,
        tables_end_of_ingest,
        tables_after_drain: stats.num_tables,
        live_table_bytes: stats.live_table_bytes,
        logical_bytes,
        space_amp: stats.live_table_bytes as f64 / logical_bytes.max(1) as f64,
        cache_hit_rate: if looked == 0 { 0.0 } else { stats.cache_hits as f64 / looked as f64 },
        elapsed_s,
    }
}

impl E23Run {
    /// Human-readable summary table (one row per checkpoint).
    pub fn table(&self) -> String {
        let mut s = format!(
            "E23 {} — {} records, {:.1}s ingest, {} tables at end ({} after drain), \
             space amp {:.2}x, cache hit rate {:.1}%\n",
            self.label,
            self.records,
            self.elapsed_s,
            self.tables_end_of_ingest,
            self.tables_after_drain,
            self.space_amp,
            self.cache_hit_rate * 100.0,
        );
        s.push_str("records     tables   p50_us   p99_us\n");
        for c in &self.checkpoints {
            s.push_str(&format!(
                "{:<11} {:<8} {:<8.1} {:<8.1}\n",
                c.records, c.tables, c.read_p50_us, c.read_p99_us
            ));
        }
        s
    }
}

/// Renders the runs as the machine-readable `BENCH_e23.json` document.
/// Hand-rolled (the workspace carries no JSON dependency); all numbers
/// are finite by construction.
pub fn e23_json(runs: &[E23Run]) -> String {
    fn num(v: f64) -> String {
        format!("{v:.3}")
    }
    let mut s = String::from("{\n  \"experiment\": \"e23_sustained_ingest\",\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"label\": \"{}\",\n", run.label));
        s.push_str(&format!("      \"records\": {},\n", run.records));
        s.push_str(&format!("      \"tables_end_of_ingest\": {},\n", run.tables_end_of_ingest));
        s.push_str(&format!("      \"tables_after_drain\": {},\n", run.tables_after_drain));
        s.push_str(&format!("      \"live_table_bytes\": {},\n", run.live_table_bytes));
        s.push_str(&format!("      \"logical_bytes\": {},\n", run.logical_bytes));
        s.push_str(&format!("      \"space_amp\": {},\n", num(run.space_amp)));
        s.push_str(&format!("      \"cache_hit_rate\": {},\n", num(run.cache_hit_rate)));
        s.push_str(&format!("      \"ingest_elapsed_s\": {},\n", num(run.elapsed_s)));
        s.push_str("      \"checkpoints\": [\n");
        for (j, c) in run.checkpoints.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"records\": {}, \"tables\": {}, \"read_p50_us\": {}, \
                 \"read_p99_us\": {}}}{}\n",
                c.records,
                c.tables,
                num(c.read_p50_us),
                num(c.read_p99_us),
                if j + 1 == run.checkpoints.len() { "" } else { "," },
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!("    }}{}\n", if i + 1 == runs.len() { "" } else { "," }));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_small_run_produces_consistent_report() {
        let run = e23_run(3_000, true);
        assert_eq!(run.records, 3_000);
        assert_eq!(run.checkpoints.len(), 10);
        assert!(run.checkpoints.iter().all(|c| c.read_p99_us >= c.read_p50_us));
        assert!(run.tables_after_drain <= run.tables_end_of_ingest.max(1));
        let json = e23_json(&[run]);
        assert!(json.contains("\"label\": \"maintenance\""));
        assert!(json.contains("\"read_p99_us\""));
    }
}
