//! Distributed-architecture experiments: E5 (comparison), E6 (update
//! scaling), E7 (resource consumption), E8 (locality), E13 (hierarchy
//! significance ordering), E14 (distributed closure).

use pass_distrib::runner::{build_arch, build_corpus, run_workload, ArchKind, WorkloadSpec};
use pass_distrib::{Architecture, DistributedDb, Hierarchical};
use pass_net::{SimTime, Topology, TrafficClass};
use pass_query::parse;
use std::collections::HashMap;

/// E5 table: query latency vs site count per architecture.
pub fn e05_table() -> String {
    let mut out = String::from(
        "E5  architecture comparison: query/lineage p50 (ms) vs sites\n\
         architecture      sites   publish_p50   query_p50   lineage_p50   recall\n",
    );
    for sites in [4usize, 8, 16] {
        let spec = WorkloadSpec {
            clusters: sites / 2,
            per_cluster: 2,
            windows_per_site: 2,
            queries: 12,
            lineage_ops: 4,
            ..WorkloadSpec::default()
        };
        let corpus = build_corpus(&spec);
        for kind in ArchKind::all_default() {
            let mut arch = build_arch(kind, spec.topology(), spec.seed);
            let report = run_workload(arch.as_mut(), &corpus, &spec);
            out.push_str(&format!(
                "{:<17} {:>5} {:>11.2} {:>11.2} {:>13.2} {:>8.3}\n",
                report.name,
                report.sites,
                report.publish.p50_ms(),
                report.query.p50_ms(),
                report.lineage.p50_ms(),
                report.quality.recall
            ));
        }
    }
    out
}

/// Measures sustainable publish throughput: inject a burst of records
/// from every site at once and divide by the makespan.
pub fn e06_throughput(kind: ArchKind, sites: usize, records_per_site: usize) -> f64 {
    e06_throughput_batched(kind, sites, records_per_site, 1)
}

/// Like [`e06_throughput`], but publishes consecutive same-site records
/// through [`pass_distrib::Architecture::publish_batch`] in groups of
/// `publish_batch` — the cross-site analogue of the local group commit.
/// Throughput counts *records*, not ops, so a one-op N-record batch is
/// credited N times.
pub fn e06_throughput_batched(
    kind: ArchKind,
    sites: usize,
    records_per_site: usize,
    publish_batch: usize,
) -> f64 {
    let topology = Topology::clustered(sites.max(2) / 2, 2, 2.0, 40.0);
    let spec = WorkloadSpec {
        clusters: sites.max(2) / 2,
        per_cluster: 2,
        // Two captures per window (2 sensors/stations per site).
        windows_per_site: (records_per_site / 2).max(1),
        lineage_depth: 0,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    let mut arch = build_arch(kind, topology, 7);
    let start = arch.now();
    let group = publish_batch.max(1);
    // Records each op id stands for: 1 on the per-record path, the whole
    // group when the architecture collapses it into a single op.
    let mut records_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut i = 0usize;
    while i < corpus.records.len() {
        let site = corpus.records[i].0;
        let mut j = i;
        while j < corpus.records.len() && corpus.records[j].0 == site && j - i < group {
            j += 1;
        }
        let chunk: Vec<_> = corpus.records[i..j].iter().map(|(_, r)| r.clone()).collect();
        let ops = arch.publish_batch(site, &chunk); // no pacing: load ≫ capacity
        let per_op = chunk.len() / ops.len().max(1);
        for op in ops {
            records_of.insert(op, per_op);
        }
        i = j;
    }
    arch.run_quiet();
    let outcomes = arch.outcomes();
    let done: usize = outcomes.iter().filter(|o| o.ok).filter_map(|o| records_of.get(&o.op)).sum();
    let makespan = outcomes.iter().map(|o| o.at.micros_since(start)).max().unwrap_or(1).max(1);
    done as f64 / (makespan as f64 / 1e6)
}

/// E6 table: throughput vs number of updating sites.
pub fn e06_table() -> String {
    let mut out = String::from(
        "E6  index-update scalability: sustained publishes/sec vs updater sites\n\
         sites   centralized   central-b16   distributed-db      dht\n",
    );
    for sites in [2usize, 4, 8, 16] {
        let central = e06_throughput(ArchKind::Centralized, sites, 128);
        let central_b = e06_throughput_batched(ArchKind::Centralized, sites, 128, 16);
        let distdb = e06_throughput(ArchKind::DistributedDb { batch: true }, sites, 128);
        let dht = e06_throughput(ArchKind::Dht { replicas: 1 }, sites, 128);
        out.push_str(&format!(
            "{:>5} {:>13.0} {:>13.0} {:>16.0} {:>8.0}\n",
            sites, central, central_b, distdb, dht
        ));
    }
    out
}

/// E7 table: traffic split per architecture on the standard workload.
pub fn e07_table() -> String {
    let spec = WorkloadSpec::default();
    let corpus = build_corpus(&spec);
    let mut out = String::from(
        "E7  network resource consumption (KiB on the wire, standard workload)\n\
         architecture       update_KiB   query_KiB   maint_KiB   update_msgs   query_msgs\n",
    );
    for kind in ArchKind::all_default() {
        let mut arch = build_arch(kind, spec.topology(), spec.seed);
        let report = run_workload(arch.as_mut(), &corpus, &spec);
        out.push_str(&format!(
            "{:<18} {:>10.1} {:>11.1} {:>11.1} {:>13} {:>12}\n",
            report.name,
            report.update_traffic.bytes as f64 / 1024.0,
            report.query_traffic.bytes as f64 / 1024.0,
            report.maintenance_traffic.bytes as f64 / 1024.0,
            report.update_traffic.messages,
            report.query_traffic.messages
        ));
    }
    out
}

/// E8: clients query *their own region's* data; returns per-architecture
/// median latency (µs).
pub fn e08_local_query_latency(kind: ArchKind) -> u64 {
    let spec = WorkloadSpec {
        clusters: 4,
        per_cluster: 2,
        windows_per_site: 2,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    let mut arch = build_arch(kind, spec.topology(), spec.seed);
    for (site, record) in &corpus.records {
        arch.publish(*site, record);
        arch.run_for(SimTime::from_millis(5));
    }
    arch.run_quiet();
    arch.outcomes();

    let mut latencies = Vec::new();
    for cluster in 0..spec.clusters {
        let region = &corpus.regions[cluster];
        let client = cluster * spec.per_cluster; // a site in this metro
        let query = parse(&format!(r#"FIND WHERE region = "{region}""#)).expect("well-formed");
        for _ in 0..3 {
            let issued = arch.now();
            let op = arch.query(client, &query);
            arch.run_quiet();
            for o in arch.outcomes() {
                if o.op == op && o.ok {
                    latencies.push(o.at.micros_since(issued));
                }
            }
        }
    }
    latencies.sort_unstable();
    latencies.get(latencies.len() / 2).copied().unwrap_or(0)
}

/// E8 table: locale-specific query latency per placement policy.
pub fn e08_table() -> String {
    let mut out = String::from(
        "E8  locality: median latency (ms) for clients querying their own metro\n\
         architecture       local_query_p50_ms   placement\n",
    );
    for (kind, placement) in [
        (ArchKind::Federated, "data at origin"),
        (ArchKind::SoftState { refresh: SimTime::from_millis(200) }, "origin + local catalog"),
        (ArchKind::Hierarchical, "namespace owner"),
        (ArchKind::Centralized, "central warehouse"),
        (ArchKind::Dht { replicas: 1 }, "hash (placement-blind)"),
    ] {
        let p50 = e08_local_query_latency(kind);
        let name = match kind {
            ArchKind::Federated => "federated",
            ArchKind::SoftState { .. } => "soft-state",
            ArchKind::Hierarchical => "hierarchical",
            ArchKind::Centralized => "centralized",
            ArchKind::Dht { .. } => "dht",
            ArchKind::DistributedDb { .. } => "distributed-db",
        };
        out.push_str(&format!("{:<18} {:>18.2} {:>24}\n", name, p50 as f64 / 1_000.0, placement));
    }
    out
}

/// E13 measurement: sites touched and latency for prefix vs non-prefix
/// queries on the hierarchical namespace.
pub fn e13_measure(sites: usize) -> (u64, u64, u64, u64) {
    let topology = Topology::clustered(sites / 2, 2, 2.0, 40.0);
    let spec = WorkloadSpec {
        clusters: sites / 2,
        per_cluster: 2,
        windows_per_site: 2,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    let mut arch = Hierarchical::new(topology, spec.seed);
    for (site, record) in &corpus.records {
        arch.publish(*site, record);
    }
    arch.run_quiet();
    arch.outcomes();

    let measure = |arch: &mut Hierarchical, text: &str| -> (u64, u64) {
        arch.reset_net();
        let issued = arch.now();
        let query = parse(text).expect("well-formed");
        let op = arch.query(0, &query);
        arch.run_quiet();
        let latency = arch
            .outcomes()
            .into_iter()
            .find(|o| o.op == op)
            .map(|o| o.at.micros_since(issued))
            .unwrap_or(0);
        (arch.net().class(TrafficClass::Query).messages, latency)
    };
    let (prefix_msgs, prefix_lat) = measure(
        &mut arch,
        &format!(r#"FIND WHERE domain = "traffic" AND region = "{}""#, corpus.regions[0]),
    );
    let (bcast_msgs, bcast_lat) = measure(&mut arch, r#"FIND WHERE sensor.type = "camera""#);
    (prefix_msgs, prefix_lat, bcast_msgs, bcast_lat)
}

/// E13 table: significance-ordering penalty vs site count.
pub fn e13_table() -> String {
    let mut out = String::from(
        "E13  hierarchical namespace: prefix vs non-prefix attribute queries\n\
         sites   prefix_msgs   prefix_ms   nonprefix_msgs   nonprefix_ms\n",
    );
    for sites in [4usize, 8, 16, 32] {
        let (pm, pl, bm, bl) = e13_measure(sites);
        out.push_str(&format!(
            "{:>5} {:>13} {:>11.2} {:>16} {:>14.2}\n",
            sites,
            pm,
            pl as f64 / 1_000.0,
            bm,
            bl as f64 / 1_000.0
        ));
    }
    out
}

/// E14 measurement: chase latency and messages for one root.
pub fn e14_measure(depth: usize, batch: bool) -> (u64, u64) {
    let spec = WorkloadSpec {
        clusters: 4,
        per_cluster: 2,
        windows_per_site: 4,
        lineage_depth: depth,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    let mut arch = DistributedDb::new(spec.topology(), batch, spec.seed);
    for (site, record) in &corpus.records {
        arch.publish(*site, record);
    }
    arch.run_quiet();
    arch.outcomes();
    arch.reset_net();

    let issued = arch.now();
    let op = arch.lineage(0, corpus.leaves[0], None);
    arch.run_quiet();
    let latency = arch
        .outcomes()
        .into_iter()
        .find(|o| o.op == op)
        .map(|o| o.at.micros_since(issued))
        .unwrap_or(0);
    (latency, arch.net().class(TrafficClass::Query).messages)
}

/// E14 table: distributed transitive closure, naive vs batched.
pub fn e14_table() -> String {
    let mut out = String::from(
        "E14  distributed transitive closure (8 sites): naive vs frontier-batched\n\
         depth   naive_ms   naive_msgs   batched_ms   batched_msgs\n",
    );
    for depth in [2usize, 4, 8] {
        let (naive_lat, naive_msgs) = e14_measure(depth, false);
        let (batch_lat, batch_msgs) = e14_measure(depth, true);
        out.push_str(&format!(
            "{:>5} {:>10.2} {:>12} {:>12.2} {:>14}\n",
            depth,
            naive_lat as f64 / 1_000.0,
            naive_msgs,
            batch_lat as f64 / 1_000.0,
            batch_msgs
        ));
    }
    out
}

/// E21 (distributed half): wire bytes for a bounded vs unbounded remote
/// query. Bounded queries stream keyset pages (`SubQueryPage`) or
/// truncated posting fetches instead of full ID sets, so their traffic
/// tracks the limit rather than the match set.
pub fn e21_traffic_table() -> String {
    use pass_distrib::{Centralized, Federated};
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp};

    let mut out = String::from(
        "E21d distrib query traffic: bounded (LIMIT 10) vs full-result shipping\n\
         architecture      records   full_KiB   limit10_KiB   reduction\n",
    );
    let records = 2_000usize;
    let topology = || Topology::clustered(2, 2, 2.0, 40.0);
    let archs: Vec<Box<dyn Architecture>> = vec![
        Box::new(Centralized::new(topology(), 21)),
        Box::new(Federated::new(topology(), 21)),
        build_arch(ArchKind::Dht { replicas: 1 }, topology(), 21),
    ];
    for mut arch in archs {
        let sites = arch.sites();
        for i in 0..records {
            let record = ProvenanceBuilder::new(SiteId((i % sites) as u32), Timestamp(i as u64))
                .attr("domain", "traffic")
                .attr("seq", i as i64)
                .build(Digest128::of(&(i as u64).to_be_bytes()));
            arch.publish(i % sites, &record);
        }
        arch.run_quiet();
        arch.outcomes();

        let mut measure = |text: &str| -> u64 {
            arch.reset_net();
            arch.query(1, &parse(text).expect("well-formed"));
            arch.run_quiet();
            let _ = arch.outcomes();
            arch.net().class(TrafficClass::Query).bytes
        };
        let full = measure(r#"FIND WHERE domain = "traffic""#);
        let bounded = measure(r#"FIND WHERE domain = "traffic" LIMIT 10"#);
        out.push_str(&format!(
            "{:<17} {:>7} {:>10.1} {:>13.1} {:>10.1}x\n",
            arch.name(),
            records,
            full as f64 / 1024.0,
            bounded as f64 / 1024.0,
            full as f64 / bounded.max(1) as f64
        ));
    }
    out
}

/// Per-architecture one-shot query helper for Criterion benches.
pub fn bench_one_query(kind: ArchKind) -> u64 {
    let spec = WorkloadSpec {
        clusters: 2,
        per_cluster: 2,
        windows_per_site: 2,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    let mut arch = build_arch(kind, spec.topology(), spec.seed);
    for (site, record) in &corpus.records {
        arch.publish(*site, record);
    }
    arch.run_quiet();
    arch.outcomes();
    let query = parse(r#"FIND WHERE domain = "traffic""#).expect("well-formed");
    let issued = arch.now();
    let op = arch.query(0, &query);
    arch.run_quiet();
    arch.outcomes().into_iter().find(|o| o.op == op).map(|o| o.at.micros_since(issued)).unwrap_or(0)
}

/// Shared per-kind label helper.
pub fn kind_name(kind: &ArchKind) -> &'static str {
    match kind {
        ArchKind::Centralized => "centralized",
        ArchKind::DistributedDb { .. } => "distributed-db",
        ArchKind::Federated => "federated",
        ArchKind::SoftState { .. } => "soft-state",
        ArchKind::Hierarchical => "hierarchical",
        ArchKind::Dht { .. } => "dht",
    }
}

/// Convenience map of default kinds by name (used by benches).
pub fn default_kinds() -> HashMap<&'static str, ArchKind> {
    ArchKind::all_default().into_iter().map(|k| (kind_name(&k), k)).collect()
}

// ---------------------------------------------------------------------------
// E22 — live notification: centralized push vs poll loops
// ---------------------------------------------------------------------------

/// Site the standing query lives at (non-warehouse, remote cluster).
const E22_SUBSCRIBER: usize = 3;

/// Deterministic publish schedule: `(origin site, record)` pairs spread
/// over the first four sites, half matching the standing query.
fn e22_corpus(n: usize) -> Vec<(usize, pass_model::ProvenanceRecord)> {
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp};
    (0..n)
        .map(|i| {
            let domain = if i % 2 == 0 { "traffic" } else { "weather" };
            let site = i % 4;
            let record = ProvenanceBuilder::new(SiteId(site as u32), Timestamp(i as u64))
                .attr("domain", domain)
                .attr("seq", i as i64)
                .build(Digest128::of(&(i as u64).to_le_bytes()));
            (site, record)
        })
        .collect()
}

/// One E22 run's harvest: detection latencies plus steady-state traffic.
pub struct LiveRun {
    /// Publish-to-detection latency per matching record, microseconds.
    pub latencies: pass_distrib::LatencyStats,
    /// Matching records never detected (soft state that stayed stale).
    pub missed: usize,
    /// Poll round-trips (0 for push) / push notifications issued.
    pub messages: u64,
    /// Query-class traffic, KiB.
    pub query_kib: f64,
    /// Maintenance-class traffic (subscription upkeep + pushes), KiB.
    pub maint_kib: f64,
}

fn e22_topology() -> Topology {
    Topology::clustered(4, 2, 2.0, 40.0)
}

/// Push mode: register the standing query once, publish the corpus, and
/// measure when each matching id lands at the subscriber.
pub fn e22_push(n: usize, spacing: SimTime) -> LiveRun {
    let mut arch = pass_distrib::Centralized::new(e22_topology(), 22);
    let query = parse(r#"FIND WHERE domain = "traffic""#).expect("well-formed");
    let sub_op = arch.subscribe(E22_SUBSCRIBER, &query).expect("centralized pushes");
    arch.run_quiet();
    arch.outcomes();
    arch.reset_net(); // steady state only: registration excluded
    let mut publish_at = HashMap::new();
    for (site, record) in e22_corpus(n) {
        if query.filter.matches(&record) {
            publish_at.insert(record.id, arch.now());
        }
        arch.publish(site, &record);
        arch.run_for(spacing);
    }
    arch.run_quiet();
    let mut latencies = Vec::new();
    let mut notifications = 0u64;
    for outcome in arch.outcomes() {
        if outcome.op != sub_op || !outcome.ok {
            continue;
        }
        notifications += 1;
        for id in &outcome.ids {
            if let Some(at) = publish_at.remove(id) {
                latencies.push(outcome.at.micros_since(at));
            }
        }
    }
    let net = arch.net();
    LiveRun {
        latencies: pass_distrib::LatencyStats::from_latencies(latencies),
        missed: publish_at.len(),
        messages: notifications,
        query_kib: net.class(TrafficClass::Query).bytes as f64 / 1024.0,
        maint_kib: net.class(TrafficClass::Maintenance).bytes as f64 / 1024.0,
    }
}

/// Poll mode: the subscriber re-runs the standing query every `period`
/// and detects a record the first time a poll reply contains it — the
/// freshness/traffic trade push is measured against. Runs on any
/// architecture (federated scatter-gathers, soft state answers from its
/// catalogs).
pub fn e22_poll(kind: ArchKind, n: usize, spacing: SimTime, period: SimTime) -> LiveRun {
    let mut arch = build_arch(kind, e22_topology(), 22);
    let query = parse(r#"FIND WHERE domain = "traffic""#).expect("well-formed");
    arch.run_quiet();
    arch.outcomes();
    arch.reset_net();

    let mut publish_at: HashMap<pass_model::TupleSetId, SimTime> = HashMap::new();
    let mut detected: HashMap<pass_model::TupleSetId, u64> = HashMap::new();
    let mut poll_ops: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut polls = 0u64;

    let harvest = |arch: &mut dyn Architecture,
                   publish_at: &HashMap<pass_model::TupleSetId, SimTime>,
                   detected: &mut HashMap<pass_model::TupleSetId, u64>,
                   poll_ops: &std::collections::HashSet<u64>| {
        for outcome in arch.outcomes() {
            if !poll_ops.contains(&outcome.op) || !outcome.ok {
                continue;
            }
            for id in &outcome.ids {
                if let Some(at) = publish_at.get(id) {
                    detected.entry(*id).or_insert_with(|| outcome.at.micros_since(*at));
                }
            }
        }
    };

    // Publish phase: polls fire on their period while records land.
    let mut since_poll = SimTime::ZERO;
    for (site, record) in e22_corpus(n) {
        if query.filter.matches(&record) {
            publish_at.insert(record.id, arch.now());
        }
        arch.publish(site, &record);
        arch.run_for(spacing);
        since_poll = SimTime::from_micros(since_poll.as_micros() + spacing.as_micros());
        if since_poll.as_micros() >= period.as_micros() {
            since_poll = SimTime::ZERO;
            poll_ops.insert(arch.query(E22_SUBSCRIBER, &query));
            polls += 1;
        }
        harvest(arch.as_mut(), &publish_at, &mut detected, &poll_ops);
    }
    // Drain phase: keep polling until everything published is detected
    // (bounded — soft state may genuinely never report a stale record).
    for _ in 0..200 {
        if detected.len() == publish_at.len() {
            break;
        }
        arch.run_for(period);
        poll_ops.insert(arch.query(E22_SUBSCRIBER, &query));
        polls += 1;
        arch.run_quiet();
        harvest(arch.as_mut(), &publish_at, &mut detected, &poll_ops);
    }
    let net = arch.net();
    LiveRun {
        latencies: pass_distrib::LatencyStats::from_latencies(detected.values().copied().collect()),
        missed: publish_at.len() - detected.len(),
        messages: polls,
        query_kib: net.class(TrafficClass::Query).bytes as f64 / 1024.0,
        maint_kib: net.class(TrafficClass::Maintenance).bytes as f64 / 1024.0,
    }
}

/// E22 table: notification latency and steady-state traffic, push vs
/// poll loops. The poll sweep brackets the freshness trade: matching
/// push's detection latency needs a period below the publish spacing
/// (traffic explodes), while cheap polls go stale by half their period
/// on average. Push is below the fastest poll on latency *and* below the
/// slowest poll on bytes — the acceptance claim, measured.
pub fn e22_table() -> String {
    let n = 128;
    let spacing = SimTime::from_millis(20);
    let mut out = String::from(
        "E22  live notification: push vs poll (128 publishes, 64 matching, 20ms apart)\n\
         mode           architecture     mean_ms    p50_ms    p99_ms   msgs   qry_KiB   maint_KiB   missed\n",
    );
    let mut row = |mode: &str, archname: &str, run: &LiveRun| {
        out.push_str(&format!(
            "{:<14} {:<15} {:>9.2} {:>9.2} {:>9.2} {:>6} {:>9.1} {:>11.1} {:>8}\n",
            mode,
            archname,
            run.latencies.mean_us / 1_000.0,
            run.latencies.p50_ms(),
            run.latencies.p99_ms(),
            run.messages,
            run.query_kib,
            run.maint_kib,
            run.missed
        ));
    };
    let push = e22_push(n, spacing);
    row("push", "centralized", &push);
    for period_ms in [100u64, 500, 2_000] {
        let run = e22_poll(ArchKind::Centralized, n, spacing, SimTime::from_millis(period_ms));
        row(&format!("poll@{period_ms}ms"), "centralized", &run);
    }
    let run = e22_poll(ArchKind::Federated, n, spacing, SimTime::from_millis(500));
    row("poll@500ms", "federated", &run);
    let run = e22_poll(
        ArchKind::SoftState { refresh: SimTime::from_secs(1) },
        n,
        spacing,
        SimTime::from_millis(500),
    );
    row("poll@500ms", "soft-state", &run);
    out
}
