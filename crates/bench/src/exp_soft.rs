//! Soft-state and churn experiments: E9 (staleness vs recall), E11 (DHT
//! under churn), E15 (replication factor).

use pass_dht::{key_of, ChordConfig, DhtHarness};
use pass_distrib::runner::{build_corpus, run_workload, WorkloadSpec};
use pass_distrib::SoftState;
use pass_net::{churn, SimTime, Topology, TrafficClass};

/// E9 measurement: recall for queries issued right after publishing,
/// under a given digest refresh period.
pub fn e09_recall(refresh: SimTime) -> f64 {
    let spec = WorkloadSpec {
        clusters: 3,
        per_cluster: 2,
        windows_per_site: 2,
        queries: 12,
        lineage_ops: 0,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    let mut arch = SoftState::new(spec.topology(), refresh, spec.seed);
    let report = run_workload(&mut arch, &corpus, &spec);
    report.quality.recall
}

/// E9 table: refresh period vs recall.
pub fn e09_table() -> String {
    let mut out = String::from(
        "E9  soft-state staleness: digest refresh period vs recall\n\
         refresh_s   recall\n",
    );
    for refresh_ms in [50u64, 500, 5_000, 60_000, 3_600_000] {
        let recall = e09_recall(SimTime::from_millis(refresh_ms));
        out.push_str(&format!("{:>9.1} {:>8.3}\n", refresh_ms as f64 / 1_000.0, recall));
    }
    out
}

/// E11/E15 measurement: lookup success under churn.
///
/// Stores `keys` values, applies churn with the given mean session
/// length for `churn_secs`, then issues lookups and reports
/// `(success_rate, maintenance_KiB)`.
pub fn e11_measure(
    nodes: usize,
    replicas: usize,
    mean_session: SimTime,
    n_keys: usize,
) -> (f64, f64) {
    let topology = Topology::uniform(nodes, 20.0);
    let config = ChordConfig { replicas, ..ChordConfig::default() };
    let mut h = DhtHarness::build(topology, config, 11);

    // Store the corpus.
    let keys: Vec<u64> = (0..n_keys).map(|i| key_of(format!("ts-{i}").as_bytes())).collect();
    let issued = h.sim.now();
    for (i, &k) in keys.iter().enumerate() {
        h.put(i % nodes, k, format!("record-{i}").into_bytes());
    }
    h.run_and_collect(SimTime::from_secs(60), issued);

    // Churn (node 0, the bootstrap, stays up so re-joins can anchor).
    let horizon = SimTime::from_secs(120);
    let start = h.sim.now();
    let events = churn::schedule(13, 1..nodes, mean_session, mean_session, horizon);
    for e in &events {
        let at = SimTime::from_micros(start.as_micros() + e.at.as_micros());
        if e.up {
            h.sim.schedule_recover(at, e.node);
        } else {
            h.sim.schedule_crash(at, e.node);
        }
    }
    h.sim.run_until(SimTime::from_micros(start.as_micros() + horizon.as_micros()));
    h.sim.take_completions();
    h.sim.reset_metrics();

    // Lookups after the churn interval (plus stabilization slack).
    let slack = SimTime::from_secs(20);
    h.sim.run_until(SimTime::from_micros(h.sim.now().as_micros() + slack.as_micros()));
    let issued = h.sim.now();
    for (i, &k) in keys.iter().enumerate() {
        // Issue via nodes that are currently up.
        let mut via = i % nodes;
        while !h.sim.is_up(via) {
            via = (via + 1) % nodes;
        }
        h.get(via, k);
    }
    let outcomes = h.run_and_collect(SimTime::from_secs(120), issued);
    let ok = outcomes.iter().filter(|o| o.ok).count();
    let success = if outcomes.is_empty() { 0.0 } else { ok as f64 / keys.len() as f64 };
    let maint = h.sim.metrics().class(TrafficClass::Maintenance).bytes as f64 / 1024.0;
    (success, maint)
}

/// E11 table: churn severity vs lookup success (replicas = 1 vs 3).
pub fn e11_table() -> String {
    let mut out = String::from(
        "E11  DHT under churn: lookup success after 120 s of churn (16 nodes, 60 keys)\n\
         mean_session_s   success_r1   success_r3   maint_KiB_r3\n",
    );
    for session_secs in [20u64, 60, 180, 600] {
        let (r1, _) = e11_measure(16, 1, SimTime::from_secs(session_secs), 60);
        let (r3, maint) = e11_measure(16, 3, SimTime::from_secs(session_secs), 60);
        out.push_str(&format!("{:>14} {:>12.3} {:>12.3} {:>14.1}\n", session_secs, r1, r3, maint));
    }
    out
}

/// E15 table: replication factor vs durability and update cost.
pub fn e15_table() -> String {
    let mut out = String::from(
        "E15  replication factor (16 nodes, 60 keys, 60 s mean sessions)\n\
         replicas   lookup_success   update_KiB\n",
    );
    for replicas in [1usize, 2, 3, 4] {
        let topology = Topology::uniform(16, 20.0);
        let config = ChordConfig { replicas, ..ChordConfig::default() };
        let mut h = DhtHarness::build(topology, config, 17);
        let issued = h.sim.now();
        let keys: Vec<u64> = (0..60).map(|i| key_of(format!("r-{i}").as_bytes())).collect();
        for (i, &k) in keys.iter().enumerate() {
            h.put(i % 16, k, vec![0u8; 200]);
        }
        h.run_and_collect(SimTime::from_secs(60), issued);
        let update_kib = (h.sim.metrics().class(TrafficClass::Update).bytes
            + h.sim.metrics().class(TrafficClass::Maintenance).bytes)
            as f64
            / 1024.0;

        let (success, _) = {
            // Reuse the churn measurement for the availability side.
            let (s, m) = e11_measure(16, replicas, SimTime::from_secs(60), 60);
            (s, m)
        };
        out.push_str(&format!("{:>8} {:>16.3} {:>12.1}\n", replicas, success, update_kib));
    }
    out
}
