//! E18: per-operation policy enforcement overhead (guarded vs raw PASS).

use criterion::{criterion_group, criterion_main, Criterion};
use pass_bench::exp_policy::{e18_analyst, e18_engine, e18_store};
use pass_index::{Direction, TraverseOpts};
use pass_policy::GuardedPass;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_enforcement");
    group.sample_size(30);

    let (pass, ids, head) = e18_store(2_000, 64);
    let probe = ids[17];
    group.bench_function("query/unguarded", |b| {
        b.iter(|| pass.query_text(r#"FIND WHERE region = "metro-1""#).unwrap())
    });
    group.bench_function("get_record/unguarded", |b| b.iter(|| pass.get_record(probe)));
    group.bench_function("lineage64/unguarded", |b| {
        b.iter(|| pass.lineage(head, Direction::Ancestors, TraverseOpts::unbounded()).unwrap())
    });

    let guard = GuardedPass::new(pass, e18_engine());
    let analyst = e18_analyst();
    group.bench_function("query/guarded", |b| {
        b.iter(|| guard.query_text(&analyst, r#"FIND WHERE region = "metro-1""#).unwrap())
    });
    group.bench_function("get_record/guarded", |b| {
        b.iter(|| {
            let _ = guard.get_record(&analyst, probe);
        })
    });
    group.bench_function("lineage64/guarded", |b| {
        b.iter(|| {
            guard.lineage(&analyst, head, Direction::Ancestors, TraverseOpts::unbounded()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
