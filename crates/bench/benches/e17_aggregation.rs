//! E17: k-anonymous aggregation — cost of privacy across the k sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_policy::{e17_patients, e17_spec};
use pass_policy::kanonymize;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_aggregation");
    let patients = e17_patients(400, 17);
    let spec = e17_spec();
    for k in [1usize, 5, 25] {
        group.bench_with_input(BenchmarkId::new("kanonymize", k), &k, |b, &k| {
            b.iter(|| kanonymize(&patients, k, &spec, 0.05).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
