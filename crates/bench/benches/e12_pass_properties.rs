//! E12: PASS property enforcement micro-benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use pass_core::Pass;
use pass_model::{
    keys, Attributes, Digest128, ProvenanceBuilder, Reading, SensorId, SiteId, Timestamp,
};

fn bench(c: &mut Criterion) {
    let record = ProvenanceBuilder::new(SiteId(1), Timestamp(1))
        .attr(keys::DOMAIN, "traffic")
        .attr(keys::REGION, "london")
        .build(Digest128::of(b"payload"));
    let mut group = c.benchmark_group("e12_pass_properties");
    group.bench_function("identity_verification", |b| b.iter(|| record.verify_identity()));
    group.bench_function("identity_mint", |b| {
        b.iter(|| {
            ProvenanceBuilder::new(SiteId(1), Timestamp(1))
                .attr(keys::DOMAIN, "traffic")
                .build(Digest128::of(b"payload"))
        })
    });
    group.sample_size(20);
    group.bench_function("verified_capture", |b| {
        let pass = Pass::open_memory(SiteId(1));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let readings = vec![Reading::new(SensorId(1), Timestamp(i)).with("v", i as i64)];
            pass.capture(
                Attributes::new().with(keys::DOMAIN, "bench").with("i", i as i64),
                readings,
                Timestamp(i),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
