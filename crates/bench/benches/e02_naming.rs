//! E2: flat-filename matching vs structured provenance lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use pass_bench::exp_local::e02_corpus;
use pass_model::{flatname, keys, Value};

fn bench(c: &mut Criterion) {
    let corpus = e02_corpus(400);
    let names: Vec<String> = corpus.iter().map(flatname::build).collect();
    let target = Value::Str("new_york".to_owned());

    let mut group = c.benchmark_group("e02_naming");
    group.sample_size(20);
    group.bench_function("flat_name_scan_2000", |b| {
        b.iter(|| names.iter().filter(|n| flatname::name_matches(n, keys::REGION, &target)).count())
    });
    group.bench_function("flat_name_build", |b| b.iter(|| flatname::build(&corpus[0])));
    group.bench_function("flat_name_parse", |b| b.iter(|| flatname::parse(&names[0])));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
