//! E3: the transitive-closure strategy ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_local::e03_graph;
use pass_index::closure::{BfsClosure, MemoClosure, NaiveJoinClosure, ReachStrategy, TraverseOpts};
use pass_index::{Direction, IntervalClosure};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_closure");
    group.sample_size(30);
    for depth in [8usize, 32] {
        let (graph, leaf) = e03_graph(depth, 16);
        let opts = TraverseOpts::unbounded();
        let memo = MemoClosure::build(&graph, false).unwrap();
        let interval = IntervalClosure::build(&graph, false).unwrap();
        let strategies: Vec<(&str, &dyn ReachStrategy)> = vec![
            ("naive-join", &NaiveJoinClosure),
            ("bfs", &BfsClosure),
            ("memo", &memo),
            ("interval", &interval),
        ];
        for (name, strategy) in strategies {
            group.bench_with_input(BenchmarkId::new(name, depth), &depth, |b, _| {
                b.iter(|| strategy.reachable(&graph, leaf, Direction::Ancestors, &opts))
            });
        }
        group.bench_with_input(BenchmarkId::new("memo-build", depth), &depth, |b, _| {
            b.iter(|| MemoClosure::build(&graph, false).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
