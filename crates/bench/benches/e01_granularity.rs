//! E1: ingest + query cost at different tuple-set granularities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_local::e01_store;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_granularity");
    group.sample_size(10);
    for per_set in [1usize, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("ingest_5k_readings", per_set),
            &per_set,
            |b, &per_set| b.iter(|| e01_store(5_000, per_set)),
        );
    }
    let (pass, _) = e01_store(20_000, 100);
    group.bench_function("eq_query_at_100_per_set", |b| {
        b.iter(|| pass.query_text(r#"FIND WHERE region = "zone-3""#).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
