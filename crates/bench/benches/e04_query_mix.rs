//! E4: §III query-mix latency on a populated local PASS.

use criterion::{criterion_group, criterion_main, Criterion};
use pass_bench::exp_local::e04_store;
use pass_sensor::gen::rng_for;
use pass_sensor::workload;

fn bench(c: &mut Criterion) {
    let (pass, vocab) = e04_store();
    let mut rng = rng_for(4, "bench-e04");
    let versioning = workload::versioning(&vocab, &mut rng, 8);
    let science = workload::science(&vocab, &mut rng, 8);
    let sensor = workload::sensor(&vocab, &mut rng, 8);

    let mut group = c.benchmark_group("e04_query_mix");
    group.sample_size(20);
    for (name, specs) in [("versioning", versioning), ("science", science), ("sensor", sensor)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for spec in &specs {
                    pass.query_text(&spec.text).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
