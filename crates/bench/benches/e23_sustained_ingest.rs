//! E23: sustained-ingest read latency, baseline (no compaction) vs the
//! background maintenance worker. Writes `BENCH_e23.json` at the repo
//! root (override with `E23_OUT`).
//!
//! Knobs:
//! * `E23_RECORDS` — records per regime (default 1,000,000);
//! * `E23_ASSERT=1` — assert the maintenance run stayed flat: end
//!   p99 ≤ 2× the p99 at 10% of ingest (plus a small absolute slack so
//!   microsecond-scale noise cannot flip the verdict), and space
//!   amplification after the drain ≤ 1.5×. This is the CI smoke gate.

use pass_bench::exp_storage::{e23_json, e23_run};
use std::path::PathBuf;

fn main() {
    let records: usize =
        std::env::var("E23_RECORDS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000);

    let baseline = e23_run(records, false);
    println!("{}", baseline.table());
    let maintained = e23_run(records, true);
    println!("{}", maintained.table());

    let out: PathBuf = std::env::var("E23_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e23.json"));
    std::fs::write(&out, e23_json(&[baseline, maintained.clone()])).expect("write BENCH_e23.json");
    println!("wrote {}", out.display());

    if std::env::var("E23_ASSERT").as_deref() == Ok("1") {
        let early = &maintained.checkpoints[0]; // the 10%-of-ingest sample
        let end = maintained.checkpoints.last().expect("checkpoints exist");
        assert!(
            end.read_p99_us <= 2.0 * early.read_p99_us + 50.0,
            "maintenance run degraded: end p99 {:.1}us vs early p99 {:.1}us",
            end.read_p99_us,
            early.read_p99_us,
        );
        assert!(
            maintained.space_amp <= 1.5,
            "space amplification {:.2}x exceeds 1.5x",
            maintained.space_amp,
        );
        println!(
            "e23 smoke ok: early p99 {:.1}us, end p99 {:.1}us, space amp {:.2}x",
            early.read_p99_us, end.read_p99_us, maintained.space_amp,
        );
    }
}
