//! E14: distributed transitive closure, naive vs batched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_dist::e14_measure;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_dist_closure");
    group.sample_size(10);
    for depth in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, &d| {
            b.iter(|| e14_measure(d, false))
        });
        group.bench_with_input(BenchmarkId::new("batched", depth), &depth, |b, &d| {
            b.iter(|| e14_measure(d, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
