//! E22 (local half): per-commit notification overhead of the
//! subscription hub.
//!
//! The commit path pays one relaxed atomic load when nobody subscribes —
//! the `subs=0` series must be indistinguishable from pre-subscription
//! ingest. With subscribers attached, each commit additionally clones
//! its records into one shared changelog and pushes an `Arc` per
//! subscriber (the subscribers here never drain, so the bounded queues
//! exercise the drop-oldest overflow path rather than growing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_core::Pass;
use pass_model::{keys, Attributes, Reading, SensorId, SiteId, Timestamp};
use pass_query::parse;

fn items(base: u64, n: u64) -> Vec<(Attributes, Vec<Reading>, Timestamp)> {
    (base..base + n)
        .map(|i| {
            let at = Timestamp(i);
            let attrs = Attributes::new().with(keys::DOMAIN, "traffic").with("seq", i as i64);
            (attrs, vec![Reading::new(SensorId(1), at).with("v", i as i64)], at)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e22_live_notify");
    group.sample_size(20);
    for subs in [0usize, 1, 8] {
        group.bench_with_input(BenchmarkId::new("ingest_256_sets", subs), &subs, |b, &subs| {
            let pass = Pass::open_memory(SiteId(1));
            // Matching subscriptions that are never drained: every
            // commit broadcasts, worst case for the hub.
            let _subs: Vec<_> = (0..subs)
                .map(|_| pass.subscribe(&parse("FIND").unwrap()).expect("subscribe"))
                .collect();
            let mut base = 0u64;
            b.iter(|| {
                pass.capture_batch(items(base, 256)).expect("capture");
                base += 256;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
