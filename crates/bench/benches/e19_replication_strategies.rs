//! E19: full strategy runs (publish → warm → crash → recall), one per
//! replication mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_policy::e19_run;
use pass_distrib::ReplicationStrategy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_replication_strategies");
    group.sample_size(10);
    for (label, strategy) in [
        ("origin-only", ReplicationStrategy::OriginOnly),
        ("eager-4", ReplicationStrategy::Eager { factor: 4 }),
        ("on-read", ReplicationStrategy::OnRead),
    ] {
        group.bench_with_input(BenchmarkId::new("run", label), &strategy, |b, &s| {
            b.iter(|| e19_run(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
