//! E20: group-commit ingest throughput at batch sizes 1/16/256/4096.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_local::e20_batched_store;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_batch_ingest");
    group.sample_size(10);
    for batch in [1usize, 16, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("ingest_8k_sets", batch), &batch, |b, &batch| {
            b.iter(|| e20_batched_store(8_192, batch))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
