//! E15: replication factor vs availability and update cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_soft::e11_measure;
use pass_net::SimTime;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_replication");
    group.sample_size(10);
    for replicas in [1usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("availability_run", replicas),
            &replicas,
            |b, &r| b.iter(|| e11_measure(8, r, SimTime::from_secs(180), 20)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
