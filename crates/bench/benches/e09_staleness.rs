//! E9: soft-state recall measurement cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_soft::e09_recall;
use pass_net::SimTime;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_staleness");
    group.sample_size(10);
    for refresh_ms in [100u64, 5_000] {
        group.bench_with_input(
            BenchmarkId::new("recall_run", refresh_ms),
            &refresh_ms,
            |b, &ms| b.iter(|| e09_recall(SimTime::from_millis(ms))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
