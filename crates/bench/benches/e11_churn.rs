//! E11: DHT lookup success under churn (one simulated scenario per iter).

use criterion::{criterion_group, criterion_main, Criterion};
use pass_bench::exp_soft::e11_measure;
use pass_net::SimTime;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_churn");
    group.sample_size(10);
    group.bench_function("churned_ring_8n_20k", |b| {
        b.iter(|| e11_measure(8, 2, SimTime::from_secs(120), 20))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
