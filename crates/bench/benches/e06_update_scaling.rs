//! E6: publish throughput under burst load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_dist::e06_throughput;
use pass_distrib::runner::ArchKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_update_scaling");
    group.sample_size(10);
    for sites in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("centralized", sites), &sites, |b, &s| {
            b.iter(|| e06_throughput(ArchKind::Centralized, s, 32))
        });
        group.bench_with_input(BenchmarkId::new("distributed-db", sites), &sites, |b, &s| {
            b.iter(|| e06_throughput(ArchKind::DistributedDb { batch: true }, s, 32))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
