//! E10: crash-recovery sweep cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_rel::e10_sweep;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_recovery");
    group.sample_size(10);
    for records in [200usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("truncate_reopen_audit", records),
            &records,
            |b, &n| b.iter(|| e10_sweep(n, 3, 7)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
