//! E16: lineage with and without abstraction boundaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_local::e16_store;
use pass_index::closure::TraverseOpts;
use pass_index::Direction;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_abstraction");
    group.sample_size(20);
    for chain_len in [32usize, 128] {
        let (pass, outputs) = e16_store(2, chain_len);
        let root = outputs[0];
        group.bench_with_input(BenchmarkId::new("full", chain_len), &chain_len, |b, _| {
            b.iter(|| pass.lineage(root, Direction::Ancestors, TraverseOpts::unbounded()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("abstracted", chain_len), &chain_len, |b, _| {
            b.iter(|| {
                pass.lineage(
                    root,
                    Direction::Ancestors,
                    TraverseOpts { stop_at_abstraction: true, ..TraverseOpts::default() },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
