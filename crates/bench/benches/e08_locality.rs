//! E8: locale-specific query latency under different placements.

use criterion::{criterion_group, criterion_main, Criterion};
use pass_bench::exp_dist::e08_local_query_latency;
use pass_distrib::runner::ArchKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_locality");
    group.sample_size(10);
    group.bench_function("federated_local", |b| {
        b.iter(|| e08_local_query_latency(ArchKind::Federated))
    });
    group.bench_function("centralized_remote", |b| {
        b.iter(|| e08_local_query_latency(ArchKind::Centralized))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
