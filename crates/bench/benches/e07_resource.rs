//! E7: full-workload traffic accounting (benches the runner itself).

use criterion::{criterion_group, criterion_main, Criterion};
use pass_distrib::runner::{build_arch, build_corpus, run_workload, ArchKind, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let spec = WorkloadSpec {
        clusters: 2,
        per_cluster: 2,
        windows_per_site: 2,
        queries: 6,
        lineage_ops: 2,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    let mut group = c.benchmark_group("e07_resource");
    group.sample_size(10);
    for kind in [ArchKind::Centralized, ArchKind::Federated] {
        let name = pass_bench::exp_dist::kind_name(&kind);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut arch = build_arch(kind, spec.topology(), spec.seed);
                run_workload(arch.as_mut(), &corpus, &spec)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
