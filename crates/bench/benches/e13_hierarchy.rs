//! E13: significance-ordering penalty on the hierarchical namespace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_dist::e13_measure;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_hierarchy");
    group.sample_size(10);
    for sites in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("prefix_vs_broadcast", sites), &sites, |b, &s| {
            b.iter(|| e13_measure(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
