//! E21: streaming cursors vs materialize-everything execution —
//! time-to-first-result for a bounded query at store sizes 10k/100k/1M.
//! (Peak-RSS numbers come from the `experiments e21` table, which can
//! reset the kernel watermark between runs; Criterion measures time.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pass_bench::exp_local::e20_batched_store;
use pass_query::QueryEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_streaming");
    group.sample_size(10);
    let bounded = pass_query::parse(r#"FIND WHERE region = "zone-3" LIMIT 10"#).unwrap();
    let unbounded = pass_query::parse(r#"FIND WHERE region = "zone-3""#).unwrap();
    for size in [10_000usize, 100_000, 1_000_000] {
        let (pass, _) = e20_batched_store(size, 4_096);
        let snapshot = pass.snapshot();
        group.bench_with_input(BenchmarkId::new("first_result_streaming", size), &size, |b, _| {
            b.iter(|| snapshot.open_query(&bounded).expect("open").next().expect("first record"))
        });
        group.bench_with_input(BenchmarkId::new("limit10_streaming", size), &size, |b, _| {
            b.iter(|| snapshot.open_query(&bounded).expect("open").count())
        });
        group.bench_with_input(BenchmarkId::new("limit10_materialized", size), &size, |b, _| {
            b.iter(|| {
                // The old API shape: drain the full match set, cut.
                let mut records =
                    pass_query::execute(&unbounded, &snapshot).expect("query").records;
                records.truncate(10);
                records.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
