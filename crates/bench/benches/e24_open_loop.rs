//! E24: open-loop serving-layer latency across the knee. Writes
//! `BENCH_e24.json` at the repo root (override with `E24_OUT`).
//!
//! Knobs:
//! * `E24_DURATION_MS` — measurement window per sweep point (default
//!   5000);
//! * `E24_CONNS` — client connections (default 16);
//! * `E24_MULTS` — comma-separated knee multipliers (default
//!   `0.3,0.6,0.9,1.2,2.0`);
//! * `E24_ASSERT=1` — CI smoke gate: the top multiplier must shed
//!   (`Overloaded` observed, client and server counts agreeing) while
//!   the p99 of *admitted* work stays bounded, and the below-knee
//!   points must commit everything they sent.
//! * `E24_OUT` — output path for the JSON report.

use pass_bench::exp_server::{e24_calibrate, e24_json, e24_run, E24Config};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let duration_ms: u64 =
        std::env::var("E24_DURATION_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(5_000);
    let connections: usize =
        std::env::var("E24_CONNS").ok().and_then(|v| v.parse().ok()).unwrap_or(16);
    let multipliers: Vec<f64> = std::env::var("E24_MULTS")
        .ok()
        .map(|v| v.split(',').filter_map(|m| m.trim().parse().ok()).collect())
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| vec![0.3, 0.6, 0.9, 1.2, 2.0]);

    let config = E24Config {
        connections,
        duration: Duration::from_millis(duration_ms),
        multipliers,
        ..E24Config::default()
    };

    // Calibration window: long enough to swamp connection setup, short
    // enough not to dominate the run.
    let knee = e24_calibrate(&config, Duration::from_millis(duration_ms.clamp(500, 2_000)));
    println!("calibrated knee: {knee:.0} publishes/s over {} connections", config.connections);

    let report = e24_run(&config, knee);
    println!("{}", report.table());

    let out: PathBuf = std::env::var("E24_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e24.json"));
    std::fs::write(&out, e24_json(&report)).expect("write BENCH_e24.json");
    println!("wrote {}", out.display());

    if std::env::var("E24_ASSERT").as_deref() == Ok("1") {
        let top = report
            .points
            .iter()
            .max_by(|a, b| a.mult.total_cmp(&b.mult))
            .expect("sweep has points");
        assert!(top.mult >= 1.5, "smoke sweep must include a point well above the knee");
        assert!(
            top.overloaded > 0,
            "at {:.1}x the knee the admission gate must shed (offered {:.0}/s, committed {})",
            top.mult,
            top.offered,
            top.committed
        );
        assert_eq!(
            top.server_rejected, top.overloaded,
            "server-side rejection counter must agree with client-observed sheds"
        );
        assert!(
            top.p99_ms <= 1_000.0,
            "p99 of admitted work must stay bounded under overload, got {:.1} ms",
            top.p99_ms
        );
        for p in report.points.iter().filter(|p| p.mult <= 0.7) {
            assert_eq!(
                p.unanswered, 0,
                "below the knee ({:.1}x) every publish must be answered",
                p.mult
            );
            assert!(p.errors == 0, "below the knee ({:.1}x) the run must be error-free", p.mult);
        }
        println!(
            "e24 smoke ok: top point {:.1}x shed {} of {} with p99 {:.1} ms",
            top.mult, top.overloaded, top.sent, top.p99_ms
        );
    }
}
