//! E5: one published-and-queried round trip per architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use pass_bench::exp_dist::bench_one_query;
use pass_distrib::runner::ArchKind;
use pass_net::SimTime;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_architectures");
    group.sample_size(10);
    for (name, kind) in [
        ("centralized", ArchKind::Centralized),
        ("distributed-db", ArchKind::DistributedDb { batch: true }),
        ("federated", ArchKind::Federated),
        ("soft-state", ArchKind::SoftState { refresh: SimTime::from_secs(1) }),
        ("hierarchical", ArchKind::Hierarchical),
    ] {
        group.bench_function(name, |b| b.iter(|| bench_one_query(kind)));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
