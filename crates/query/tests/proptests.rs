//! Property tests for the query layer: the planner's index strategy must
//! agree with brute-force predicate evaluation on arbitrary predicates
//! and corpora — the superset-plus-residual contract, fuzzed.

use pass_index::{
    AncestryGraph, AttrIndex, BfsClosure, KeywordIndex, NodeIdx, PostingList, ReachStrategy,
    TimeIndex,
};
use pass_model::{
    Digest128, ProvenanceBuilder, ProvenanceRecord, SiteId, TimeRange, Timestamp, TupleSetId, Value,
};
use pass_query::{execute, CmpOp, LineageClause, OrderBy, Predicate, Provider, Query, QueryEngine};
use proptest::prelude::*;
use std::ops::Bound;
use std::sync::Mutex;

/// Minimal in-memory provider mirroring the core's indexing rules.
struct Fixture {
    records: Vec<ProvenanceRecord>,
    attrs: AttrIndex,
    time: Mutex<TimeIndex>,
    keywords: KeywordIndex,
    graph: AncestryGraph,
}

impl Fixture {
    fn new(records: Vec<ProvenanceRecord>) -> Self {
        let mut attrs = AttrIndex::new();
        let mut time = TimeIndex::new();
        let mut keywords = KeywordIndex::new();
        let mut graph = AncestryGraph::new();
        for record in &records {
            let parents: Vec<(TupleSetId, bool)> =
                record.ancestry.iter().map(|d| (d.parent, d.tool.abstracted)).collect();
            let idx = graph.insert(record.id, &parents);
            attrs.insert_attrs(idx, &record.attributes);
            for (name, value) in pass_query::ast::multi_valued_attrs(record) {
                attrs.insert(idx, name, value);
            }
            attrs.insert(idx, "origin.site", Value::Int(i64::from(record.origin.0)));
            attrs.insert(idx, "created_at", Value::Time(record.created_at));
            attrs.insert(idx, "ancestry.parents", Value::Int(record.ancestry.len() as i64));
            if let Some(range) = record.time_range() {
                time.insert(idx, range);
            }
            for ann in &record.annotations {
                keywords.insert(idx, &ann.text);
            }
            if let Some(desc) = record.attributes.get_str(pass_model::keys::DESCRIPTION) {
                keywords.insert(idx, desc);
            }
        }
        Fixture { records, attrs, time: Mutex::new(time), keywords, graph }
    }
}

impl Provider for Fixture {
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
        self.attrs.eq(attr, value)
    }
    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
        self.attrs.range(attr, low, high)
    }
    fn time_overlap(&self, range: TimeRange) -> PostingList {
        self.time.lock().unwrap().overlapping(range)
    }
    fn keyword_lookup(&self, phrase: &str) -> PostingList {
        self.keywords.lookup_all(phrase)
    }
    fn has_attr(&self, attr: &str) -> PostingList {
        self.attrs.has_attr(attr)
    }
    fn all_nodes(&self) -> PostingList {
        PostingList::from_iter(self.records.iter().filter_map(|r| self.graph.lookup(r.id)))
    }
    fn lineage(&self, clause: &LineageClause) -> Option<PostingList> {
        let root = self.graph.lookup(clause.root)?;
        Some(PostingList::from_iter(BfsClosure.reachable(
            &self.graph,
            root,
            clause.direction,
            &clause.traverse_opts(),
        )))
    }
    fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.graph.lookup(id)
    }
    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
        let id = self.graph.resolve(idx)?;
        self.records.iter().find(|r| r.id == id).cloned()
    }
    fn created_scan(&self, desc: bool) -> Option<std::sync::Arc<[NodeIdx]>> {
        let keyed = self
            .records
            .iter()
            .filter_map(|r| self.graph.lookup(r.id).map(|idx| (r.created_at, r.id, idx)))
            .collect();
        Some(pass_query::created_order_scan(keyed, desc))
    }
}

impl QueryEngine for Fixture {
    fn open(
        &self,
        prepared: &pass_query::PreparedQuery,
    ) -> pass_query::Result<pass_query::Cursor<'_>> {
        pass_query::Cursor::over(self, prepared)
    }
}

const ATTRS: &[&str] = &["domain", "region", "kind", "level"];
const STR_VALUES: &[&str] = &["traffic", "weather", "medical", "london", "boston"];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0usize..STR_VALUES.len()).prop_map(|i| Value::from(STR_VALUES[i])),
        (-5i64..15).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_leaf() -> impl Strategy<Value = Predicate> {
    let attr = (0usize..ATTRS.len()).prop_map(|i| ATTRS[i].to_owned());
    prop_oneof![
        (attr.clone(), arb_value()).prop_map(|(a, v)| Predicate::Eq(a, v)),
        (attr.clone(), arb_value()).prop_map(|(a, v)| Predicate::Ne(a, v)),
        (attr.clone(), arb_value()).prop_map(|(a, v)| Predicate::Cmp(a, CmpOp::Ge, v)),
        (attr.clone(), arb_value()).prop_map(|(a, v)| Predicate::Cmp(a, CmpOp::Lt, v)),
        (attr.clone(), arb_value(), arb_value())
            .prop_map(|(a, lo, hi)| Predicate::Between(a, lo, hi)),
        attr.prop_map(Predicate::HasAttr),
        (0u64..200, 0u64..200).prop_map(|(a, b)| Predicate::TimeOverlaps(TimeRange::new(
            Timestamp(a.min(b)),
            Timestamp(a.max(b))
        ))),
        Just(Predicate::True),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    arb_leaf().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Predicate::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Predicate::Or),
            inner.prop_map(|p| Predicate::Not(Box::new(p))),
        ]
    })
}

fn arb_record(seed: usize) -> impl Strategy<Value = ProvenanceRecord> {
    (
        proptest::collection::vec((0usize..ATTRS.len(), arb_value()), 0..4),
        proptest::option::of((0u64..150, 0u64..60)),
        0u32..4,
    )
        .prop_map(move |(pairs, window, origin)| {
            let mut builder = ProvenanceBuilder::new(SiteId(origin), Timestamp(seed as u64));
            for (ai, v) in pairs {
                builder = builder.attr(ATTRS[ai], v);
            }
            if let Some((start, len)) = window {
                builder =
                    builder.time_range(TimeRange::new(Timestamp(start), Timestamp(start + len)));
            }
            builder.attr("uniq", seed as i64).build(Digest128::of(&seed.to_be_bytes()))
        })
}

fn arb_corpus() -> impl Strategy<Value = Vec<ProvenanceRecord>> {
    proptest::collection::vec(any::<u8>(), 3..20).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, s)| arb_record(i * 256 + s as usize))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fundamental contract: executor output == brute-force filter,
    /// for every predicate shape the planner might see.
    #[test]
    fn executor_matches_brute_force(corpus in arb_corpus(), pred in arb_predicate()) {
        let fixture = Fixture::new(corpus.clone());
        let query = Query::filtered(pred.clone());
        let result = execute(&query, &fixture).unwrap();
        let mut got = result.ids();
        got.sort();
        let mut want: Vec<TupleSetId> = corpus
            .iter()
            .filter(|r| pred.matches(r))
            .map(|r| r.id)
            .collect();
        want.sort();
        prop_assert_eq!(got, want, "predicate {:?}", pred);
    }

    /// Limits never change membership, only cardinality.
    #[test]
    fn limit_truncates_without_changing_membership(
        corpus in arb_corpus(),
        pred in arb_predicate(),
        limit in 0usize..10,
    ) {
        let fixture = Fixture::new(corpus);
        let full = execute(&Query::filtered(pred.clone()), &fixture).unwrap();
        let cut = execute(&Query::filtered(pred).with_limit(limit), &fixture).unwrap();
        prop_assert!(cut.records.len() <= limit);
        let full_ids: std::collections::HashSet<_> = full.ids().into_iter().collect();
        prop_assert!(cut.ids().iter().all(|id| full_ids.contains(id)));
    }

    /// Double negation is a no-op.
    #[test]
    fn double_negation_is_identity(corpus in arb_corpus(), pred in arb_predicate()) {
        let fixture = Fixture::new(corpus);
        let direct = execute(&Query::filtered(pred.clone()), &fixture).unwrap();
        let doubled = execute(
            &Query::filtered(Predicate::Not(Box::new(Predicate::Not(Box::new(pred))))),
            &fixture,
        )
        .unwrap();
        let mut a = direct.ids();
        let mut b = doubled.ids();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Parser fuzz: arbitrary input never panics.
    #[test]
    fn parser_never_panics(input in "[ -~]{0,80}") {
        let _ = pass_query::parse(&input);
    }

    /// Draining a cursor equals `execute` for every predicate and
    /// ordering — the streaming API is a pure refactoring of execution.
    #[test]
    fn cursor_drain_equals_execute(
        corpus in arb_corpus(),
        pred in arb_predicate(),
        order in 0u8..3,
        limit in proptest::option::of(0usize..12),
    ) {
        let fixture = Fixture::new(corpus);
        let mut query = Query::filtered(pred);
        query.order = match order {
            0 => OrderBy::None,
            1 => OrderBy::CreatedAsc,
            _ => OrderBy::CreatedDesc,
        };
        query.limit = limit;
        let executed = execute(&query, &fixture).unwrap().records;
        let drained: Vec<ProvenanceRecord> =
            fixture.open_query(&query).unwrap().collect();
        prop_assert_eq!(executed, drained);
    }

    /// Keyset pagination is lossless: concatenating `LIMIT k AFTER
    /// <last>` pages reproduces the one-shot result exactly, record for
    /// record, for any page size and ordering.
    #[test]
    fn paging_concatenation_equals_one_shot(
        corpus in arb_corpus(),
        pred in arb_predicate(),
        page in 1usize..6,
        order in 0u8..3,
    ) {
        let fixture = Fixture::new(corpus);
        let mut query = Query::filtered(pred);
        query.order = match order {
            0 => OrderBy::None,
            1 => OrderBy::CreatedAsc,
            _ => OrderBy::CreatedDesc,
        };
        let full = execute(&query, &fixture).unwrap().records;

        let mut paged: Vec<ProvenanceRecord> = Vec::new();
        let mut after: Option<TupleSetId> = None;
        // Page count is bounded by the corpus; guard against a paging
        // bug looping forever.
        for _ in 0..=full.len() + 1 {
            let mut page_query = query.clone().with_limit(page);
            page_query.after = after;
            let batch = execute(&page_query, &fixture).unwrap().records;
            if batch.is_empty() {
                break;
            }
            after = Some(batch.last().unwrap().id);
            paged.extend(batch);
        }
        prop_assert_eq!(full, paged);
    }
}
