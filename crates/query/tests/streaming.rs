//! Streaming-execution integration tests: limit/order/keyset pushdown
//! must keep per-query work proportional to what the caller consumes,
//! measured with a counting provider over a 100k-record store.

use pass_index::{AncestryGraph, AttrIndex, NodeIdx, PostingList};
use pass_model::{
    Digest128, ProvenanceBuilder, ProvenanceRecord, SiteId, TimeRange, Timestamp, TupleSetId, Value,
};
use pass_query::{parse, LineageClause, Provider, QueryEngine};
use std::ops::Bound;
use std::sync::atomic::{AtomicUsize, Ordering};

const STORE_SIZE: usize = 100_000;

/// A large in-memory provider that counts every record fetch.
struct BigStore {
    records: Vec<ProvenanceRecord>,
    by_id: std::collections::HashMap<TupleSetId, usize>,
    attrs: AttrIndex,
    graph: AncestryGraph,
    fetches: AtomicUsize,
}

impl BigStore {
    fn build(n: usize) -> BigStore {
        let mut attrs = AttrIndex::new();
        let mut graph = AncestryGraph::new();
        let mut records = Vec::with_capacity(n);
        let mut by_id = std::collections::HashMap::with_capacity(n);
        for i in 0..n {
            let record = ProvenanceBuilder::new(SiteId(1), Timestamp(i as u64))
                .attr("domain", if i % 2 == 0 { "traffic" } else { "weather" })
                .attr("zone", (i % 64) as i64)
                .build(Digest128::of(&(i as u64).to_be_bytes()));
            let idx = graph.insert(record.id, &[]);
            attrs.insert_attrs(idx, &record.attributes);
            attrs.insert(idx, "created_at", Value::Time(record.created_at));
            by_id.insert(record.id, i);
            records.push(record);
        }
        BigStore { records, by_id, attrs, graph, fetches: AtomicUsize::new(0) }
    }

    fn fetches(&self) -> usize {
        self.fetches.load(Ordering::Relaxed)
    }
}

impl Provider for BigStore {
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
        self.attrs.eq(attr, value)
    }
    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
        self.attrs.range(attr, low, high)
    }
    fn time_overlap(&self, _range: TimeRange) -> PostingList {
        PostingList::new()
    }
    fn keyword_lookup(&self, _phrase: &str) -> PostingList {
        PostingList::new()
    }
    fn has_attr(&self, attr: &str) -> PostingList {
        self.attrs.has_attr(attr)
    }
    fn all_nodes(&self) -> PostingList {
        PostingList::from_iter(self.records.iter().filter_map(|r| self.graph.lookup(r.id)))
    }
    fn lineage(&self, _clause: &LineageClause) -> Option<PostingList> {
        None
    }
    fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
        self.graph.lookup(id)
    }
    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let id = self.graph.resolve(idx)?;
        self.by_id.get(&id).map(|&at| self.records[at].clone())
    }
    fn created_scan(&self, desc: bool) -> Option<std::sync::Arc<[NodeIdx]>> {
        let keyed = self
            .records
            .iter()
            .filter_map(|r| self.graph.lookup(r.id).map(|idx| (r.created_at, r.id, idx)))
            .collect();
        Some(pass_query::created_order_scan(keyed, desc))
    }
}

impl QueryEngine for BigStore {
    fn open(
        &self,
        prepared: &pass_query::PreparedQuery,
    ) -> pass_query::Result<pass_query::Cursor<'_>> {
        pass_query::Cursor::over(self, prepared)
    }
}

/// The headline acceptance criterion: a `LIMIT 10` attribute query over
/// a 100k-record store fetches ≤ ~10 records.
#[test]
fn limit_10_over_100k_touches_10_records() {
    let store = BigStore::build(STORE_SIZE);
    let before = store.fetches();
    let mut cursor =
        store.open_query(&parse(r#"FIND WHERE domain = "traffic" LIMIT 10"#).unwrap()).unwrap();
    let got: Vec<_> = cursor.by_ref().collect();
    assert_eq!(got.len(), 10);
    let stats = cursor.stats();
    assert_eq!(stats.candidates_scanned, 10, "pushdown must stop at the limit");
    assert_eq!(stats.returned, 10);
    assert!(
        store.fetches() - before <= 10,
        "fetched {} records for a LIMIT 10 query",
        store.fetches() - before
    );
}

/// Limit pushdown holds through a lazy conjunction too.
#[test]
fn conjunctive_limit_is_bounded() {
    let store = BigStore::build(STORE_SIZE);
    let before = store.fetches();
    let query = parse(r#"FIND WHERE domain = "traffic" AND zone = 0 LIMIT 5"#).unwrap();
    let mut cursor = store.open_query(&query).unwrap();
    let got: Vec<_> = cursor.by_ref().collect();
    assert_eq!(got.len(), 5);
    assert_eq!(cursor.stats().candidates_scanned, 5);
    assert!(store.fetches() - before <= 5);
}

/// ORDER BY + LIMIT over the whole store streams from the created-order
/// scan instead of fetching everything.
#[test]
fn order_by_limit_is_bounded() {
    let store = BigStore::build(STORE_SIZE);
    let before = store.fetches();
    let got: Vec<_> =
        store.open_query(&parse("FIND ORDER BY created DESC LIMIT 10").unwrap()).unwrap().collect();
    assert_eq!(got.len(), 10);
    assert_eq!(got[0].created_at, Timestamp((STORE_SIZE - 1) as u64), "newest first");
    assert!(
        store.fetches() - before <= 10,
        "ordered pushdown fetched {} records",
        store.fetches() - before
    );
}

/// Keyset paging walks the store in bounded steps, and the concatenated
/// pages equal the one-shot result.
#[test]
fn keyset_pages_are_bounded_and_lossless() {
    let store = BigStore::build(10_000);
    let full: Vec<TupleSetId> = store
        .open_query(&parse(r#"FIND WHERE zone = 3"#).unwrap())
        .unwrap()
        .map(|r| r.id)
        .collect();
    assert!(!full.is_empty());

    let mut paged = Vec::new();
    let mut after: Option<TupleSetId> = None;
    loop {
        let mut q = parse(r#"FIND WHERE zone = 3 LIMIT 37"#).unwrap();
        q.after = after;
        let before = store.fetches();
        let page: Vec<TupleSetId> = store.open_query(&q).unwrap().map(|r| r.id).collect();
        assert!(store.fetches() - before <= 37, "page fetches stay bounded");
        if page.is_empty() {
            break;
        }
        after = Some(*page.last().unwrap());
        paged.extend(page);
    }
    assert_eq!(full, paged);
}

/// `execute()` (the compatibility wrapper) returns byte-identical
/// records to draining the cursor.
#[test]
fn execute_equals_cursor_drain_on_big_store() {
    let store = BigStore::build(10_000);
    for text in [
        r#"FIND WHERE zone = 9"#,
        r#"FIND WHERE domain = "weather" AND zone = 11 ORDER BY created DESC"#,
        r#"FIND WHERE zone = 9 LIMIT 17"#,
    ] {
        let query = parse(text).unwrap();
        let executed = pass_query::execute(&query, &store).unwrap().records;
        let drained: Vec<_> = store.open_query(&query).unwrap().collect();
        assert_eq!(executed, drained, "{text}");
    }
}
