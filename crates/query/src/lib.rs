//! # pass-query — the PASS provenance query layer
//!
//! §III surveys three workloads (document versioning, scientific
//! repositories, sensor/EMT operations) and distills a common shape:
//! attribute predicates, text search over annotations, time-window
//! overlap, and — pervasively — transitive lineage traversal. This crate
//! provides:
//!
//! * [`ast`] — the query model: [`Predicate`], [`LineageClause`],
//!   [`Query`], with ground-truth evaluation ([`Predicate::matches`]).
//! * [`parser`] — a small textual language:
//!   `FIND ANCESTORS OF ts:3f2a DEPTH <= 4 WHERE tool.name = "sharpen"`.
//! * [`mod@plan`] — superset-plus-residual planning onto index expressions.
//! * [`exec`] — execution against any [`Provider`] (local store, remote
//!   proxy, test fixture).
//!
//! The executor's contract is checked two ways: residual predicates are
//! re-evaluated with the same `matches` function that defines semantics,
//! and the test suite compares executor output against brute-force
//! filtering on every fixture.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{CmpOp, LineageClause, OrderBy, Predicate, Query};
pub use error::{QueryError, Result};
pub use exec::{execute, execute_plan, execute_text, ExecStats, Provider, QueryResult};
pub use parser::{parse, parse_predicate};
pub use plan::{plan, IndexExpr, Plan, PlanSource};
