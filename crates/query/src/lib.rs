//! # pass-query — the PASS provenance query layer
//!
//! §III surveys three workloads (document versioning, scientific
//! repositories, sensor/EMT operations) and distills a common shape:
//! attribute predicates, text search over annotations, time-window
//! overlap, and — pervasively — transitive lineage traversal. This crate
//! provides:
//!
//! * [`ast`] — the query model: [`Predicate`], [`LineageClause`],
//!   [`Query`], with ground-truth evaluation ([`Predicate::matches`]).
//! * [`parser`] — the textual language (reference below).
//! * [`mod@plan`] — superset-plus-residual planning onto index expressions.
//! * [`exec`] — streaming execution against any [`Provider`] (local
//!   store, remote proxy, test fixture): [`prepare`] plans once,
//!   [`QueryEngine::open`] yields a pull-based [`Cursor`], and
//!   [`execute`] remains as a collect-the-cursor compatibility wrapper.
//!
//! The executor's contract is checked two ways: residual predicates are
//! re-evaluated with the same `matches` function that defines semantics,
//! and the test suite compares executor output against brute-force
//! filtering on every fixture.
//!
//! # Query language reference
//!
//! Keywords are case-insensitive; attribute names are case-sensitive
//! identifiers (dots allowed: `tool.name`, `sensor.type`).
//!
//! ```text
//! statement  := query | subscribe
//! query      := FIND [lineage] [WHERE pred]
//!               [ORDER BY created (ASC|DESC)] [LIMIT n] [AFTER id]
//! subscribe  := SUBSCRIBE query
//!             | WATCH DESCENDANTS OF id [DEPTH <= n] [ABSTRACTED]
//!               [WITH SELF] [WHERE pred]
//! lineage    := (ANCESTORS | DESCENDANTS) OF id
//!               [DEPTH <= n] [ABSTRACTED] [WITH SELF]
//! pred       := or_pred
//! or_pred    := and_pred (OR and_pred)*
//! and_pred   := unary (AND unary)*
//! unary      := NOT unary | '(' pred ')' | leaf
//! leaf       := TRUE
//!             | ident (= | != | < | <= | > | >=) value
//!             | ident BETWEEN value AND value
//!             | HAS ident
//!             | ANNOTATION CONTAINS string
//!             | time OVERLAPS '[' int ',' int ']'
//! value      := string | int | float | @millis | TRUE | FALSE | NULL
//! id         := ts:HEX
//! ```
//!
//! ## Clauses
//!
//! * **`WHERE`** — attribute predicates (`=`, `!=`, `<`, `<=`, `>`,
//!   `>=`, `BETWEEN`), presence (`HAS attr`), keyword search
//!   (`ANNOTATION CONTAINS "phrase"`, matched against annotations and
//!   the record description), and time-window overlap
//!   (`time OVERLAPS [a, b]`). `AND` binds tighter than `OR`;
//!   parentheses override.
//! * **`ANCESTORS OF` / `DESCENDANTS OF`** — scope results to the
//!   lineage closure of a tuple set. `DEPTH <= n` bounds hops,
//!   `ABSTRACTED` stops at abstraction boundaries, `WITH SELF` includes
//!   the root.
//! * **`ORDER BY created [ASC|DESC]`** — order by creation time, ties
//!   broken by tuple set id. Without it, results come in storage
//!   (dense-index) order.
//! * **`LIMIT n`** — cap the result set. The executor pushes the limit
//!   into the candidate stream: a `LIMIT 10` query touches ~10 records,
//!   not the whole match set.
//! * **`AFTER ts:HEX`** — keyset pagination: resume strictly after that
//!   tuple set's position in the result order. The token marks a
//!   *position*, so it works even when the named record does not match
//!   the filter; concatenating `LIMIT k AFTER <last id of page>` pages
//!   reproduces the unpaged result exactly. Unknown tokens are an error.
//! * **`SUBSCRIBE query`** — the continuous form of any query: the
//!   consumer first receives a *catch-up* phase whose output is
//!   byte-identical to executing the query one-shot (so `ORDER BY`,
//!   `LIMIT`, and `AFTER` shape the catch-up exactly as they shape
//!   `execute`), then *tails* live commits, receiving every subsequent
//!   record that satisfies the filter — exactly once, in commit order.
//!   A `DESCENDANTS OF` scope is maintained incrementally in the tail;
//!   `ANCESTORS OF` scopes are rejected at subscribe time (ancestor
//!   closures of a fixed root do not grow with new commits).
//! * **`WATCH DESCENDANTS OF id`** — sugar for subscribing to
//!   `FIND DESCENDANTS OF id`: fire when a record derives, transitively,
//!   from the root. Takes the same lineage modifiers plus an optional
//!   `WHERE` filter.
//!
//! ## Pseudo-attributes
//!
//! Indexed at ingest like real attributes: `origin.site` (producing
//! site id), `created_at` (creation timestamp), `ancestry.parents`
//! (direct parent count), and the multi-valued `tool.name` /
//! `tool.version` (one per derivation; equality means "some derivation
//! used it").
//!
//! ## Examples
//!
//! ```
//! use pass_query::{parse, OrderBy, Predicate};
//!
//! let q = parse(r#"FIND WHERE domain = "traffic" AND count >= 10 LIMIT 5"#).unwrap();
//! assert_eq!(q.limit, Some(5));
//! assert!(matches!(q.filter, Predicate::And(_)));
//!
//! let q = parse("FIND ANCESTORS OF ts:3f2a DEPTH <= 4 ABSTRACTED").unwrap();
//! let lineage = q.lineage.unwrap();
//! assert_eq!(lineage.max_depth, Some(4));
//! assert!(lineage.stop_at_abstraction);
//!
//! // Keyset pagination: page 2 of the newest-first listing.
//! let q = parse("FIND ORDER BY created DESC LIMIT 10 AFTER ts:3f2a").unwrap();
//! assert_eq!(q.order, OrderBy::CreatedDesc);
//! assert!(q.after.is_some());
//! ```
//!
//! Subscriptions parse with [`parse_subscribe`]; `WATCH` is sugar over a
//! descendants query:
//!
//! ```
//! use pass_query::{parse_subscribe, Predicate};
//! use pass_index::Direction;
//!
//! let s = parse_subscribe(r#"SUBSCRIBE FIND WHERE domain = "volcano""#).unwrap();
//! assert_eq!(s.query.filter, Predicate::Eq("domain".into(), "volcano".into()));
//!
//! let w = parse_subscribe(r#"WATCH DESCENDANTS OF ts:3f2a DEPTH <= 4"#).unwrap();
//! let lineage = w.query.lineage.unwrap();
//! assert_eq!(lineage.direction, Direction::Descendants);
//! assert_eq!(lineage.max_depth, Some(4));
//! ```
//!
//! Plans render for EXPLAIN-style inspection:
//!
//! ```
//! use pass_query::{parse, prepare};
//!
//! let prepared = prepare(&parse(r#"FIND WHERE region = "london" LIMIT 3"#).unwrap());
//! let text = prepared.explain();
//! assert!(text.contains("ix:region"), "{text}");
//! assert!(text.contains("limit 3"), "{text}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{CmpOp, LineageClause, OrderBy, Predicate, Query, Subscribe};
pub use error::{QueryError, Result};
pub use exec::{
    created_order_scan, execute, execute_plan, execute_text, prepare, Cursor, ExecStats,
    PreparedQuery, Provider, QueryEngine, QueryResult,
};
pub use parser::{parse, parse_predicate, parse_subscribe};
pub use plan::{plan, IndexExpr, Plan, PlanSource};
