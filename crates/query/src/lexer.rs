//! Tokenizer for the PASS query language.

use crate::error::{QueryError, Result};
use pass_model::TupleSetId;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (`domain`, `FIND`, `time.start`).
    Ident(String),
    /// Double-quoted string literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `@N` — a timestamp literal in milliseconds.
    Time(u64),
    /// `ts:HEX` — a tuple-set id literal.
    Id(TupleSetId),
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
}

impl Token {
    /// Case-insensitive keyword test for identifier tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes query text.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(QueryError::Lex { at: i, message: "expected != after !".into() });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        Some('"') => break,
                        Some('\\') => {
                            match bytes.get(j + 1) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some(&other) => s.push(other),
                                None => {
                                    return Err(QueryError::Lex {
                                        at: j,
                                        message: "dangling escape".into(),
                                    })
                                }
                            }
                            j += 2;
                        }
                        Some(&other) => {
                            s.push(other);
                            j += 1;
                        }
                        None => {
                            return Err(QueryError::Lex {
                                at: i,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
                i = j + 1;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(QueryError::Lex {
                        at: i,
                        message: "expected digits after @".into(),
                    });
                }
                let text: String = bytes[start..j].iter().collect();
                let ms = text
                    .parse::<u64>()
                    .map_err(|_| QueryError::Lex { at: i, message: "timestamp overflow".into() })?;
                tokens.push(Token::Time(ms));
                i = j;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                let mut j = i;
                if bytes[j] == '-' {
                    j += 1;
                }
                let mut is_float = false;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == '.') {
                    if bytes[j] == '.' {
                        // Two dots (e.g. ranges) end the number.
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                if text == "-" {
                    return Err(QueryError::Lex { at: i, message: "lone minus sign".into() });
                }
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| QueryError::Lex {
                        at: start,
                        message: format!("bad float {text}"),
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| QueryError::Lex {
                        at: start,
                        message: format!("bad integer {text}"),
                    })?;
                    tokens.push(Token::Int(v));
                }
                i = j;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                // `ts:HEX` id literal.
                if text == "ts" && bytes.get(j) == Some(&':') {
                    let hstart = j + 1;
                    let mut k = hstart;
                    while k < bytes.len() && bytes[k].is_ascii_hexdigit() {
                        k += 1;
                    }
                    let hex: String = bytes[hstart..k].iter().collect();
                    let id = TupleSetId::parse_hex(&hex).ok_or_else(|| QueryError::Lex {
                        at: start,
                        message: format!("bad tuple set id ts:{hex}"),
                    })?;
                    tokens.push(Token::Id(id));
                    i = k;
                } else {
                    tokens.push(Token::Ident(text));
                    i = j;
                }
            }
            other => {
                return Err(QueryError::Lex {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let toks = lex(r#"FIND WHERE domain = "traffic" AND count >= 10 LIMIT 5"#).unwrap();
        assert_eq!(toks.len(), 11);
        assert!(toks[0].is_kw("find"));
        assert_eq!(toks[3], Token::Eq);
        assert_eq!(toks[4], Token::Str("traffic".into()));
        assert_eq!(toks[7], Token::Ge);
        assert_eq!(toks[8], Token::Int(10));
    }

    #[test]
    fn lexes_numbers_times_and_ids() {
        let toks = lex("42 -7 2.5 @1500 ts:00ff").unwrap();
        assert_eq!(toks[0], Token::Int(42));
        assert_eq!(toks[1], Token::Int(-7));
        assert_eq!(toks[2], Token::Float(2.5));
        assert_eq!(toks[3], Token::Time(1500));
        assert!(matches!(toks[4], Token::Id(_)));
    }

    #[test]
    fn lexes_dotted_identifiers() {
        let toks = lex("time.start sensor.type").unwrap();
        assert_eq!(toks[0], Token::Ident("time.start".into()));
        assert_eq!(toks[1], Token::Ident("sensor.type".into()));
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#""a \"quoted\" value""#).unwrap();
        assert_eq!(toks[0], Token::Str(r#"a "quoted" value"#.into()));
    }

    #[test]
    fn lex_errors_are_reported() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("@nope").is_err());
        assert!(lex("ts:zz").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn brackets_and_commas() {
        let toks = lex("[100, 200]").unwrap();
        assert_eq!(
            toks,
            vec![Token::LBracket, Token::Int(100), Token::Comma, Token::Int(200), Token::RBracket]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("find WHERE AnD").unwrap();
        assert!(toks[0].is_kw("FIND"));
        assert!(toks[1].is_kw("where"));
        assert!(toks[2].is_kw("and"));
    }
}
