//! Query-layer errors.

use std::fmt;

/// Errors raised while parsing or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text failed to lex.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// Description of the problem.
        message: String,
    },
    /// The token stream failed to parse.
    Parse {
        /// Roughly which token position failed.
        at: usize,
        /// What the parser expected.
        message: String,
    },
    /// A lineage query referenced a tuple set this store does not know.
    UnknownTupleSet(pass_model::TupleSetId),
    /// The execution provider reported a failure.
    Provider(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { at, message } => write!(f, "lex error at byte {at}: {message}"),
            QueryError::Parse { at, message } => write!(f, "parse error at token {at}: {message}"),
            QueryError::UnknownTupleSet(id) => write!(f, "unknown tuple set {id}"),
            QueryError::Provider(msg) => write!(f, "provider error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;
