//! Recursive-descent parser for the PASS query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := FIND [lineage] [WHERE pred]
//!               [ORDER BY created (ASC|DESC)] [LIMIT n] [AFTER id]
//! lineage    := (ANCESTORS | DESCENDANTS) OF id [DEPTH <= n] [ABSTRACTED] [WITH SELF]
//! pred       := or_pred
//! or_pred    := and_pred (OR and_pred)*
//! and_pred   := unary (AND unary)*
//! unary      := NOT unary | '(' pred ')' | leaf
//! leaf       := TRUE
//!             | ident (= | != | < | <= | > | >=) value
//!             | ident BETWEEN value AND value
//!             | HAS ident
//!             | ANNOTATION CONTAINS string
//!             | time OVERLAPS '[' int ',' int ']'
//! value      := string | int | float | @millis | TRUE | FALSE
//! id         := ts:HEX
//! ```
//!
//! Examples:
//!
//! ```text
//! FIND WHERE domain = "traffic" AND count >= 10 LIMIT 5
//! FIND ANCESTORS OF ts:3f2a DEPTH <= 4 WHERE tool.name = "sharpen"
//! FIND WHERE time OVERLAPS [100, 2000] OR HAS patient
//! FIND ORDER BY created DESC LIMIT 10 AFTER ts:3f2a
//! ```

use crate::ast::{CmpOp, LineageClause, OrderBy, Predicate, Query, Subscribe};
use crate::error::{QueryError, Result};
use crate::lexer::{lex, Token};
use pass_index::Direction;
use pass_model::{TimeRange, Timestamp, Value};

/// Parses query text into a [`Query`].
pub fn parse(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(q)
}

/// Parses a subscription statement:
///
/// ```text
/// subscribe := SUBSCRIBE query
///            | WATCH DESCENDANTS OF id [DEPTH <= n] [ABSTRACTED]
///              [WITH SELF] [WHERE pred]
/// ```
///
/// `SUBSCRIBE` wraps any query; `WATCH DESCENDANTS OF id` is sugar for
/// subscribing to `FIND DESCENDANTS OF id` — the live-taint shape.
/// `WATCH ANCESTORS` is rejected: new commits extend lineage downward,
/// so only descendant closures grow incrementally.
pub fn parse_subscribe(input: &str) -> Result<Subscribe> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let sub = p.subscribe()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(sub)
}

/// Parses just a predicate (handy for tests and embedding).
pub fn parse_predicate(input: &str) -> Result<Predicate> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let pred = p.or_pred()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(pred)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn subscribe(&mut self) -> Result<Subscribe> {
        if self.eat_kw("SUBSCRIBE") {
            return Ok(Subscribe::of(self.query()?));
        }
        self.expect_kw("WATCH")?;
        if !self.peek().is_some_and(|t| t.is_kw("DESCENDANTS")) {
            return Err(self.err("WATCH takes DESCENDANTS OF (ancestor closures do not grow)"));
        }
        let lineage = self.lineage()?;
        let filter = if self.eat_kw("WHERE") { self.or_pred()? } else { Predicate::True };
        Ok(Subscribe::of(Query {
            filter,
            lineage: Some(lineage),
            limit: None,
            order: OrderBy::None,
            after: None,
        }))
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("FIND")?;

        let lineage = if self.peek().is_some_and(|t| t.is_kw("ANCESTORS") || t.is_kw("DESCENDANTS"))
        {
            Some(self.lineage()?)
        } else {
            None
        };

        let filter = if self.eat_kw("WHERE") { self.or_pred()? } else { Predicate::True };

        let mut order = OrderBy::None;
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            self.expect_kw("created")?;
            order = if self.eat_kw("DESC") {
                OrderBy::CreatedDesc
            } else {
                // ASC is optional and the default.
                let _ = self.eat_kw("ASC");
                OrderBy::CreatedAsc
            };
        }

        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };

        let after = if self.eat_kw("AFTER") {
            match self.next() {
                Some(Token::Id(id)) => Some(id),
                _ => return Err(self.err("expected ts:HEX tuple set id after AFTER")),
            }
        } else {
            None
        };

        Ok(Query { filter, lineage, limit, order, after })
    }

    fn lineage(&mut self) -> Result<LineageClause> {
        let direction = if self.eat_kw("ANCESTORS") {
            Direction::Ancestors
        } else {
            self.expect_kw("DESCENDANTS")?;
            Direction::Descendants
        };
        self.expect_kw("OF")?;
        let root = match self.next() {
            Some(Token::Id(id)) => id,
            _ => return Err(self.err("expected ts:HEX tuple set id after OF")),
        };
        let mut clause = LineageClause {
            root,
            direction,
            max_depth: None,
            stop_at_abstraction: false,
            include_root: false,
        };
        loop {
            if self.eat_kw("DEPTH") {
                self.expect(&Token::Le, "<= after DEPTH")?;
                match self.next() {
                    Some(Token::Int(n)) if n >= 0 => clause.max_depth = Some(n as u32),
                    _ => return Err(self.err("expected non-negative integer depth")),
                }
            } else if self.eat_kw("ABSTRACTED") {
                clause.stop_at_abstraction = true;
            } else if self.eat_kw("WITH") {
                self.expect_kw("SELF")?;
                clause.include_root = true;
            } else {
                break;
            }
        }
        Ok(clause)
    }

    pub(crate) fn or_pred(&mut self) -> Result<Predicate> {
        let mut branches = vec![self.and_pred()?];
        while self.eat_kw("OR") {
            branches.push(self.and_pred()?);
        }
        Ok(if branches.len() == 1 {
            branches.into_iter().next().expect("one branch")
        } else {
            Predicate::Or(branches)
        })
    }

    fn and_pred(&mut self) -> Result<Predicate> {
        let mut branches = vec![self.unary()?];
        while self.eat_kw("AND") {
            branches.push(self.unary()?);
        }
        Ok(Predicate::and(branches))
    }

    fn unary(&mut self) -> Result<Predicate> {
        if self.eat_kw("NOT") {
            return Ok(Predicate::Not(Box::new(self.unary()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let inner = self.or_pred()?;
            self.expect(&Token::RParen, "closing parenthesis")?;
            return Ok(inner);
        }
        self.leaf()
    }

    fn leaf(&mut self) -> Result<Predicate> {
        if self.eat_kw("TRUE") {
            return Ok(Predicate::True);
        }
        if self.eat_kw("HAS") {
            match self.next() {
                Some(Token::Ident(attr)) => return Ok(Predicate::HasAttr(attr)),
                _ => return Err(self.err("expected attribute name after HAS")),
            }
        }
        if self.eat_kw("ANNOTATION") {
            self.expect_kw("CONTAINS")?;
            match self.next() {
                Some(Token::Str(phrase)) => return Ok(Predicate::TextContains(phrase)),
                _ => return Err(self.err("expected string after CONTAINS")),
            }
        }
        let attr = match self.next() {
            Some(Token::Ident(name)) => name,
            _ => return Err(self.err("expected attribute name")),
        };
        // `time OVERLAPS [a, b]`.
        if attr.eq_ignore_ascii_case("time") && self.eat_kw("OVERLAPS") {
            self.expect(&Token::LBracket, "[ after OVERLAPS")?;
            let a = self.time_point()?;
            self.expect(&Token::Comma, "comma in time range")?;
            let b = self.time_point()?;
            self.expect(&Token::RBracket, "] closing time range")?;
            return Ok(Predicate::TimeOverlaps(TimeRange::new(a, b)));
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.value()?;
            self.expect_kw("AND")?;
            let hi = self.value()?;
            return Ok(Predicate::Between(attr, lo, hi));
        }
        let op = match self.next() {
            Some(Token::Eq) => None,
            Some(Token::Ne) => {
                let v = self.value()?;
                return Ok(Predicate::Ne(attr, v));
            }
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => return Err(self.err(format!("expected comparison operator after {attr}"))),
        };
        let v = self.value()?;
        Ok(match op {
            None => Predicate::Eq(attr, v),
            Some(op) => Predicate::Cmp(attr, op, v),
        })
    }

    fn time_point(&mut self) -> Result<Timestamp> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(Timestamp(n as u64)),
            Some(Token::Time(ms)) => Ok(Timestamp(ms)),
            _ => Err(self.err("expected timestamp (integer milliseconds or @millis)")),
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Int(n)) => Ok(Value::Int(n)),
            Some(Token::Float(x)) => Ok(Value::Float(x)),
            Some(Token::Time(ms)) => Ok(Value::Time(Timestamp(ms))),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            _ => Err(self.err("expected a value literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::TupleSetId;

    #[test]
    fn simple_filter_query() {
        let q = parse(r#"FIND WHERE domain = "traffic" AND count >= 10 LIMIT 5"#).unwrap();
        assert_eq!(q.limit, Some(5));
        assert_eq!(
            q.filter,
            Predicate::And(vec![
                Predicate::Eq("domain".into(), "traffic".into()),
                Predicate::Cmp("count".into(), CmpOp::Ge, Value::Int(10)),
            ])
        );
        assert!(q.lineage.is_none());
    }

    #[test]
    fn lineage_query_with_modifiers() {
        let q =
            parse(r#"FIND ANCESTORS OF ts:3f2a DEPTH <= 4 ABSTRACTED WHERE tool.name = "sharpen""#)
                .unwrap();
        let l = q.lineage.unwrap();
        assert_eq!(l.direction, Direction::Ancestors);
        assert_eq!(l.max_depth, Some(4));
        assert!(l.stop_at_abstraction);
        assert!(!l.include_root);
        assert_eq!(l.root, TupleSetId::parse_hex("3f2a").unwrap());
        assert_eq!(q.filter, Predicate::Eq("tool.name".into(), "sharpen".into()));
    }

    #[test]
    fn descendants_with_self() {
        let q = parse("FIND DESCENDANTS OF ts:ff WITH SELF").unwrap();
        let l = q.lineage.unwrap();
        assert_eq!(l.direction, Direction::Descendants);
        assert!(l.include_root);
        assert_eq!(q.filter, Predicate::True);
    }

    #[test]
    fn time_overlap_and_or_precedence() {
        let q =
            parse(r#"FIND WHERE time OVERLAPS [100, 2000] OR HAS patient AND domain = "medical""#)
                .unwrap();
        // AND binds tighter than OR.
        match q.filter {
            Predicate::Or(branches) => {
                assert_eq!(branches.len(), 2);
                assert!(matches!(branches[0], Predicate::TimeOverlaps(_)));
                assert!(matches!(&branches[1], Predicate::And(inner) if inner.len() == 2));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let q = parse(r#"FIND WHERE (a = 1 OR b = 2) AND c = 3"#).unwrap();
        match q.filter {
            Predicate::And(branches) => {
                assert!(matches!(branches[0], Predicate::Or(_)));
                assert_eq!(branches[1], Predicate::Eq("c".into(), Value::Int(3)));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn not_between_annotation() {
        let p = parse_predicate(r#"NOT count BETWEEN 5 AND 10 AND ANNOTATION CONTAINS "replaced""#)
            .unwrap();
        match p {
            Predicate::And(branches) => {
                assert!(matches!(branches[0], Predicate::Not(_)));
                assert_eq!(branches[1], Predicate::TextContains("replaced".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_forms() {
        assert_eq!(parse("FIND ORDER BY created").unwrap().order, OrderBy::CreatedAsc);
        assert_eq!(parse("FIND ORDER BY created ASC").unwrap().order, OrderBy::CreatedAsc);
        assert_eq!(parse("FIND ORDER BY created DESC").unwrap().order, OrderBy::CreatedDesc);
    }

    #[test]
    fn value_literals() {
        let p =
            parse_predicate("a = true AND b = false AND c = null AND d = 2.5 AND e = @99").unwrap();
        match p {
            Predicate::And(bs) => {
                assert_eq!(bs[0], Predicate::Eq("a".into(), Value::Bool(true)));
                assert_eq!(bs[1], Predicate::Eq("b".into(), Value::Bool(false)));
                assert_eq!(bs[2], Predicate::Eq("c".into(), Value::Null));
                assert_eq!(bs[3], Predicate::Eq("d".into(), Value::Float(2.5)));
                assert_eq!(bs[4], Predicate::Eq("e".into(), Value::Time(Timestamp(99))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse("WHERE a = 1").is_err(), "missing FIND");
        assert!(parse("FIND WHERE a").is_err(), "missing operator");
        assert!(parse("FIND WHERE a = ").is_err(), "missing value");
        assert!(parse("FIND ANCESTORS OF nope").is_err(), "bad id literal");
        assert!(parse("FIND LIMIT -3").is_err(), "negative limit");
        assert!(parse("FIND WHERE a = 1 garbage").is_err(), "trailing tokens");
        assert!(parse("FIND WHERE (a = 1").is_err(), "unclosed paren");
        assert!(parse("FIND AFTER").is_err(), "missing AFTER token");
        assert!(parse("FIND AFTER 12").is_err(), "AFTER needs a ts:HEX id");
        assert!(parse("FIND AFTER ts:aa LIMIT 2").is_err(), "AFTER comes after LIMIT");
    }

    #[test]
    fn after_keyset_token() {
        let q = parse("FIND LIMIT 10 AFTER ts:3f2a").unwrap();
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.after, Some(TupleSetId::parse_hex("3f2a").unwrap()));
        let q =
            parse(r#"FIND WHERE domain = "x" ORDER BY created DESC LIMIT 4 AFTER ts:ff"#).unwrap();
        assert_eq!(q.order, OrderBy::CreatedDesc);
        assert_eq!(q.after, Some(TupleSetId::parse_hex("ff").unwrap()));
        // AFTER works without LIMIT (resume-and-drain).
        let q = parse("FIND AFTER ts:01").unwrap();
        assert_eq!(q.limit, None);
        assert!(q.after.is_some());
    }

    #[test]
    fn subscribe_wraps_any_query() {
        let s = parse_subscribe(r#"SUBSCRIBE FIND WHERE domain = "traffic" LIMIT 5"#).unwrap();
        assert_eq!(s.query, parse(r#"FIND WHERE domain = "traffic" LIMIT 5"#).unwrap());
        let s = parse_subscribe("SUBSCRIBE FIND DESCENDANTS OF ts:3f2a WITH SELF").unwrap();
        assert!(s.query.lineage.is_some());
    }

    #[test]
    fn watch_sugar_is_a_descendants_query() {
        let s = parse_subscribe("WATCH DESCENDANTS OF ts:3f2a").unwrap();
        let l = s.query.lineage.unwrap();
        assert_eq!(l.direction, Direction::Descendants);
        assert_eq!(l.root, TupleSetId::parse_hex("3f2a").unwrap());
        assert_eq!(s.query.filter, Predicate::True);

        let s = parse_subscribe(
            r#"WATCH DESCENDANTS OF ts:ff DEPTH <= 3 ABSTRACTED WHERE domain = "volcano""#,
        )
        .unwrap();
        let l = s.query.lineage.unwrap();
        assert_eq!(l.max_depth, Some(3));
        assert!(l.stop_at_abstraction);
        assert_eq!(s.query.filter, Predicate::Eq("domain".into(), "volcano".into()));
    }

    #[test]
    fn subscribe_parse_errors() {
        assert!(parse_subscribe("FIND WHERE a = 1").is_err(), "bare query is not a subscription");
        assert!(parse_subscribe("SUBSCRIBE WHERE a = 1").is_err(), "SUBSCRIBE needs a full query");
        assert!(parse_subscribe("WATCH ANCESTORS OF ts:aa").is_err(), "ancestor watch rejected");
        assert!(parse_subscribe("WATCH DESCENDANTS OF ts:aa garbage").is_err(), "trailing tokens");
        assert!(parse("SUBSCRIBE FIND").is_err(), "parse() does not accept statements");
    }

    #[test]
    fn bare_find_matches_everything() {
        let q = parse("FIND").unwrap();
        assert_eq!(q.filter, Predicate::True);
        assert_eq!(q.limit, None);
    }
}
