//! Query execution over a provider.
//!
//! The executor is storage-agnostic: anything implementing [`Provider`]
//! (the local PASS, a remote site proxy, a test fixture) can serve
//! queries. Execution is: evaluate the plan's index expression to a
//! candidate posting list, intersect with the lineage closure if any,
//! fetch records, re-check the residual predicate, order, and cut.

use crate::ast::{LineageClause, OrderBy, Query};
use crate::error::{QueryError, Result};
use crate::plan::{plan, IndexExpr, Plan, PlanSource};
use pass_index::{NodeIdx, PostingList};
use pass_model::{ProvenanceRecord, TimeRange, Value};
use std::ops::Bound;

/// The index/storage surface the executor runs against.
pub trait Provider {
    /// Posting list for `attr = value`.
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList;
    /// Posting list for a value range on an attribute.
    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList;
    /// Posting list of records whose time window overlaps `range`.
    fn time_overlap(&self, range: TimeRange) -> PostingList;
    /// Posting list of records whose annotations/description contain all
    /// tokens of `phrase`.
    fn keyword_lookup(&self, phrase: &str) -> PostingList;
    /// Posting list of records carrying the attribute.
    fn has_attr(&self, attr: &str) -> PostingList;
    /// Every record in the store.
    fn all_nodes(&self) -> PostingList;
    /// Lineage closure of the clause's root (excluding the root), or
    /// `None` when the root is unknown here.
    fn lineage(&self, clause: &LineageClause) -> Option<PostingList>;
    /// Dense index of a tuple set id, if present.
    fn node_of(&self, id: pass_model::TupleSetId) -> Option<NodeIdx>;
    /// Fetches the record behind a dense index.
    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord>;
}

/// Execution counters, returned with every result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Candidates produced by the index/scan phase.
    pub candidates: usize,
    /// Records actually fetched.
    pub fetched: usize,
    /// Records returned after residual filtering and limit.
    pub returned: usize,
    /// True when an index expression (not a scan) produced candidates.
    pub used_index: bool,
    /// True when no residual re-check was necessary.
    pub exact: bool,
    /// Rendered plan, for debugging and EXPLAIN tests.
    pub plan: String,
}

/// A query result: matching records plus execution counters.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Matching provenance records.
    pub records: Vec<ProvenanceRecord>,
    /// Execution counters.
    pub stats: ExecStats,
}

impl QueryResult {
    /// Ids of the matching records.
    pub fn ids(&self) -> Vec<pass_model::TupleSetId> {
        self.records.iter().map(|r| r.id).collect()
    }
}

/// Evaluates an index expression to a posting list.
pub fn eval_index_expr(expr: &IndexExpr, provider: &dyn Provider) -> PostingList {
    match expr {
        IndexExpr::All => provider.all_nodes(),
        IndexExpr::Eq { attr, value } => provider.eq_lookup(attr, value),
        IndexExpr::Range { attr, low, high } => {
            provider.range_lookup(attr, low.as_ref(), high.as_ref())
        }
        IndexExpr::TimeOverlap(range) => provider.time_overlap(*range),
        IndexExpr::Keyword(phrase) => provider.keyword_lookup(phrase),
        IndexExpr::HasAttr(attr) => provider.has_attr(attr),
        IndexExpr::And(children) => {
            let lists: Vec<PostingList> =
                children.iter().map(|c| eval_index_expr(c, provider)).collect();
            PostingList::intersect_all(lists.iter().collect())
        }
        IndexExpr::Or(children) => {
            let lists: Vec<PostingList> =
                children.iter().map(|c| eval_index_expr(c, provider)).collect();
            PostingList::union_all(lists.iter().collect())
        }
    }
}

/// Executes a parsed query.
pub fn execute(query: &Query, provider: &dyn Provider) -> Result<QueryResult> {
    execute_plan(&plan(query), provider)
}

/// Executes query text (parse + plan + run).
pub fn execute_text(text: &str, provider: &dyn Provider) -> Result<QueryResult> {
    execute(&crate::parser::parse(text)?, provider)
}

/// Executes a pre-built plan.
pub fn execute_plan(plan: &Plan, provider: &dyn Provider) -> Result<QueryResult> {
    let mut used_index = false;
    let mut candidates = match &plan.source {
        PlanSource::Index(expr) => {
            used_index = !matches!(expr, IndexExpr::All);
            eval_index_expr(expr, provider)
        }
        PlanSource::Scan => provider.all_nodes(),
    };

    if let Some(clause) = &plan.lineage {
        let mut closure =
            provider.lineage(clause).ok_or(QueryError::UnknownTupleSet(clause.root))?;
        if clause.include_root {
            if let Some(root_idx) = provider.node_of(clause.root) {
                closure.insert(root_idx);
            }
        }
        candidates = candidates.intersect(&closure);
    }

    let stats_candidates = candidates.len();
    let mut fetched = 0usize;
    let mut records: Vec<ProvenanceRecord> = Vec::new();
    let needs_recheck = !matches!(plan.residual, crate::ast::Predicate::True);
    // With no ordering and no re-check, the fetch loop can stop at LIMIT.
    let early_cut = plan.limit.filter(|_| !needs_recheck && plan.order == OrderBy::None);

    for idx in candidates.iter() {
        let Some(record) = provider.fetch(idx) else {
            // Index knows the node but the record is gone: a placeholder
            // parent (removed ancestor / remote tuple set). Skip.
            continue;
        };
        fetched += 1;
        if !needs_recheck || plan.residual.matches(&record) {
            records.push(record);
            if early_cut.is_some_and(|n| records.len() >= n) {
                break;
            }
        }
    }

    match plan.order {
        OrderBy::None => {}
        OrderBy::CreatedAsc => records.sort_by_key(|r| (r.created_at, r.id)),
        OrderBy::CreatedDesc => records.sort_by_key(|r| (std::cmp::Reverse(r.created_at), r.id)),
    }
    if let Some(limit) = plan.limit {
        records.truncate(limit);
    }

    let stats = ExecStats {
        candidates: stats_candidates,
        fetched,
        returned: records.len(),
        used_index,
        exact: !needs_recheck,
        plan: plan.explain(),
    };
    Ok(QueryResult { records, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;
    use crate::parser::parse;
    use pass_index::{
        AncestryGraph, AttrIndex, BfsClosure, KeywordIndex, ReachStrategy, TimeIndex,
    };
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor, TupleSetId};
    use std::sync::Mutex;

    /// A small in-memory provider for executor tests.
    struct FixtureProvider {
        records: Vec<ProvenanceRecord>,
        attrs: AttrIndex,
        time: Mutex<TimeIndex>,
        keywords: KeywordIndex,
        graph: AncestryGraph,
    }

    impl FixtureProvider {
        fn new(records: Vec<ProvenanceRecord>) -> Self {
            let mut attrs = AttrIndex::new();
            let mut time = TimeIndex::new();
            let mut keywords = KeywordIndex::new();
            let mut graph = AncestryGraph::new();
            for record in &records {
                let parents: Vec<(TupleSetId, bool)> =
                    record.ancestry.iter().map(|d| (d.parent, d.tool.abstracted)).collect();
                let idx = graph.insert(record.id, &parents);
                attrs.insert_attrs(idx, &record.attributes);
                for (name, value) in crate::ast::multi_valued_attrs(record) {
                    attrs.insert(idx, name, value);
                }
                if let Some(range) = record.time_range() {
                    time.insert(idx, range);
                }
                for ann in &record.annotations {
                    keywords.insert(idx, &ann.text);
                }
                if let Some(desc) = record.attributes.get_str(pass_model::keys::DESCRIPTION) {
                    keywords.insert(idx, desc);
                }
            }
            FixtureProvider { records, attrs, time: Mutex::new(time), keywords, graph }
        }
    }

    impl Provider for FixtureProvider {
        fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
            self.attrs.eq(attr, value)
        }
        fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
            self.attrs.range(attr, low, high)
        }
        fn time_overlap(&self, range: TimeRange) -> PostingList {
            self.time.lock().unwrap().overlapping(range)
        }
        fn keyword_lookup(&self, phrase: &str) -> PostingList {
            self.keywords.lookup_all(phrase)
        }
        fn has_attr(&self, attr: &str) -> PostingList {
            self.attrs.has_attr(attr)
        }
        fn all_nodes(&self) -> PostingList {
            PostingList::from_iter(self.records.iter().filter_map(|r| self.graph.lookup(r.id)))
        }
        fn lineage(&self, clause: &LineageClause) -> Option<PostingList> {
            let root = self.graph.lookup(clause.root)?;
            let reach =
                BfsClosure.reachable(&self.graph, root, clause.direction, &clause.traverse_opts());
            Some(PostingList::from_iter(reach))
        }
        fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
            self.graph.lookup(id)
        }
        fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
            let id = self.graph.resolve(idx)?;
            self.records.iter().find(|r| r.id == id).cloned()
        }
    }

    fn fixture() -> (FixtureProvider, Vec<TupleSetId>) {
        let raw = ProvenanceBuilder::new(SiteId(1), Timestamp(100))
            .attr("domain", "traffic")
            .attr("region", "london")
            .time_range(TimeRange::new(Timestamp(0), Timestamp(50)))
            .build(Digest128::of(b"raw"));
        let mid = ProvenanceBuilder::new(SiteId(1), Timestamp(200))
            .attr("domain", "traffic")
            .attr("region", "london")
            .attr("count", 10i64)
            .derived_from(raw.id, ToolDescriptor::new("dedupe", "1.0"))
            .build(Digest128::of(b"mid"));
        let leaf = ProvenanceBuilder::new(SiteId(2), Timestamp(300))
            .attr("domain", "traffic")
            .attr("region", "boston")
            .attr("count", 99i64)
            .derived_from(mid.id, ToolDescriptor::new("aggregate", "2.0"))
            .build(Digest128::of(b"leaf"));
        let other = ProvenanceBuilder::new(SiteId(3), Timestamp(150))
            .attr("domain", "weather")
            .attr("region", "london")
            .build(Digest128::of(b"other"));
        let ids = vec![raw.id, mid.id, leaf.id, other.id];
        (FixtureProvider::new(vec![raw, mid, leaf, other]), ids)
    }

    fn run(provider: &FixtureProvider, text: &str) -> QueryResult {
        execute(&parse(text).unwrap(), provider).unwrap()
    }

    #[test]
    fn eq_query_uses_index_exactly() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE domain = "weather""#);
        assert_eq!(res.ids(), vec![ids[3]]);
        assert!(res.stats.used_index);
        assert!(res.stats.exact);
        assert_eq!(res.stats.candidates, 1);
    }

    #[test]
    fn conjunction_intersects() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE domain = "traffic" AND region = "london""#);
        let mut got = res.ids();
        got.sort();
        let mut want = vec![ids[0], ids[1]];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn residual_recheck_filters_false_positives() {
        let (p, ids) = fixture();
        // Ne is not indexable: region = london serves candidates, the Ne
        // re-check drops the weather record.
        let res = run(&p, r#"FIND WHERE region = "london" AND domain != "weather""#);
        let mut got = res.ids();
        got.sort();
        let mut want = vec![ids[0], ids[1]];
        want.sort();
        assert_eq!(got, want);
        assert!(!res.stats.exact);
        assert!(res.stats.candidates > res.stats.returned);
    }

    #[test]
    fn lineage_scopes_filter() {
        let (p, ids) = fixture();
        let leaf_hex = ids[2].full_hex();
        let res = run(&p, &format!("FIND ANCESTORS OF ts:{leaf_hex}"));
        let mut got = res.ids();
        got.sort();
        let mut want = vec![ids[0], ids[1]];
        want.sort();
        assert_eq!(got, want);

        // With a filter on top.
        let res = run(&p, &format!(r#"FIND ANCESTORS OF ts:{leaf_hex} WHERE HAS count"#));
        assert_eq!(res.ids(), vec![ids[1]]);
    }

    #[test]
    fn lineage_with_self_includes_root() {
        let (p, ids) = fixture();
        let res = run(&p, &format!("FIND DESCENDANTS OF ts:{} WITH SELF", ids[0].full_hex()));
        assert_eq!(res.records.len(), 3);
    }

    #[test]
    fn unknown_lineage_root_errors() {
        let (p, _) = fixture();
        let err = execute(&parse("FIND ANCESTORS OF ts:deadbeef").unwrap(), &p).unwrap_err();
        assert!(matches!(err, QueryError::UnknownTupleSet(_)));
    }

    #[test]
    fn order_and_limit() {
        let (p, ids) = fixture();
        let res = run(&p, "FIND ORDER BY created DESC LIMIT 2");
        assert_eq!(res.ids(), vec![ids[2], ids[1]], "newest two first");
        let res = run(&p, "FIND ORDER BY created ASC LIMIT 1");
        assert_eq!(res.ids(), vec![ids[0]]);
    }

    #[test]
    fn time_overlap_query() {
        let (p, ids) = fixture();
        let res = run(&p, "FIND WHERE time OVERLAPS [40, 60]");
        assert_eq!(res.ids(), vec![ids[0]], "only the raw capture declared a window");
    }

    #[test]
    fn tool_pseudo_attribute_query() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE tool.name = "aggregate""#);
        assert_eq!(res.ids(), vec![ids[2]]);
    }

    #[test]
    fn scan_fallback_matches_ground_truth() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE NOT domain = "traffic""#);
        assert_eq!(res.ids(), vec![ids[3]]);
        assert!(!res.stats.used_index);
        // Scan considered everything.
        assert_eq!(res.stats.candidates, 4);
    }

    #[test]
    fn limit_without_order_cuts_early() {
        let (p, _) = fixture();
        let res = run(&p, r#"FIND WHERE domain = "traffic" LIMIT 1"#);
        assert_eq!(res.records.len(), 1);
        assert!(res.stats.fetched <= 2, "early cut avoids fetching all candidates");
    }

    #[test]
    fn execute_text_convenience() {
        let (p, ids) = fixture();
        let res = execute_text(r#"FIND WHERE region = "boston""#, &p).unwrap();
        assert_eq!(res.ids(), vec![ids[2]]);
        let err = execute_text("NOT A QUERY", &p);
        assert!(err.is_err());
    }

    #[test]
    fn predicate_ground_truth_agrees_with_executor_on_fixture() {
        let (p, _) = fixture();
        for text in [
            r#"FIND WHERE domain = "traffic""#,
            r#"FIND WHERE count >= 10"#,
            r#"FIND WHERE count BETWEEN 5 AND 50"#,
            r#"FIND WHERE HAS count"#,
            r#"FIND WHERE domain = "traffic" OR domain = "weather""#,
            r#"FIND WHERE time OVERLAPS [0, 1000]"#,
        ] {
            let query = parse(text).unwrap();
            let res = execute(&query, &p).unwrap();
            let want: Vec<TupleSetId> =
                p.records.iter().filter(|r| query.filter.matches(r)).map(|r| r.id).collect();
            let mut got = res.ids();
            got.sort();
            let mut want = want;
            want.sort();
            assert_eq!(got, want, "{text}");
        }
    }

    #[test]
    fn residual_predicate_true_shortcut() {
        let q = Query::filtered(Predicate::True);
        let p = plan(&q);
        assert!(p.is_exact());
    }
}
