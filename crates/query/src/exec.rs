//! Streaming query execution over a provider.
//!
//! The executor is storage-agnostic: anything implementing [`Provider`]
//! (the local PASS, a remote site proxy, a test fixture) can serve
//! queries. Execution is pull-based: [`prepare`] plans a query once,
//! [`Cursor`] (obtained from [`QueryEngine::open`] or [`Cursor::over`])
//! then yields matching records one `next()` at a time. Posting-list
//! intersection, residual predicate re-checks, and the `LIMIT`/`AFTER`
//! cut all happen per pull, so a `LIMIT 10` query over a million-record
//! store touches ~10 records instead of materializing all of them.
//!
//! [`execute`] remains as a thin collect-the-cursor compatibility
//! wrapper; its output is identical to draining the cursor.
//!
//! # What is lazy and what is not
//!
//! Index *lookups* (posting lists of ids) are materialized at open —
//! they are cheap id arrays, not records. Everything per-record is lazy:
//! the leapfrog intersection across posting lists advances one candidate
//! per pull, records are fetched and residual-checked one at a time, and
//! the cursor stops pulling the moment the limit is satisfied. Lineage
//! closures are likewise computed as id sets at open (the closure is
//! needed in full to intersect correctly); only their record fetches
//! stream. `ORDER BY` is pushed into the plan when the provider can
//! serve a creation-time-ordered scan ([`Provider::created_scan`]) and
//! the candidate source is the whole store; selective sources fall back
//! to fetch-sort-emit, which buffers on the first pull.

use crate::ast::{LineageClause, OrderBy, Predicate, Query};
use crate::error::{QueryError, Result};
use crate::plan::{plan, IndexExpr, Plan, PlanSource};
use pass_index::{NodeIdx, PostingList};
use pass_model::{ProvenanceRecord, TimeRange, Timestamp, TupleSetId, Value};
use std::ops::Bound;
use std::sync::Arc;

/// The index/storage surface the executor runs against.
pub trait Provider {
    /// Posting list for `attr = value`.
    fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList;
    /// Posting list for a value range on an attribute.
    fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList;
    /// Posting list of records whose time window overlaps `range`.
    fn time_overlap(&self, range: TimeRange) -> PostingList;
    /// Posting list of records whose annotations/description contain all
    /// tokens of `phrase`.
    fn keyword_lookup(&self, phrase: &str) -> PostingList;
    /// Posting list of records carrying the attribute.
    fn has_attr(&self, attr: &str) -> PostingList;
    /// Every record in the store.
    fn all_nodes(&self) -> PostingList;
    /// Lineage closure of the clause's root (excluding the root), or
    /// `None` when the root is unknown here.
    fn lineage(&self, clause: &LineageClause) -> Option<PostingList>;
    /// Dense index of a tuple set id, if present.
    fn node_of(&self, id: pass_model::TupleSetId) -> Option<NodeIdx>;
    /// Fetches the record behind a dense index.
    fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord>;
    /// Every record's dense index in creation-time order (ties broken by
    /// tuple set id, both ascending for `desc = false`, creation time
    /// descending with ids still ascending within a tie for
    /// `desc = true`). `None` when the provider cannot serve ordered
    /// scans; the cursor then falls back to fetch-and-sort. This is the
    /// `ORDER BY` pushdown hook: a "latest N" query over a store that
    /// implements it fetches N records, not all of them. Build the
    /// ordering with [`created_order_scan`] so it always matches the
    /// executor's sort fallback, and return a cached `Arc` when the
    /// store is immutable between commits — cursors share it without
    /// copying.
    fn created_scan(&self, desc: bool) -> Option<Arc<[NodeIdx]>> {
        let _ = desc;
        None
    }
}

/// Builds the [`Provider::created_scan`] ordering from
/// `(created_at, id, dense index)` triples: creation time then id, ids
/// ascending within a tie even when `desc` reverses the time order.
/// Providers implement `created_scan` with this one function so their
/// order can never diverge from the executor's sort fallback (which
/// sorts records by the same key).
pub fn created_order_scan(
    mut entries: Vec<(Timestamp, TupleSetId, NodeIdx)>,
    desc: bool,
) -> Arc<[NodeIdx]> {
    entries.sort_unstable_by_key(|(t, id, _)| {
        (if desc { -i128::from(t.0) } else { i128::from(t.0) }, *id)
    });
    entries.into_iter().map(|(_, _, idx)| idx).collect()
}

/// Execution counters, surfaced from the cursor and returned with every
/// collected result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Candidates consumed from the index/scan stream. Under `LIMIT`
    /// pushdown this stays near the limit; once a cursor is fully
    /// drained it equals the total candidate count.
    pub candidates_scanned: usize,
    /// Records actually fetched.
    pub fetched: usize,
    /// Fetched records rejected by the residual predicate re-check.
    pub residual_rejected: usize,
    /// Records returned after residual filtering and limit.
    pub returned: usize,
    /// True when an index expression (not a scan) produced candidates.
    pub used_index: bool,
    /// True when no residual re-check was necessary.
    pub exact: bool,
    /// Rendered plan, for debugging and EXPLAIN tests.
    pub plan: String,
}

/// A query result: matching records plus execution counters.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Matching provenance records.
    pub records: Vec<ProvenanceRecord>,
    /// Execution counters.
    pub stats: ExecStats,
}

impl QueryResult {
    /// Ids of the matching records.
    pub fn ids(&self) -> Vec<pass_model::TupleSetId> {
        self.records.iter().map(|r| r.id).collect()
    }
}

/// A planned query, ready to open cursors against any provider.
///
/// Produced by [`prepare`] (or [`QueryEngine::prepare`]); immutable and
/// reusable — open as many cursors from one prepared query as you like.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    plan: Plan,
}

impl PreparedQuery {
    /// Plans `query`.
    pub fn new(query: &Query) -> Self {
        PreparedQuery { plan: plan(query) }
    }

    /// From an already-built plan.
    pub fn from_plan(plan: Plan) -> Self {
        PreparedQuery { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        self.plan.explain()
    }
}

/// Plans a query (the first half of the streaming API).
pub fn prepare(query: &Query) -> PreparedQuery {
    PreparedQuery::new(query)
}

/// The streaming query surface: plan once, then open pull-based cursors.
///
/// Implementations decide what state a cursor pins: `Snapshot` cursors
/// borrow the snapshot (already immutable), `Pass` cursors take their
/// own snapshot at open so they stay valid — and repeatable — under
/// concurrent ingest.
pub trait QueryEngine {
    /// Plans a query for this engine.
    fn prepare(&self, query: &Query) -> PreparedQuery {
        PreparedQuery::new(query)
    }

    /// Opens a cursor over a prepared query.
    ///
    /// Fails fast on plan-level problems (unknown lineage root, unknown
    /// `AFTER` token); iteration itself is infallible.
    fn open(&self, prepared: &PreparedQuery) -> Result<Cursor<'_>>;

    /// Convenience: prepare + open in one call.
    fn open_query(&self, query: &Query) -> Result<Cursor<'_>> {
        self.open(&self.prepare(query))
    }

    /// Convenience: parse + prepare + open in one call.
    fn open_text(&self, text: &str) -> Result<Cursor<'_>> {
        self.open_query(&crate::parser::parse(text)?)
    }
}

/// Evaluates an index expression to a posting list.
pub fn eval_index_expr(expr: &IndexExpr, provider: &dyn Provider) -> PostingList {
    match expr {
        IndexExpr::All => provider.all_nodes(),
        IndexExpr::Eq { attr, value } => provider.eq_lookup(attr, value),
        IndexExpr::Range { attr, low, high } => {
            provider.range_lookup(attr, low.as_ref(), high.as_ref())
        }
        IndexExpr::TimeOverlap(range) => provider.time_overlap(*range),
        IndexExpr::Keyword(phrase) => provider.keyword_lookup(phrase),
        IndexExpr::HasAttr(attr) => provider.has_attr(attr),
        IndexExpr::And(children) => {
            let lists: Vec<PostingList> =
                children.iter().map(|c| eval_index_expr(c, provider)).collect();
            PostingList::intersect_all(lists.iter().collect())
        }
        IndexExpr::Or(children) => {
            let lists: Vec<PostingList> =
                children.iter().map(|c| eval_index_expr(c, provider)).collect();
            PostingList::union_all(lists.iter().collect())
        }
    }
}

/// How the cursor holds its provider: borrowed for engines whose state
/// is already immutable, owned for engines that pin a snapshot per
/// cursor.
enum ProviderHandle<'a> {
    Borrowed(&'a dyn Provider),
    Owned(Box<dyn Provider + 'a>),
}

impl ProviderHandle<'_> {
    fn get(&self) -> &dyn Provider {
        match self {
            ProviderHandle::Borrowed(p) => *p,
            ProviderHandle::Owned(p) => p.as_ref(),
        }
    }
}

/// Index of the first element `>= x` in `sorted[from..]`, by exponential
/// (galloping) search — the leapfrog-intersection advance step.
fn gallop_to(sorted: &[NodeIdx], from: usize, x: NodeIdx) -> usize {
    if from >= sorted.len() || sorted[from] >= x {
        return from;
    }
    let mut step = 1usize;
    let mut lo = from;
    let mut hi = from + 1;
    while hi < sorted.len() && sorted[hi] < x {
        lo = hi;
        step *= 2;
        hi += step;
    }
    let end = hi.min(sorted.len());
    lo + 1 + sorted[lo + 1..end].partition_point(|&y| y < x)
}

/// A lazily-consumed candidate source.
enum CandidateStream {
    /// One id list, consumed front to back. Covers single lookups,
    /// scans, and eagerly-unioned `OR`s.
    List { items: Vec<NodeIdx>, pos: usize },
    /// A shared, pre-ordered id list (the provider's cached created
    /// scan) — same consumption, no copy.
    Shared { items: Arc<[NodeIdx]>, pos: usize },
    /// Leapfrog intersection over ≥ 2 sorted lists: one candidate is
    /// matched per pull, galloping in each list, so intersection work is
    /// proportional to what the cursor consumes.
    Leapfrog { lists: Vec<(Vec<NodeIdx>, usize)> },
}

impl CandidateStream {
    fn new(mut lists: Vec<PostingList>) -> CandidateStream {
        if lists.len() == 1 {
            let only = lists.pop().expect("one list");
            return CandidateStream::List { items: only.iter().collect(), pos: 0 };
        }
        // Cheapest list first: it drives the leapfrog.
        lists.sort_by_key(PostingList::len);
        CandidateStream::Leapfrog {
            lists: lists.into_iter().map(|l| (l.iter().collect::<Vec<_>>(), 0)).collect(),
        }
    }

    /// Advances every sub-list past `idx` (the `AFTER` seek for
    /// dense-index-ordered streams).
    fn skip_past(&mut self, idx: NodeIdx) {
        match self {
            CandidateStream::List { items, pos } => {
                *pos = gallop_to(items, *pos, idx + 1);
            }
            CandidateStream::Shared { items, pos } => {
                *pos = gallop_to(items, *pos, idx + 1);
            }
            CandidateStream::Leapfrog { lists } => {
                for (items, pos) in lists {
                    *pos = gallop_to(items, *pos, idx + 1);
                }
            }
        }
    }

    fn next(&mut self) -> Option<NodeIdx> {
        match self {
            CandidateStream::List { items, pos } => {
                let idx = *items.get(*pos)?;
                *pos += 1;
                Some(idx)
            }
            CandidateStream::Shared { items, pos } => {
                let idx = *items.get(*pos)?;
                *pos += 1;
                Some(idx)
            }
            CandidateStream::Leapfrog { lists } => {
                let (driver, rest) = lists.split_first_mut()?;
                'candidates: loop {
                    let candidate = *driver.0.get(driver.1)?;
                    for (items, pos) in rest.iter_mut() {
                        *pos = gallop_to(items, *pos, candidate);
                        match items.get(*pos) {
                            None => return None, // a list ran out: done
                            Some(&found) if found == candidate => {}
                            Some(&found) => {
                                // Mismatch: jump the driver to `found`.
                                driver.1 = gallop_to(&driver.0, driver.1, found);
                                continue 'candidates;
                            }
                        }
                    }
                    driver.1 += 1;
                    return Some(candidate);
                }
            }
        }
    }
}

/// Per-record ordering key reproducing the classic sort: creation time,
/// ties by id; `desc` reverses creation time but keeps ids ascending.
fn order_key(record: &ProvenanceRecord, desc: bool) -> (i128, TupleSetId) {
    let t = i128::from(record.created_at.0);
    (if desc { -t } else { t }, record.id)
}

enum CursorState {
    /// Stream candidates; fetch + residual-check per pull.
    Stream(CandidateStream),
    /// `ORDER BY` over a filtered source: drain, sort, and cut on the
    /// first pull, then emit from the buffer.
    SortPending { stream: CandidateStream, desc: bool, after: Option<(Timestamp, TupleSetId)> },
    /// Sorted buffer being emitted.
    Buffered(std::vec::IntoIter<ProvenanceRecord>),
}

/// A pull-based result cursor.
///
/// Yields matching [`ProvenanceRecord`]s lazily via [`Iterator`];
/// running counters are available from [`Cursor::stats`] at any point
/// (they are final once the cursor is exhausted). Dropping a cursor
/// early abandons the remaining work — that is the point.
pub struct Cursor<'a> {
    provider: ProviderHandle<'a>,
    state: CursorState,
    residual: Predicate,
    needs_recheck: bool,
    remaining: Option<usize>,
    stats: ExecStats,
}

impl<'a> Cursor<'a> {
    /// Opens a cursor over a borrowed provider. The provider must be
    /// immutable (or externally synchronized) for the cursor's lifetime;
    /// engines with mutable state should implement [`QueryEngine`] and
    /// hand the cursor an owned snapshot via [`Cursor::over_owned`].
    pub fn over(provider: &'a dyn Provider, prepared: &PreparedQuery) -> Result<Cursor<'a>> {
        Cursor::open_handle(ProviderHandle::Borrowed(provider), prepared.plan())
    }

    /// Opens a cursor that owns its provider — the snapshot-pinning
    /// variant: the boxed provider (typically an O(1) snapshot) lives
    /// exactly as long as the cursor.
    pub fn over_owned(
        provider: Box<dyn Provider + 'a>,
        prepared: &PreparedQuery,
    ) -> Result<Cursor<'a>> {
        Cursor::open_handle(ProviderHandle::Owned(provider), prepared.plan())
    }

    fn open_handle<'p>(provider: ProviderHandle<'p>, plan: &Plan) -> Result<Cursor<'p>> {
        let p = provider.get();
        let used_index = match &plan.source {
            PlanSource::Index(expr) => !matches!(expr, IndexExpr::All),
            PlanSource::Scan => false,
        };

        // Candidate sources, kept as separate lists so the intersection
        // can leapfrog lazily. A top-level AND contributes one list per
        // child; nested expressions within a child evaluate eagerly
        // (they are id-set algebra, not record work). Evaluated only by
        // the strategies that consume them — the ordered pushdown path
        // never touches the unfiltered source.
        let build_lists = || -> Result<Vec<PostingList>> {
            let mut lists: Vec<PostingList> = match &plan.source {
                PlanSource::Index(IndexExpr::And(children)) => {
                    children.iter().map(|c| eval_index_expr(c, p)).collect()
                }
                PlanSource::Index(expr) => vec![eval_index_expr(expr, p)],
                PlanSource::Scan => vec![p.all_nodes()],
            };
            if let Some(clause) = &plan.lineage {
                let mut closure =
                    p.lineage(clause).ok_or(QueryError::UnknownTupleSet(clause.root))?;
                if clause.include_root {
                    if let Some(root_idx) = p.node_of(clause.root) {
                        closure.insert(root_idx);
                    }
                }
                lists.push(closure);
            }
            Ok(lists)
        };

        let needs_recheck = !plan.is_exact();
        // Both the `All` index expression and a full scan draw
        // candidates from every record, so a created-order scan serves
        // them directly (residuals still re-check per pull).
        let whole_store =
            matches!(&plan.source, PlanSource::Index(IndexExpr::All) | PlanSource::Scan)
                && plan.lineage.is_none();

        let state = match plan.order {
            OrderBy::None => {
                let mut stream = CandidateStream::new(build_lists()?);
                if let Some(after) = plan.after {
                    let idx = p.node_of(after).ok_or(QueryError::UnknownTupleSet(after))?;
                    stream.skip_past(idx);
                }
                CursorState::Stream(stream)
            }
            OrderBy::CreatedAsc | OrderBy::CreatedDesc => {
                let desc = plan.order == OrderBy::CreatedDesc;
                let ordered = if whole_store { p.created_scan(desc) } else { None };
                match ordered {
                    // ORDER BY pushdown: the provider serves the whole
                    // store in created order, so emission is streaming
                    // and the limit cut touches ~limit records.
                    Some(ordered) => {
                        let start = match plan.after {
                            None => 0,
                            Some(after) => {
                                let idx =
                                    p.node_of(after).ok_or(QueryError::UnknownTupleSet(after))?;
                                match ordered.iter().position(|&o| o == idx) {
                                    Some(at) => at + 1,
                                    None => return Err(QueryError::UnknownTupleSet(after)),
                                }
                            }
                        };
                        CursorState::Stream(CandidateStream::Shared { items: ordered, pos: start })
                    }
                    None => {
                        let after_key = match plan.after {
                            None => None,
                            Some(after) => {
                                let idx =
                                    p.node_of(after).ok_or(QueryError::UnknownTupleSet(after))?;
                                let record =
                                    p.fetch(idx).ok_or(QueryError::UnknownTupleSet(after))?;
                                Some((record.created_at, record.id))
                            }
                        };
                        CursorState::SortPending {
                            stream: CandidateStream::new(build_lists()?),
                            desc,
                            after: after_key,
                        }
                    }
                }
            }
        };

        Ok(Cursor {
            provider,
            state,
            residual: plan.residual.clone(),
            needs_recheck,
            remaining: plan.limit,
            stats: ExecStats {
                used_index,
                exact: !needs_recheck,
                plan: plan.explain(),
                ..ExecStats::default()
            },
        })
    }

    /// Running execution counters (final once the cursor is exhausted).
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Pulls the next candidate through fetch + residual check.
    fn pull_stream(
        provider: &dyn Provider,
        stream: &mut CandidateStream,
        residual: &Predicate,
        needs_recheck: bool,
        stats: &mut ExecStats,
    ) -> Option<ProvenanceRecord> {
        loop {
            let idx = stream.next()?;
            stats.candidates_scanned += 1;
            let Some(record) = provider.fetch(idx) else {
                // Index knows the node but the record is gone: a
                // placeholder parent (removed ancestor / remote tuple
                // set). Skip.
                continue;
            };
            stats.fetched += 1;
            if needs_recheck && !residual.matches(&record) {
                stats.residual_rejected += 1;
                continue;
            }
            return Some(record);
        }
    }
}

impl Iterator for Cursor<'_> {
    type Item = ProvenanceRecord;

    fn next(&mut self) -> Option<ProvenanceRecord> {
        if self.remaining == Some(0) {
            return None;
        }
        // ORDER BY fallback: materialize the sorted buffer on first pull.
        if let CursorState::SortPending { stream, desc, after } = &mut self.state {
            let desc = *desc;
            let after = *after;
            let mut records = Vec::new();
            while let Some(record) = Cursor::pull_stream(
                self.provider.get(),
                stream,
                &self.residual,
                self.needs_recheck,
                &mut self.stats,
            ) {
                records.push(record);
            }
            records.sort_by_key(|r| order_key(r, desc));
            if let Some((t, id)) = after {
                let key = {
                    let t = i128::from(t.0);
                    (if desc { -t } else { t }, id)
                };
                let skip = records.partition_point(|r| order_key(r, desc) <= key);
                records.drain(..skip);
            }
            self.state = CursorState::Buffered(records.into_iter());
        }

        let record = match &mut self.state {
            CursorState::Stream(stream) => Cursor::pull_stream(
                self.provider.get(),
                stream,
                &self.residual,
                self.needs_recheck,
                &mut self.stats,
            )?,
            CursorState::Buffered(buffered) => buffered.next()?,
            CursorState::SortPending { .. } => unreachable!("materialized above"),
        };
        self.stats.returned += 1;
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        Some(record)
    }
}

/// Executes a parsed query by draining a cursor (compatibility wrapper;
/// output is identical to collecting the cursor yourself).
pub fn execute(query: &Query, provider: &dyn Provider) -> Result<QueryResult> {
    execute_plan(&plan(query), provider)
}

/// Executes query text (parse + plan + run).
pub fn execute_text(text: &str, provider: &dyn Provider) -> Result<QueryResult> {
    execute(&crate::parser::parse(text)?, provider)
}

/// Executes a pre-built plan by draining a cursor.
pub fn execute_plan(plan: &Plan, provider: &dyn Provider) -> Result<QueryResult> {
    let mut cursor = Cursor::open_handle(ProviderHandle::Borrowed(provider), plan)?;
    let records: Vec<ProvenanceRecord> = cursor.by_ref().collect();
    Ok(QueryResult { records, stats: cursor.stats().clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;
    use crate::parser::parse;
    use pass_index::{
        AncestryGraph, AttrIndex, BfsClosure, KeywordIndex, ReachStrategy, TimeIndex,
    };
    use pass_model::{Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor, TupleSetId};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A small in-memory provider for executor tests.
    struct FixtureProvider {
        records: Vec<ProvenanceRecord>,
        attrs: AttrIndex,
        time: Mutex<TimeIndex>,
        keywords: KeywordIndex,
        graph: AncestryGraph,
        fetches: AtomicUsize,
    }

    impl FixtureProvider {
        fn new(records: Vec<ProvenanceRecord>) -> Self {
            let mut attrs = AttrIndex::new();
            let mut time = TimeIndex::new();
            let mut keywords = KeywordIndex::new();
            let mut graph = AncestryGraph::new();
            for record in &records {
                let parents: Vec<(TupleSetId, bool)> =
                    record.ancestry.iter().map(|d| (d.parent, d.tool.abstracted)).collect();
                let idx = graph.insert(record.id, &parents);
                attrs.insert_attrs(idx, &record.attributes);
                for (name, value) in crate::ast::multi_valued_attrs(record) {
                    attrs.insert(idx, name, value);
                }
                if let Some(range) = record.time_range() {
                    time.insert(idx, range);
                }
                for ann in &record.annotations {
                    keywords.insert(idx, &ann.text);
                }
                if let Some(desc) = record.attributes.get_str(pass_model::keys::DESCRIPTION) {
                    keywords.insert(idx, desc);
                }
            }
            FixtureProvider {
                records,
                attrs,
                time: Mutex::new(time),
                keywords,
                graph,
                fetches: AtomicUsize::new(0),
            }
        }

        fn fetch_count(&self) -> usize {
            self.fetches.load(Ordering::Relaxed)
        }
    }

    impl Provider for FixtureProvider {
        fn eq_lookup(&self, attr: &str, value: &Value) -> PostingList {
            self.attrs.eq(attr, value)
        }
        fn range_lookup(&self, attr: &str, low: Bound<&Value>, high: Bound<&Value>) -> PostingList {
            self.attrs.range(attr, low, high)
        }
        fn time_overlap(&self, range: TimeRange) -> PostingList {
            self.time.lock().unwrap().overlapping(range)
        }
        fn keyword_lookup(&self, phrase: &str) -> PostingList {
            self.keywords.lookup_all(phrase)
        }
        fn has_attr(&self, attr: &str) -> PostingList {
            self.attrs.has_attr(attr)
        }
        fn all_nodes(&self) -> PostingList {
            PostingList::from_iter(self.records.iter().filter_map(|r| self.graph.lookup(r.id)))
        }
        fn lineage(&self, clause: &LineageClause) -> Option<PostingList> {
            let root = self.graph.lookup(clause.root)?;
            let reach =
                BfsClosure.reachable(&self.graph, root, clause.direction, &clause.traverse_opts());
            Some(PostingList::from_iter(reach))
        }
        fn node_of(&self, id: TupleSetId) -> Option<NodeIdx> {
            self.graph.lookup(id)
        }
        fn fetch(&self, idx: NodeIdx) -> Option<ProvenanceRecord> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            let id = self.graph.resolve(idx)?;
            self.records.iter().find(|r| r.id == id).cloned()
        }
        fn created_scan(&self, desc: bool) -> Option<Arc<[NodeIdx]>> {
            let keyed = self
                .records
                .iter()
                .filter_map(|r| self.graph.lookup(r.id).map(|idx| (r.created_at, r.id, idx)))
                .collect();
            Some(created_order_scan(keyed, desc))
        }
    }

    impl QueryEngine for FixtureProvider {
        fn open(&self, prepared: &PreparedQuery) -> Result<Cursor<'_>> {
            Cursor::over(self, prepared)
        }
    }

    fn fixture() -> (FixtureProvider, Vec<TupleSetId>) {
        let raw = ProvenanceBuilder::new(SiteId(1), Timestamp(100))
            .attr("domain", "traffic")
            .attr("region", "london")
            .time_range(TimeRange::new(Timestamp(0), Timestamp(50)))
            .build(Digest128::of(b"raw"));
        let mid = ProvenanceBuilder::new(SiteId(1), Timestamp(200))
            .attr("domain", "traffic")
            .attr("region", "london")
            .attr("count", 10i64)
            .derived_from(raw.id, ToolDescriptor::new("dedupe", "1.0"))
            .build(Digest128::of(b"mid"));
        let leaf = ProvenanceBuilder::new(SiteId(2), Timestamp(300))
            .attr("domain", "traffic")
            .attr("region", "boston")
            .attr("count", 99i64)
            .derived_from(mid.id, ToolDescriptor::new("aggregate", "2.0"))
            .build(Digest128::of(b"leaf"));
        let other = ProvenanceBuilder::new(SiteId(3), Timestamp(150))
            .attr("domain", "weather")
            .attr("region", "london")
            .build(Digest128::of(b"other"));
        let ids = vec![raw.id, mid.id, leaf.id, other.id];
        (FixtureProvider::new(vec![raw, mid, leaf, other]), ids)
    }

    fn run(provider: &FixtureProvider, text: &str) -> QueryResult {
        execute(&parse(text).unwrap(), provider).unwrap()
    }

    #[test]
    fn eq_query_uses_index_exactly() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE domain = "weather""#);
        assert_eq!(res.ids(), vec![ids[3]]);
        assert!(res.stats.used_index);
        assert!(res.stats.exact);
        assert_eq!(res.stats.candidates_scanned, 1);
        assert_eq!(res.stats.residual_rejected, 0);
    }

    #[test]
    fn conjunction_intersects() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE domain = "traffic" AND region = "london""#);
        let mut got = res.ids();
        got.sort();
        let mut want = vec![ids[0], ids[1]];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn residual_recheck_filters_false_positives() {
        let (p, ids) = fixture();
        // Ne is not indexable: region = london serves candidates, the Ne
        // re-check drops the weather record.
        let res = run(&p, r#"FIND WHERE region = "london" AND domain != "weather""#);
        let mut got = res.ids();
        got.sort();
        let mut want = vec![ids[0], ids[1]];
        want.sort();
        assert_eq!(got, want);
        assert!(!res.stats.exact);
        assert!(res.stats.candidates_scanned > res.stats.returned);
        assert_eq!(res.stats.residual_rejected, 1);
    }

    #[test]
    fn lineage_scopes_filter() {
        let (p, ids) = fixture();
        let leaf_hex = ids[2].full_hex();
        let res = run(&p, &format!("FIND ANCESTORS OF ts:{leaf_hex}"));
        let mut got = res.ids();
        got.sort();
        let mut want = vec![ids[0], ids[1]];
        want.sort();
        assert_eq!(got, want);

        // With a filter on top.
        let res = run(&p, &format!(r#"FIND ANCESTORS OF ts:{leaf_hex} WHERE HAS count"#));
        assert_eq!(res.ids(), vec![ids[1]]);
    }

    #[test]
    fn lineage_with_self_includes_root() {
        let (p, ids) = fixture();
        let res = run(&p, &format!("FIND DESCENDANTS OF ts:{} WITH SELF", ids[0].full_hex()));
        assert_eq!(res.records.len(), 3);
    }

    #[test]
    fn unknown_lineage_root_errors() {
        let (p, _) = fixture();
        let err = execute(&parse("FIND ANCESTORS OF ts:deadbeef").unwrap(), &p).unwrap_err();
        assert!(matches!(err, QueryError::UnknownTupleSet(_)));
    }

    #[test]
    fn order_and_limit() {
        let (p, ids) = fixture();
        let res = run(&p, "FIND ORDER BY created DESC LIMIT 2");
        assert_eq!(res.ids(), vec![ids[2], ids[1]], "newest two first");
        let res = run(&p, "FIND ORDER BY created ASC LIMIT 1");
        assert_eq!(res.ids(), vec![ids[0]]);
    }

    #[test]
    fn time_overlap_query() {
        let (p, ids) = fixture();
        let res = run(&p, "FIND WHERE time OVERLAPS [40, 60]");
        assert_eq!(res.ids(), vec![ids[0]], "only the raw capture declared a window");
    }

    #[test]
    fn tool_pseudo_attribute_query() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE tool.name = "aggregate""#);
        assert_eq!(res.ids(), vec![ids[2]]);
    }

    #[test]
    fn scan_fallback_matches_ground_truth() {
        let (p, ids) = fixture();
        let res = run(&p, r#"FIND WHERE NOT domain = "traffic""#);
        assert_eq!(res.ids(), vec![ids[3]]);
        assert!(!res.stats.used_index);
        // Scan considered everything.
        assert_eq!(res.stats.candidates_scanned, 4);
        assert_eq!(res.stats.residual_rejected, 3);
    }

    #[test]
    fn limit_without_order_cuts_early() {
        let (p, _) = fixture();
        let res = run(&p, r#"FIND WHERE domain = "traffic" LIMIT 1"#);
        assert_eq!(res.records.len(), 1);
        assert_eq!(res.stats.candidates_scanned, 1, "pushdown stops at the limit");
        assert_eq!(res.stats.fetched, 1);
    }

    #[test]
    fn execute_text_convenience() {
        let (p, ids) = fixture();
        let res = execute_text(r#"FIND WHERE region = "boston""#, &p).unwrap();
        assert_eq!(res.ids(), vec![ids[2]]);
        let err = execute_text("NOT A QUERY", &p);
        assert!(err.is_err());
    }

    #[test]
    fn predicate_ground_truth_agrees_with_executor_on_fixture() {
        let (p, _) = fixture();
        for text in [
            r#"FIND WHERE domain = "traffic""#,
            r#"FIND WHERE count >= 10"#,
            r#"FIND WHERE count BETWEEN 5 AND 50"#,
            r#"FIND WHERE HAS count"#,
            r#"FIND WHERE domain = "traffic" OR domain = "weather""#,
            r#"FIND WHERE time OVERLAPS [0, 1000]"#,
        ] {
            let query = parse(text).unwrap();
            let res = execute(&query, &p).unwrap();
            let want: Vec<TupleSetId> =
                p.records.iter().filter(|r| query.filter.matches(r)).map(|r| r.id).collect();
            let mut got = res.ids();
            got.sort();
            let mut want = want;
            want.sort();
            assert_eq!(got, want, "{text}");
        }
    }

    #[test]
    fn residual_predicate_true_shortcut() {
        let q = Query::filtered(Predicate::True);
        let p = plan(&q);
        assert!(p.is_exact());
    }

    // -- Streaming API --------------------------------------------------

    /// Every query shape: draining the cursor == `execute` output,
    /// record for record.
    #[test]
    fn cursor_drain_equals_execute() {
        let (p, ids) = fixture();
        for text in [
            "FIND",
            r#"FIND WHERE domain = "traffic""#,
            r#"FIND WHERE domain = "traffic" AND region = "london""#,
            r#"FIND WHERE region = "london" AND domain != "weather""#,
            r#"FIND WHERE domain = "traffic" OR domain = "weather""#,
            "FIND ORDER BY created DESC",
            "FIND ORDER BY created ASC LIMIT 2",
            r#"FIND WHERE domain = "traffic" ORDER BY created DESC"#,
            "FIND WHERE time OVERLAPS [0, 1000] LIMIT 1",
            &format!("FIND ANCESTORS OF ts:{} WITH SELF", ids[0].full_hex()),
            &format!("FIND DESCENDANTS OF ts:{}", ids[0].full_hex()),
        ] {
            let query = parse(text).unwrap();
            let executed = execute(&query, &p).unwrap();
            let drained: Vec<ProvenanceRecord> = p.open_query(&query).unwrap().collect();
            assert_eq!(executed.records, drained, "execute and cursor drain diverge on {text}");
        }
    }

    #[test]
    fn cursor_is_lazy_per_pull() {
        let (p, _) = fixture();
        let before = p.fetch_count();
        let mut cursor = p.open_text(r#"FIND WHERE domain = "traffic""#).unwrap();
        assert_eq!(p.fetch_count(), before, "open fetches nothing");
        cursor.next().unwrap();
        assert_eq!(p.fetch_count(), before + 1, "one pull, one fetch");
        drop(cursor); // abandoning mid-stream does no further work
        assert_eq!(p.fetch_count(), before + 1);
    }

    #[test]
    fn keyset_pages_concatenate_to_full_result() {
        let (p, _) = fixture();
        for base in ["FIND", r#"FIND WHERE domain = "traffic""#, "FIND ORDER BY created DESC"] {
            let full = execute(&parse(base).unwrap(), &p).unwrap().records;
            let mut paged: Vec<ProvenanceRecord> = Vec::new();
            let mut after: Option<TupleSetId> = None;
            loop {
                let mut q = parse(base).unwrap().with_limit(2);
                q.after = after;
                let page = execute(&q, &p).unwrap().records;
                if page.is_empty() {
                    break;
                }
                after = Some(page.last().unwrap().id);
                paged.extend(page);
            }
            assert_eq!(full, paged, "paging diverges on {base}");
        }
    }

    #[test]
    fn after_unknown_token_errors() {
        let (p, _) = fixture();
        let q = parse("FIND LIMIT 2 AFTER ts:deadbeef").unwrap();
        assert!(matches!(execute(&q, &p).unwrap_err(), QueryError::UnknownTupleSet(_)));
    }

    /// The AFTER token need not itself match the filter — it marks a
    /// position in the result order, not a member of the result set.
    #[test]
    fn after_token_outside_result_set_is_a_position() {
        // Insertion order fixes dense indexes: A=0, B=1, C=2, D=3.
        let build = |tag: &[u8], domain: &str, at: u64| {
            ProvenanceBuilder::new(SiteId(1), Timestamp(at))
                .attr("domain", domain)
                .build(Digest128::of(tag))
        };
        let a = build(b"a", "traffic", 10);
        let b = build(b"b", "weather", 20);
        let c = build(b"c", "traffic", 30);
        let d = build(b"d", "traffic", 40);
        let (b_id, c_id, d_id) = (b.id, c.id, d.id);
        let p = FixtureProvider::new(vec![a, b, c, d]);

        // B does not match the traffic filter, but its dense position
        // (1) still anchors the page: the result is exactly the suffix
        // of the unpaged result past that position — C then D.
        let q = parse(&format!(r#"FIND WHERE domain = "traffic" AFTER ts:{}"#, b_id.full_hex()))
            .unwrap();
        assert_eq!(execute(&q, &p).unwrap().ids(), vec![c_id, d_id]);

        // A token past every candidate yields the empty suffix.
        let q = parse(&format!(r#"FIND WHERE domain = "traffic" AFTER ts:{}"#, d_id.full_hex()))
            .unwrap();
        assert_eq!(execute(&q, &p).unwrap().ids(), Vec::<TupleSetId>::new());
    }

    #[test]
    fn ordered_pushdown_touches_only_limit_records() {
        let (p, ids) = fixture();
        let before = p.fetch_count();
        let drained: Vec<ProvenanceRecord> =
            p.open_text("FIND ORDER BY created DESC LIMIT 1").unwrap().collect();
        assert_eq!(drained[0].id, ids[2]);
        assert_eq!(p.fetch_count() - before, 1, "ordered scan + limit fetches one record");
    }

    #[test]
    fn prepared_query_is_reusable() {
        let (p, _) = fixture();
        let prepared = prepare(&parse(r#"FIND WHERE domain = "traffic""#).unwrap());
        let a: Vec<_> = p.open(&prepared).unwrap().collect();
        let b: Vec<_> = p.open(&prepared).unwrap().collect();
        assert_eq!(a, b);
        assert!(prepared.explain().contains("index"));
    }

    #[test]
    fn cursor_stats_track_pushdown() {
        let (p, _) = fixture();
        let mut cursor = p.open_text(r#"FIND WHERE domain = "traffic" LIMIT 2"#).unwrap();
        assert_eq!(cursor.stats().candidates_scanned, 0);
        let _ = cursor.by_ref().collect::<Vec<_>>();
        let stats = cursor.stats();
        assert_eq!(stats.returned, 2);
        assert_eq!(stats.candidates_scanned, 2);
        assert!(stats.exact);
    }
}
