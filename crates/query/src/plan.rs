//! Logical planning.
//!
//! The planner translates a [`Predicate`] into an index-servable
//! [`IndexExpr`] plus a *residual* predicate. The contract is
//! **superset + re-check**: the index expression may admit false
//! positives (never false negatives), and the executor re-evaluates the
//! residual on every fetched record. When the translation is *exact* the
//! residual collapses to `True` and no re-check happens.

use crate::ast::{CmpOp, LineageClause, OrderBy, Predicate, Query};
use pass_model::{TimeRange, TupleSetId, Value};
use std::fmt;
use std::ops::Bound;

/// An index-evaluable filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexExpr {
    /// Every node in the store.
    All,
    /// Attribute equality lookup.
    Eq {
        /// Attribute name.
        attr: String,
        /// Matched value.
        value: Value,
    },
    /// Attribute range lookup.
    Range {
        /// Attribute name.
        attr: String,
        /// Lower bound.
        low: Bound<Value>,
        /// Upper bound.
        high: Bound<Value>,
    },
    /// Time-window overlap lookup.
    TimeOverlap(TimeRange),
    /// Keyword lookup over annotations/description.
    Keyword(String),
    /// Attribute-presence lookup.
    HasAttr(String),
    /// Intersection of sub-expressions.
    And(Vec<IndexExpr>),
    /// Union of sub-expressions.
    Or(Vec<IndexExpr>),
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexExpr::All => write!(f, "all"),
            IndexExpr::Eq { attr, value } => write!(f, "ix:{attr}={value}"),
            IndexExpr::Range { attr, low, high } => {
                let b = |b: &Bound<Value>, open: &str, closed: &str| match b {
                    Bound::Included(v) => format!("{closed}{v}"),
                    Bound::Excluded(v) => format!("{open}{v}"),
                    Bound::Unbounded => "∞".to_owned(),
                };
                write!(f, "ix:{attr}∈{}..{}", b(low, "(", "["), b(high, ")", "]"))
            }
            IndexExpr::TimeOverlap(r) => write!(f, "ix:time∩{r}"),
            IndexExpr::Keyword(s) => write!(f, "ix:text~{s:?}"),
            IndexExpr::HasAttr(a) => write!(f, "ix:has({a})"),
            IndexExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            IndexExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Where candidate nodes come from.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanSource {
    /// Posting-list evaluation of an index expression.
    Index(IndexExpr),
    /// Full scan of the store (no indexable structure found).
    Scan,
}

/// A fully planned query.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Candidate source.
    pub source: PlanSource,
    /// Predicate re-checked on each fetched record (`True` when the index
    /// translation was exact).
    pub residual: Predicate,
    /// Lineage scope carried over from the query.
    pub lineage: Option<LineageClause>,
    /// Ordering carried over from the query.
    pub order: OrderBy,
    /// Limit carried over from the query.
    pub limit: Option<usize>,
    /// Keyset-pagination token carried over from the query: the cursor
    /// starts strictly after this tuple set's position in result order.
    pub after: Option<TupleSetId>,
}

impl Plan {
    /// True when the executor will not need to re-check records.
    pub fn is_exact(&self) -> bool {
        self.residual == Predicate::True
    }

    /// EXPLAIN-style single-line rendering.
    pub fn explain(&self) -> String {
        let src = match &self.source {
            PlanSource::Index(e) => format!("index {e}"),
            PlanSource::Scan => "scan".to_owned(),
        };
        let lineage = match &self.lineage {
            Some(l) => format!(
                " ∩ lineage({:?} of {}, depth {:?}{})",
                l.direction,
                l.root,
                l.max_depth,
                if l.stop_at_abstraction { ", abstracted" } else { "" }
            ),
            None => String::new(),
        };
        let residual = if self.is_exact() { String::new() } else { " → recheck".to_owned() };
        let order = match self.order {
            OrderBy::None => "",
            OrderBy::CreatedAsc => " → order created asc",
            OrderBy::CreatedDesc => " → order created desc",
        };
        let limit = self.limit.map(|n| format!(" → limit {n}")).unwrap_or_default();
        let after = self.after.map(|id| format!(" → after {id}")).unwrap_or_default();
        format!("{src}{lineage}{residual}{order}{limit}{after}")
    }
}

/// Plans a query.
pub fn plan(query: &Query) -> Plan {
    let (expr, exact) = translate(&query.filter);
    let residual = if exact { Predicate::True } else { query.filter.clone() };
    let source = match expr {
        Some(e) => PlanSource::Index(e),
        None => PlanSource::Scan,
    };
    Plan {
        source,
        residual,
        lineage: query.lineage.clone(),
        order: query.order,
        limit: query.limit,
        after: query.after,
    }
}

/// Translates a predicate to an index expression.
///
/// Returns `(expr, exact)`; `None` means no index structure applies and a
/// scan is required. The returned expression always covers a superset of
/// the predicate's matches.
fn translate(pred: &Predicate) -> (Option<IndexExpr>, bool) {
    match pred {
        Predicate::True => (Some(IndexExpr::All), true),
        Predicate::Eq(attr, v) => {
            (Some(IndexExpr::Eq { attr: attr.clone(), value: v.clone() }), true)
        }
        Predicate::Ne(..) => (None, false),
        Predicate::Cmp(attr, op, v) => {
            let (low, high) = match op {
                CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(v.clone())),
                CmpOp::Le => (Bound::Unbounded, Bound::Included(v.clone())),
                CmpOp::Gt => (Bound::Excluded(v.clone()), Bound::Unbounded),
                CmpOp::Ge => (Bound::Included(v.clone()), Bound::Unbounded),
            };
            (Some(IndexExpr::Range { attr: attr.clone(), low, high }), true)
        }
        Predicate::Between(attr, lo, hi) => (
            Some(IndexExpr::Range {
                attr: attr.clone(),
                low: Bound::Included(lo.clone()),
                high: Bound::Included(hi.clone()),
            }),
            true,
        ),
        Predicate::HasAttr(attr) => (Some(IndexExpr::HasAttr(attr.clone())), true),
        Predicate::TextContains(phrase) => (Some(IndexExpr::Keyword(phrase.clone())), true),
        Predicate::TimeOverlaps(range) => (Some(IndexExpr::TimeOverlap(*range)), true),
        Predicate::And(ps) => {
            let mut children = Vec::with_capacity(ps.len());
            let mut exact = true;
            for p in ps {
                match translate(p) {
                    (Some(IndexExpr::All), e) => exact &= e,
                    (Some(expr), e) => {
                        children.push(expr);
                        exact &= e;
                    }
                    // A non-indexable conjunct narrows the result set, so
                    // dropping it from the index expression keeps the
                    // superset property — but forces a re-check.
                    (None, _) => exact = false,
                }
            }
            if children.is_empty() {
                // Nothing indexable: scan unless every conjunct was `All`.
                if exact {
                    (Some(IndexExpr::All), true)
                } else {
                    (None, false)
                }
            } else if children.len() == 1 {
                (Some(children.into_iter().next().expect("one child")), exact)
            } else {
                (Some(IndexExpr::And(children)), exact)
            }
        }
        Predicate::Or(ps) => {
            // Every branch must be indexable, otherwise the union would
            // miss matches (violating the superset property).
            let mut children = Vec::with_capacity(ps.len());
            let mut exact = true;
            for p in ps {
                match translate(p) {
                    (Some(expr), e) => {
                        children.push(expr);
                        exact &= e;
                    }
                    (None, _) => return (None, false),
                }
            }
            (Some(IndexExpr::Or(children)), exact)
        }
        Predicate::Not(_) => (None, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan_of(text: &str) -> Plan {
        plan(&parse(text).unwrap())
    }

    #[test]
    fn conjunction_of_indexables_is_exact() {
        let p = plan_of(r#"FIND WHERE domain = "traffic" AND count >= 10"#);
        assert!(p.is_exact());
        assert!(matches!(p.source, PlanSource::Index(IndexExpr::And(_))));
    }

    #[test]
    fn ne_forces_scan_alone_but_residual_under_and() {
        let p = plan_of(r#"FIND WHERE domain != "traffic""#);
        assert!(matches!(p.source, PlanSource::Scan));
        assert!(!p.is_exact());

        let p = plan_of(r#"FIND WHERE region = "london" AND domain != "traffic""#);
        // The Eq side serves from the index, the Ne is re-checked.
        assert!(matches!(p.source, PlanSource::Index(IndexExpr::Eq { .. })));
        assert!(!p.is_exact());
    }

    #[test]
    fn or_with_unindexable_branch_scans() {
        let p = plan_of(r#"FIND WHERE domain = "x" OR NOT domain = "y""#);
        assert!(matches!(p.source, PlanSource::Scan));
        assert!(!p.is_exact());
    }

    #[test]
    fn or_of_indexables_is_exact_union() {
        let p = plan_of(r#"FIND WHERE region = "london" OR region = "boston""#);
        assert!(p.is_exact());
        assert!(matches!(p.source, PlanSource::Index(IndexExpr::Or(_))));
    }

    #[test]
    fn empty_where_is_all() {
        let p = plan_of("FIND");
        assert!(matches!(p.source, PlanSource::Index(IndexExpr::All)));
        assert!(p.is_exact());
    }

    #[test]
    fn time_overlap_and_keyword_translate() {
        let p = plan_of(r#"FIND WHERE time OVERLAPS [1, 5] AND ANNOTATION CONTAINS "replaced""#);
        assert!(p.is_exact());
        match p.source {
            PlanSource::Index(IndexExpr::And(children)) => {
                assert!(children.iter().any(|c| matches!(c, IndexExpr::TimeOverlap(_))));
                assert!(children.iter().any(|c| matches!(c, IndexExpr::Keyword(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_is_readable() {
        let p = plan_of(r#"FIND ANCESTORS OF ts:aa WHERE domain = "x" AND NOT HAS patient"#);
        let text = p.explain();
        assert!(text.contains("index"), "{text}");
        assert!(text.contains("lineage"), "{text}");
        assert!(text.contains("recheck"), "{text}");
    }

    #[test]
    fn between_becomes_inclusive_range() {
        let p = plan_of("FIND WHERE count BETWEEN 5 AND 10");
        assert!(p.is_exact());
        match &p.source {
            PlanSource::Index(IndexExpr::Range { low, high, .. }) => {
                assert_eq!(*low, Bound::Included(Value::Int(5)));
                assert_eq!(*high, Bound::Included(Value::Int(10)));
            }
            other => panic!("{other:?}"),
        }
    }
}
