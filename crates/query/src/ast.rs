//! Query abstract syntax.
//!
//! A PASS query is a predicate over provenance attributes, optionally
//! scoped to the lineage closure of one tuple set — the two query shapes
//! §II-B identifies (dimensional lookups and recursive traversals).

use pass_index::{Direction, TraverseOpts};
use pass_model::{keys, ProvenanceRecord, TimeRange, TupleSetId, Value};

/// Comparison operators for attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on an ordered pair.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// A boolean predicate over a provenance record.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the empty WHERE clause).
    True,
    /// `attr = value`.
    Eq(String, Value),
    /// `attr != value` (attribute must be present).
    Ne(String, Value),
    /// `attr <op> value` (attribute must be present and ordered).
    Cmp(String, CmpOp, Value),
    /// `attr BETWEEN low AND high`, both inclusive.
    Between(String, Value, Value),
    /// `HAS attr` — the attribute exists with any value.
    HasAttr(String),
    /// `ANNOTATION CONTAINS "phrase"` — all tokens of the phrase appear in
    /// the record's annotations or description.
    TextContains(String),
    /// `time OVERLAPS [a, b]` — the record's conventional time window
    /// overlaps the range.
    TimeOverlaps(TimeRange),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Conjunction helper that flattens nested `And`s.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::with_capacity(preds.len());
        for p in preds {
            match p {
                Predicate::And(inner) => flat.extend(inner),
                Predicate::True => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.into_iter().next().expect("one element"),
            _ => Predicate::And(flat),
        }
    }

    /// Ground-truth evaluation against a record. This is the semantics the
    /// planner's index strategy must reproduce (executor re-checks
    /// residuals with exactly this function).
    ///
    /// Tool pseudo-attributes (`tool.name`, `tool.version`) are
    /// multi-valued — one per derivation — and match existentially: the
    /// predicate holds when *some* derivation's tool satisfies it.
    pub fn matches(&self, record: &ProvenanceRecord) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(attr, v) => each_attr_value(record, attr, |got| got == v),
            Predicate::Ne(attr, v) => each_attr_value(record, attr, |got| got != v),
            Predicate::Cmp(attr, op, v) => each_attr_value(record, attr, |got| op.eval(got, v)),
            Predicate::Between(attr, lo, hi) => {
                each_attr_value(record, attr, |got| got >= lo && got <= hi)
            }
            Predicate::HasAttr(attr) => each_attr_value(record, attr, |_| true),
            Predicate::TextContains(phrase) => text_matches(record, phrase),
            Predicate::TimeOverlaps(range) => {
                record.time_range().is_some_and(|r| r.overlaps(range))
            }
            Predicate::And(ps) => ps.iter().all(|p| p.matches(record)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(record)),
            Predicate::Not(p) => !p.matches(record),
        }
    }
}

/// Applies `test` across the (possibly multi-valued) values of an
/// attribute; true when some value passes. Absent attributes never pass.
fn each_attr_value(record: &ProvenanceRecord, attr: &str, test: impl Fn(&Value) -> bool) -> bool {
    if attr == "tool.name" || attr == "tool.version" {
        return multi_valued_attrs(record).iter().any(|(name, value)| *name == attr && test(value));
    }
    lookup_attr(record, attr).is_some_and(|got| test(&got))
}

/// Pseudo-attributes materialized from record structure. Indexable like
/// real attributes (`pass-core` indexes them at ingest) and evaluable here
/// for ground truth:
///
/// * `tool.name` / `tool.version` — any derivation's tool (multi-valued:
///   equality means "some derivation used it").
/// * `origin.site` — the producing site id.
/// * `ancestry.depth` — number of direct parents (0 ⇒ raw capture).
pub fn lookup_attr(record: &ProvenanceRecord, attr: &str) -> Option<Value> {
    match attr {
        "origin.site" => Some(Value::Int(i64::from(record.origin.0))),
        "ancestry.parents" => Some(Value::Int(record.ancestry.len() as i64)),
        "created_at" => Some(Value::Time(record.created_at)),
        _ => record.attributes.get(attr).cloned(),
    }
}

/// Multi-valued pseudo-attribute expansion used by ingest-time indexing;
/// `matches` uses it for tool predicates.
pub fn multi_valued_attrs(record: &ProvenanceRecord) -> Vec<(&'static str, Value)> {
    let mut out = Vec::with_capacity(record.ancestry.len() * 2);
    for d in &record.ancestry {
        out.push(("tool.name", Value::Str(d.tool.name.clone())));
        out.push(("tool.version", Value::Str(d.tool.version.clone())));
    }
    out
}

fn text_matches(record: &ProvenanceRecord, phrase: &str) -> bool {
    use std::collections::HashSet;
    let mut tokens: HashSet<String> = HashSet::new();
    for ann in &record.annotations {
        tokens.extend(pass_index::keyword::tokenize(&ann.text));
    }
    if let Some(desc) = record.attributes.get_str(keys::DESCRIPTION) {
        tokens.extend(pass_index::keyword::tokenize(desc));
    }
    let mut wanted = pass_index::keyword::tokenize(phrase).peekable();
    if wanted.peek().is_none() {
        return false;
    }
    wanted.all(|t| tokens.contains(&t))
}

/// Which lineage closure to intersect the filter with.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageClause {
    /// The tuple set whose closure is wanted.
    pub root: TupleSetId,
    /// Ancestors ("origins") or descendants ("downstream, tainted data").
    pub direction: Direction,
    /// Hop limit.
    pub max_depth: Option<u32>,
    /// Stop at abstraction boundaries (§V "gcc 3.3.3").
    pub stop_at_abstraction: bool,
    /// Include the root itself in results.
    pub include_root: bool,
}

impl LineageClause {
    /// Traversal options equivalent of this clause.
    pub fn traverse_opts(&self) -> TraverseOpts {
        TraverseOpts { max_depth: self.max_depth, stop_at_abstraction: self.stop_at_abstraction }
    }
}

/// Result ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderBy {
    /// Storage order (dense index order — effectively ingest order).
    #[default]
    None,
    /// Oldest first by creation time.
    CreatedAsc,
    /// Newest first by creation time.
    CreatedDesc,
}

/// A subscription statement: the continuous form of a [`Query`].
///
/// One-shot and continuous consumption share the query model: a
/// subscription's *catch-up* phase executes [`Subscribe::query`]
/// verbatim against the snapshot pinned at subscribe time (output
/// identical to `execute`), and its *tail* then re-evaluates the query's
/// filter — and, for `DESCENDANTS OF` scopes, an incrementally
/// maintained closure — against every subsequent commit, in commit
/// order.
///
/// Parsed from `SUBSCRIBE <query>` or the `WATCH DESCENDANTS OF id`
/// sugar (see [`crate::parser::parse_subscribe`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Subscribe {
    /// The underlying query.
    pub query: Query,
}

impl Subscribe {
    /// Subscribes to the matches of `query`.
    pub fn of(query: Query) -> Self {
        Subscribe { query }
    }

    /// `WATCH DESCENDANTS OF root`: fire when a record derives,
    /// transitively, from `root` — the live-taint shape.
    pub fn watch_descendants(root: TupleSetId) -> Self {
        Subscribe { query: Query::lineage(root, Direction::Descendants) }
    }
}

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Attribute/text/time filter.
    pub filter: Predicate,
    /// Optional lineage scope.
    pub lineage: Option<LineageClause>,
    /// Result cap.
    pub limit: Option<usize>,
    /// Result ordering.
    pub order: OrderBy,
    /// Keyset-pagination token: results resume strictly *after* this
    /// tuple set's position in the result order. Combined with `limit`
    /// this pages through a result set without offsets: each page's last
    /// id is the next page's `after`.
    pub after: Option<TupleSetId>,
}

impl Query {
    /// A query returning everything matching `filter`.
    pub fn filtered(filter: Predicate) -> Self {
        Query { filter, lineage: None, limit: None, order: OrderBy::None, after: None }
    }

    /// A pure lineage query (no additional filter).
    pub fn lineage(root: TupleSetId, direction: Direction) -> Self {
        Query {
            filter: Predicate::True,
            lineage: Some(LineageClause {
                root,
                direction,
                max_depth: None,
                stop_at_abstraction: false,
                include_root: false,
            }),
            limit: None,
            order: OrderBy::None,
            after: None,
        }
    }

    /// Sets a hop limit on the lineage clause (no-op without one).
    pub fn with_depth(mut self, depth: u32) -> Self {
        if let Some(l) = &mut self.lineage {
            l.max_depth = Some(depth);
        }
        self
    }

    /// Sets a result cap.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets the keyset-pagination token (see [`Query::after`]).
    pub fn with_after(mut self, after: TupleSetId) -> Self {
        self.after = Some(after);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_model::{Annotation, Digest128, ProvenanceBuilder, SiteId, Timestamp, ToolDescriptor};

    fn record() -> ProvenanceRecord {
        let mut r = ProvenanceBuilder::new(SiteId(3), Timestamp(500))
            .attr("domain", "traffic")
            .attr("count", 42i64)
            .attr(keys::DESCRIPTION, "camera feed from junction 9")
            .time_range(TimeRange::new(Timestamp(100), Timestamp(200)))
            .derived_from(TupleSetId(7), ToolDescriptor::new("dedupe", "2.0"))
            .build(Digest128::of(b"data"));
        r.annotate(Annotation::new(Timestamp(600), "ops", "sensor 12 replaced"));
        r
    }

    #[test]
    fn eq_ne_matches() {
        let r = record();
        assert!(Predicate::Eq("domain".into(), "traffic".into()).matches(&r));
        assert!(!Predicate::Eq("domain".into(), "weather".into()).matches(&r));
        assert!(Predicate::Ne("domain".into(), "weather".into()).matches(&r));
        assert!(
            !Predicate::Ne("missing".into(), "x".into()).matches(&r),
            "Ne on an absent attribute is false, not vacuously true"
        );
    }

    #[test]
    fn cmp_and_between() {
        let r = record();
        assert!(Predicate::Cmp("count".into(), CmpOp::Ge, Value::Int(42)).matches(&r));
        assert!(!Predicate::Cmp("count".into(), CmpOp::Lt, Value::Int(42)).matches(&r));
        assert!(Predicate::Between("count".into(), Value::Int(40), Value::Int(50)).matches(&r));
        assert!(!Predicate::Between("count".into(), Value::Int(43), Value::Int(50)).matches(&r));
    }

    #[test]
    fn boolean_combinators() {
        let r = record();
        let t = Predicate::Eq("domain".into(), "traffic".into());
        let f = Predicate::Eq("domain".into(), "weather".into());
        assert!(Predicate::And(vec![t.clone(), Predicate::True]).matches(&r));
        assert!(!Predicate::And(vec![t.clone(), f.clone()]).matches(&r));
        assert!(Predicate::Or(vec![f.clone(), t.clone()]).matches(&r));
        assert!(Predicate::Not(Box::new(f)).matches(&r));
    }

    #[test]
    fn and_flattening() {
        let p = Predicate::and(vec![
            Predicate::True,
            Predicate::and(vec![Predicate::HasAttr("a".into()), Predicate::HasAttr("b".into())]),
        ]);
        assert_eq!(
            p,
            Predicate::And(vec![Predicate::HasAttr("a".into()), Predicate::HasAttr("b".into())])
        );
        assert_eq!(Predicate::and(vec![]), Predicate::True);
    }

    #[test]
    fn time_overlap_matching() {
        let r = record();
        assert!(Predicate::TimeOverlaps(TimeRange::new(Timestamp(150), Timestamp(300))).matches(&r));
        assert!(
            !Predicate::TimeOverlaps(TimeRange::new(Timestamp(201), Timestamp(300))).matches(&r)
        );
    }

    #[test]
    fn text_contains_spans_annotations_and_description() {
        let r = record();
        assert!(Predicate::TextContains("sensor replaced".into()).matches(&r));
        assert!(Predicate::TextContains("camera junction".into()).matches(&r));
        assert!(!Predicate::TextContains("volcano".into()).matches(&r));
        assert!(!Predicate::TextContains("".into()).matches(&r));
    }

    #[test]
    fn pseudo_attributes() {
        let r = record();
        assert!(Predicate::Eq("origin.site".into(), Value::Int(3)).matches(&r));
        assert!(Predicate::Eq("ancestry.parents".into(), Value::Int(1)).matches(&r));
        assert!(Predicate::Eq("created_at".into(), Value::Time(Timestamp(500))).matches(&r));
        assert!(Predicate::Eq("tool.name".into(), "dedupe".into()).matches(&r));
        assert!(!Predicate::Eq("tool.name".into(), "sharpen".into()).matches(&r));
        assert!(Predicate::HasAttr("tool.name".into()).matches(&r));
    }

    #[test]
    fn multi_valued_expansion_lists_tools() {
        let r = record();
        let expanded = multi_valued_attrs(&r);
        assert!(expanded.contains(&("tool.name", Value::from("dedupe"))));
        assert!(expanded.contains(&("tool.version", Value::from("2.0"))));
    }
}
