//! Driver-side harness: build a ring, run client operations, measure.

use crate::node::{ChordConfig, ChordMsg, ChordNode};
use crate::ring::{self, Key};
use pass_net::{Completion, Node, NodeId, SimTime, Simulator, Topology};
use std::sync::Arc;

/// A Chord ring under simulation, with client-operation bookkeeping.
pub struct DhtHarness {
    /// The simulator (exposed for metrics and churn injection).
    pub sim: Simulator<ChordMsg>,
    ring_ids: Arc<Vec<Key>>,
    next_op: u64,
}

/// Outcome of one client operation.
#[derive(Debug, Clone)]
pub struct OpOutcome {
    /// Operation id.
    pub op: u64,
    /// Success flag (e.g. a Get found its value).
    pub ok: bool,
    /// Wall-clock latency.
    pub latency: SimTime,
    /// Routing hops, when the operation reported them.
    pub hops: Option<u32>,
}

impl DhtHarness {
    /// Builds an `n`-node ring over `topology` and runs stabilization
    /// until fingers and successor lists converge.
    pub fn build(topology: Topology, config: ChordConfig, seed: u64) -> Self {
        let n = topology.len();
        let ring_ids = Arc::new((0..n).map(ring::node_ring_id).collect::<Vec<_>>());
        let nodes: Vec<Box<dyn Node<ChordMsg>>> = (0..n)
            .map(|i| {
                Box::new(ChordNode::new(i, Arc::clone(&ring_ids), 0, config.clone()))
                    as Box<dyn Node<ChordMsg>>
            })
            .collect();
        let mut sim = Simulator::new(topology, nodes, seed);
        // Let the ring converge: joins + enough stabilization rounds for
        // successor lists and fingers (64 fingers per node).
        let settle = SimTime::from_micros(config.fix_finger_every_us * 80)
            .max(SimTime::from_micros(config.stabilize_every_us * 30));
        sim.run_until(settle);
        sim.take_completions(); // drop join-era noise
        sim.reset_metrics();
        DhtHarness { sim, ring_ids, next_op: 1 }
    }

    /// Ring ids by node index.
    pub fn ring_ids(&self) -> &[Key] {
        &self.ring_ids
    }

    /// The node that *should* own `key` given the currently-up set
    /// (oracle for correctness checks).
    pub fn expected_owner(&self, key: Key) -> NodeId {
        let mut best: Option<(Key, NodeId)> = None;
        for (node, &id) in self.ring_ids.iter().enumerate() {
            if !self.sim.is_up(node) {
                continue;
            }
            let dist = id.wrapping_sub(key); // clockwise distance key→id
            match best {
                None => best = Some((dist, node)),
                Some((bd, _)) if dist < bd => best = Some((dist, node)),
                _ => {}
            }
        }
        best.expect("at least one node up").1
    }

    fn issue(&mut self, via: NodeId, msg_of: impl FnOnce(u64) -> ChordMsg) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        self.sim.inject(via, msg_of(op), 0);
        op
    }

    /// Issues a put through `via`; returns the op id.
    pub fn put(&mut self, via: NodeId, key: Key, value: Vec<u8>) -> u64 {
        self.issue(via, |op| ChordMsg::ClientPut { key, value, op })
    }

    /// Issues a get through `via`; returns the op id.
    pub fn get(&mut self, via: NodeId, key: Key) -> u64 {
        self.issue(via, |op| ChordMsg::ClientGet { key, op })
    }

    /// Issues a pure lookup through `via`; returns the op id.
    pub fn lookup(&mut self, via: NodeId, key: Key) -> u64 {
        self.issue(via, |op| ChordMsg::ClientLookup { key, op })
    }

    /// Appends `item` to the list under `key` (PIER-style posting).
    pub fn append(&mut self, via: NodeId, key: Key, item: Vec<u8>) -> u64 {
        self.issue(via, |op| ChordMsg::ClientAppend { key, item, op })
    }

    /// Fetches the whole list under `key`.
    pub fn get_list(&mut self, via: NodeId, key: Key) -> u64 {
        self.issue(via, |op| ChordMsg::ClientGetList { key, max_items: 0, op })
    }

    /// Fetches at most `max_items` of the list under `key` — the
    /// bounded-page read behind limited queries (the holder truncates
    /// the reply, so the wire cost scales with the cap).
    pub fn get_list_bounded(&mut self, via: NodeId, key: Key, max_items: usize) -> u64 {
        self.issue(via, |op| ChordMsg::ClientGetList { key, max_items, op })
    }

    /// Runs the simulation for `duration` and returns outcomes of client
    /// operations completed in that window. `issued_at` should be the
    /// time the caller injected the batch (used for latency).
    pub fn run_and_collect(&mut self, duration: SimTime, issued_at: SimTime) -> Vec<OpOutcome> {
        let deadline = SimTime::from_micros(self.sim.now().as_micros() + duration.as_micros());
        self.sim.run_until(deadline);
        self.collect(issued_at)
    }

    /// Drains completions into outcomes.
    pub fn collect(&mut self, issued_at: SimTime) -> Vec<OpOutcome> {
        self.sim
            .take_completions()
            .into_iter()
            .map(|c: Completion<ChordMsg>| {
                let hops = match &c.payload {
                    Some(ChordMsg::FetchReply { hops, .. }) => Some(*hops),
                    _ => None,
                };
                OpOutcome {
                    op: c.op,
                    ok: c.ok,
                    latency: SimTime::from_micros(c.at.micros_since(issued_at)),
                    hops,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ring(n: usize) -> DhtHarness {
        DhtHarness::build(Topology::uniform(n, 10.0), ChordConfig::default(), 42)
    }

    #[test]
    fn ring_converges_and_oracle_matches_lookups() {
        let mut h = small_ring(12);
        let issued = h.sim.now();
        let mut expect = Vec::new();
        for i in 0..20u32 {
            let key = ring::key_of(format!("probe-{i}").as_bytes());
            expect.push((h.lookup(0, key), h.expected_owner(key)));
        }
        let outcomes = h.run_and_collect(SimTime::from_secs(30), issued);
        assert_eq!(outcomes.len(), 20, "all lookups resolve");
        assert!(outcomes.iter().all(|o| o.ok));
        let _ = expect; // owners checked indirectly by put/get below
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut h = small_ring(10);
        let issued = h.sim.now();
        let key = ring::key_of(b"tuple-set-123");
        h.put(3, key, b"provenance record bytes".to_vec());
        let outcomes = h.run_and_collect(SimTime::from_secs(10), issued);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].ok, "put acked");

        let issued = h.sim.now();
        h.get(7, key);
        let outcomes = h.run_and_collect(SimTime::from_secs(10), issued);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].ok, "get found the value");
        assert!(outcomes[0].latency.as_micros() > 0);
    }

    #[test]
    fn get_of_absent_key_fails_cleanly() {
        let mut h = small_ring(8);
        let issued = h.sim.now();
        h.get(1, ring::key_of(b"never stored"));
        let outcomes = h.run_and_collect(SimTime::from_secs(10), issued);
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].ok);
    }

    #[test]
    fn hop_counts_grow_sublinearly() {
        // Chord promises O(log n) hops; check that 64 nodes stay well
        // under n/2 average hops.
        let mut h = small_ring(64);
        let issued = h.sim.now();
        for i in 0..50u32 {
            h.lookup(i as usize % 64, ring::key_of(format!("k{i}").as_bytes()));
        }
        let outcomes = h.run_and_collect(SimTime::from_secs(60), issued);
        assert_eq!(outcomes.len(), 50);
        let mean_hops: f64 = outcomes.iter().filter_map(|o| o.hops).map(f64::from).sum::<f64>()
            / outcomes.len() as f64;
        assert!(mean_hops < 16.0, "mean hops {mean_hops} too high for 64 nodes");
        assert!(mean_hops >= 1.0, "routing must take at least a hop on average");
    }

    #[test]
    fn replication_survives_primary_crash() {
        let config = ChordConfig { replicas: 3, ..ChordConfig::default() };
        let mut h = DhtHarness::build(Topology::uniform(16, 5.0), config, 7);
        let key = ring::key_of(b"replicated tuple set");
        let issued = h.sim.now();
        h.put(2, key, b"value".to_vec());
        let out = h.run_and_collect(SimTime::from_secs(10), issued);
        assert!(out[0].ok);

        // Kill the primary owner and let stabilization route around it.
        let owner = h.expected_owner(key);
        let now = h.sim.now();
        h.sim.schedule_crash(now + 1_000, owner);
        h.sim.run_until(SimTime::from_micros(now.as_micros() + 20_000_000));
        h.sim.take_completions();

        let issued = h.sim.now();
        h.get(5, key);
        let out = h.run_and_collect(SimTime::from_secs(30), issued);
        assert_eq!(out.len(), 1);
        assert!(out[0].ok, "replica on the successor served the read");
    }

    #[test]
    fn unreplicated_data_is_lost_on_crash() {
        let mut h = small_ring(16); // replicas = 1
        let key = ring::key_of(b"fragile tuple set");
        let issued = h.sim.now();
        h.put(2, key, b"value".to_vec());
        let out = h.run_and_collect(SimTime::from_secs(10), issued);
        assert!(out[0].ok);

        let owner = h.expected_owner(key);
        let now = h.sim.now();
        h.sim.schedule_crash(now + 1_000, owner);
        h.sim.run_until(SimTime::from_micros(now.as_micros() + 20_000_000));
        h.sim.take_completions();

        let issued = h.sim.now();
        h.get(5, key);
        let out = h.run_and_collect(SimTime::from_secs(30), issued);
        assert_eq!(out.len(), 1);
        assert!(!out[0].ok, "no replica: the value died with its owner");
    }

    #[test]
    fn maintenance_traffic_accrues_even_when_idle() {
        let mut h = small_ring(8);
        h.sim.reset_metrics();
        let now = h.sim.now();
        h.sim.run_until(SimTime::from_micros(now.as_micros() + 10_000_000));
        let maint = h.sim.metrics().class(pass_net::TrafficClass::Maintenance);
        assert!(maint.messages > 0, "stabilization keeps running");
    }
}
