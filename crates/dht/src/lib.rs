//! # pass-dht — a Chord-style DHT over the PASS network simulator
//!
//! §IV-C examines distributed hash tables as a home for provenance
//! indexes and finds them wanting on four counts: placement-blind
//! storage, limited update scalability, reliance on stable well-connected
//! participants, and no support for recursive queries. This crate
//! implements enough of Chord — finger-table routing, stabilization,
//! successor lists, replication — for those claims to be *measured*
//! (experiments E6, E8, E11, E15) rather than asserted.
//!
//! Structure:
//! * [`ring`] — identifier-circle arithmetic and key hashing.
//! * [`ChordNode`] — the per-node protocol state machine.
//! * [`DhtHarness`] — driver-side ring construction and client ops.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod node;
pub mod ring;

pub use harness::{DhtHarness, OpOutcome};
pub use node::{ChordConfig, ChordMsg, ChordNode};
pub use ring::{key_of, node_ring_id, Key};
