//! Chord ring arithmetic on a 64-bit identifier circle.

/// A position on the identifier circle.
pub type Key = u64;

/// True when `x ∈ (a, b]` walking clockwise on the ring.
pub fn in_open_closed(a: Key, b: Key, x: Key) -> bool {
    if a == b {
        // Degenerate single-node interval covers the whole ring.
        return true;
    }
    if a < b {
        a < x && x <= b
    } else {
        x > a || x <= b
    }
}

/// True when `x ∈ (a, b)` walking clockwise on the ring.
pub fn in_open_open(a: Key, b: Key, x: Key) -> bool {
    if a == b {
        return x != a;
    }
    if a < b {
        a < x && x < b
    } else {
        x > a || x < b
    }
}

/// The start of finger `i` for node `n`: `n + 2^i (mod 2^64)`.
pub fn finger_start(n: Key, i: u32) -> Key {
    n.wrapping_add(1u64.wrapping_shl(i))
}

/// Hashes an arbitrary byte key onto the ring.
pub fn key_of(bytes: &[u8]) -> Key {
    // FNV-1a then a finalizer; good dispersion for ring placement.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    // splitmix64 finalizer
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Deterministic ring id for a simulator node index.
pub fn node_ring_id(node: usize) -> Key {
    key_of(format!("chord-node-{node}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_closed_basic_and_wrapping() {
        assert!(in_open_closed(10, 20, 15));
        assert!(in_open_closed(10, 20, 20));
        assert!(!in_open_closed(10, 20, 10));
        assert!(!in_open_closed(10, 20, 25));
        // Wrapping interval (a > b).
        assert!(in_open_closed(u64::MAX - 5, 5, 2));
        assert!(in_open_closed(u64::MAX - 5, 5, u64::MAX));
        assert!(!in_open_closed(u64::MAX - 5, 5, 100));
    }

    #[test]
    fn degenerate_interval_covers_ring() {
        assert!(in_open_closed(7, 7, 0));
        assert!(in_open_closed(7, 7, 7));
        assert!(!in_open_open(7, 7, 7));
        assert!(in_open_open(7, 7, 8));
    }

    #[test]
    fn finger_starts_double() {
        assert_eq!(finger_start(0, 0), 1);
        assert_eq!(finger_start(0, 3), 8);
        assert_eq!(finger_start(u64::MAX, 0), 0, "wraps");
        assert_eq!(finger_start(100, 63), 100u64.wrapping_add(1 << 63));
    }

    #[test]
    fn key_of_disperses() {
        let mut keys: Vec<Key> = (0..1000).map(|i| key_of(format!("k{i}").as_bytes())).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 1000, "no collisions on small sets");
        // Spread check: largest gap should be far below half the ring.
        let max_gap = keys.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap < u64::MAX / 20, "keys cluster too much: {max_gap}");
    }

    #[test]
    fn node_ring_ids_are_stable_and_distinct() {
        assert_eq!(node_ring_id(3), node_ring_id(3));
        assert_ne!(node_ring_id(3), node_ring_id(4));
    }
}
