//! Chord node behavior on the PASS network simulator.
//!
//! Implements the protocol pieces the §IV-C analysis needs to be honest:
//! recursive `find_successor` routing through finger tables, periodic
//! stabilization + finger repair, successor lists for failure tolerance,
//! and key replication to `r` successors. Nodes learn each other's ring
//! positions statically (the equivalent of knowing IP addresses) but
//! discover liveness and topology only through the protocol.

use crate::ring::{self, Key};
use pass_net::{Ctx, Input, Node, NodeId, TrafficClass};
use std::collections::HashMap;
use std::sync::Arc;

/// Timer tags.
const TIMER_STABILIZE: u64 = 1;
const TIMER_FIX_FINGER: u64 = 2;
/// High bit marks a lookup-timeout timer; the rest is the lookup id.
const TIMER_LOOKUP_FLAG: u64 = 1 << 63;
/// End-to-end lookup retry timeout.
const LOOKUP_TIMEOUT_US: u64 = 2_000_000;
/// Retries before a lookup is abandoned.
const MAX_LOOKUP_RETRIES: u32 = 3;

/// Tuning for the Chord behavior.
#[derive(Debug, Clone)]
pub struct ChordConfig {
    /// Successor-list length (failure tolerance).
    pub successor_list: usize,
    /// Stabilization period, microseconds.
    pub stabilize_every_us: u64,
    /// Finger-repair period, microseconds.
    pub fix_finger_every_us: u64,
    /// Number of replicas per key (1 = primary only).
    pub replicas: usize,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            successor_list: 4,
            stabilize_every_us: 200_000, // 200 ms
            fix_finger_every_us: 100_000,
            replicas: 1,
        }
    }
}

/// Chord protocol messages.
#[derive(Debug, Clone)]
pub enum ChordMsg {
    // -- Client operations (driver-injected) --
    /// Store `value` under `key`; completes `op` when acked.
    ClientPut {
        /// Ring key.
        key: Key,
        /// Payload.
        value: Vec<u8>,
        /// Driver operation id.
        op: u64,
    },
    /// Fetch `key`; completes `op` with a `GetReply` payload.
    ClientGet {
        /// Ring key.
        key: Key,
        /// Driver operation id.
        op: u64,
    },
    /// Resolve the node responsible for `key`; completes `op` (hop count
    /// is carried in the completion payload's `hops`).
    ClientLookup {
        /// Ring key.
        key: Key,
        /// Driver operation id.
        op: u64,
    },
    /// Append `item` to the list stored under `key` (PIER-style attribute
    /// posting maintenance); completes `op` when acked.
    ClientAppend {
        /// Ring key.
        key: Key,
        /// List item.
        item: Vec<u8>,
        /// Driver operation id.
        op: u64,
    },
    /// Fetch the list under `key`; completes `op` with a `ListReply`
    /// payload. `max_items = 0` fetches the whole list; a positive cap
    /// makes the holder truncate the reply — the bounded-page fetch
    /// behind limited queries, so a `LIMIT n` posting read ships ~n
    /// items instead of the full list.
    ClientGetList {
        /// Ring key.
        key: Key,
        /// Reply cap (0 = unlimited).
        max_items: usize,
        /// Driver operation id.
        op: u64,
    },

    // -- Routing --
    /// Recursive successor resolution.
    FindSuccessor {
        /// Target ring key.
        key: Key,
        /// Lookup correlation id.
        lookup: u64,
        /// Node that initiated the lookup (gets the answer).
        origin: NodeId,
        /// Hops taken so far.
        hops: u32,
    },
    /// Answer to [`ChordMsg::FindSuccessor`].
    SuccessorIs {
        /// Lookup correlation id.
        lookup: u64,
        /// The responsible node.
        holder: NodeId,
        /// Total routing hops.
        hops: u32,
    },

    // -- Stabilization --
    /// "Who is your predecessor?" (also serves as the liveness probe).
    GetPredecessor,
    /// Reply carrying predecessor and successor list.
    PredecessorIs {
        /// The replying node's predecessor, if known.
        pred: Option<NodeId>,
        /// The replying node's successor list (for list repair).
        successors: Vec<NodeId>,
    },
    /// "I might be your predecessor."
    Notify {
        /// The candidate predecessor.
        candidate: NodeId,
    },

    // -- Storage --
    /// Store at the responsible node.
    Store {
        /// Ring key.
        key: Key,
        /// Payload.
        value: Vec<u8>,
        /// Client op to ack.
        op: u64,
        /// Node to ack to.
        origin: NodeId,
    },
    /// Replicate to a successor (fire-and-forget).
    Replicate {
        /// Ring key.
        key: Key,
        /// Payload.
        value: Vec<u8>,
    },
    /// Ack for a completed store.
    StoreAck {
        /// Client op.
        op: u64,
    },
    /// Read at the responsible node.
    Fetch {
        /// Ring key.
        key: Key,
        /// Client op.
        op: u64,
        /// Node to reply to.
        origin: NodeId,
        /// Routing hops the lookup took (echoed in the reply).
        hops: u32,
    },
    /// Read result.
    FetchReply {
        /// Client op.
        op: u64,
        /// The value, if this replica holds it.
        value: Option<Vec<u8>>,
        /// Routing hops the lookup took.
        hops: u32,
    },

    /// Append at the responsible node.
    AppendItem {
        /// Ring key.
        key: Key,
        /// List item.
        item: Vec<u8>,
        /// Client op.
        op: u64,
        /// Node to ack to.
        origin: NodeId,
    },
    /// Replicate one list item to a successor.
    ReplicateItem {
        /// Ring key.
        key: Key,
        /// List item.
        item: Vec<u8>,
    },
    /// Read the list at the responsible node (`max_items = 0` reads it
    /// all; a positive cap bounds the reply).
    FetchList {
        /// Ring key.
        key: Key,
        /// Reply cap (0 = unlimited).
        max_items: usize,
        /// Client op.
        op: u64,
        /// Node to reply to.
        origin: NodeId,
        /// Routing hops the lookup took.
        hops: u32,
    },
    /// List read result.
    ListReply {
        /// Client op.
        op: u64,
        /// The items (empty when the key is unknown).
        items: Vec<Vec<u8>>,
        /// Routing hops the lookup took.
        hops: u32,
    },
}

/// What a node does once a lookup it initiated resolves.
#[derive(Debug, Clone)]
enum PendingAction {
    CompleteLookup { op: u64 },
    PutThen { key: Key, value: Vec<u8>, op: u64 },
    GetThen { key: Key, op: u64 },
    AppendThen { key: Key, item: Vec<u8>, op: u64 },
    GetListThen { key: Key, max_items: usize, op: u64 },
    JoinPoint,
    FixFinger { index: u32 },
}

impl PendingAction {
    /// The client op to fail when the lookup is abandoned, if any.
    fn client_op(&self) -> Option<u64> {
        match self {
            PendingAction::CompleteLookup { op }
            | PendingAction::PutThen { op, .. }
            | PendingAction::GetThen { op, .. }
            | PendingAction::AppendThen { op, .. }
            | PendingAction::GetListThen { op, .. } => Some(*op),
            PendingAction::JoinPoint | PendingAction::FixFinger { .. } => None,
        }
    }
}

/// An in-flight lookup with its retry budget.
#[derive(Debug, Clone)]
struct Pending {
    key: Key,
    action: PendingAction,
    retries: u32,
}

/// A Chord participant.
pub struct ChordNode {
    me: NodeId,
    id: Key,
    /// Static node-index → ring-id map (public knowledge, like IPs).
    ring_ids: Arc<Vec<Key>>,
    bootstrap: NodeId,
    config: ChordConfig,

    successors: Vec<NodeId>,
    predecessor: Option<NodeId>,
    fingers: Vec<Option<NodeId>>,
    next_finger: u32,
    store: HashMap<Key, Vec<u8>>,
    lists: HashMap<Key, Vec<Vec<u8>>>,

    pending: HashMap<u64, Pending>,
    /// Client op → lookup id, for ops whose pending entry lives until the
    /// final ack (put/get/append/list) so timeouts cover the whole flow.
    op_to_lookup: HashMap<u64, u64>,
    next_lookup: u64,
    /// True while a stabilization probe awaits its reply.
    probe_outstanding: bool,
    /// Consecutive stabilization ticks whose probe went unanswered. The
    /// successor is presumed dead only after two misses: one slow reply
    /// (queueing under load) must not shred the ring.
    missed_probes: u32,
    joined: bool,
}

impl ChordNode {
    /// Creates a node for simulator slot `me`. `bootstrap` anchors joins
    /// (conventionally node 0).
    pub fn new(
        me: NodeId,
        ring_ids: Arc<Vec<Key>>,
        bootstrap: NodeId,
        config: ChordConfig,
    ) -> Self {
        let id = ring_ids[me];
        ChordNode {
            me,
            id,
            ring_ids,
            bootstrap,
            config,
            successors: Vec::new(),
            predecessor: None,
            fingers: vec![None; 64],
            next_finger: 0,
            store: HashMap::new(),
            lists: HashMap::new(),
            pending: HashMap::new(),
            op_to_lookup: HashMap::new(),
            next_lookup: (me as u64) << 32,
            probe_outstanding: false,
            missed_probes: 0,
            joined: false,
        }
    }

    /// This node's ring id.
    pub fn ring_id(&self) -> Key {
        self.id
    }

    /// Current successor, if joined.
    pub fn successor(&self) -> Option<NodeId> {
        self.successors.first().copied()
    }

    /// Keys held locally (primaries and replicas).
    pub fn stored_keys(&self) -> usize {
        self.store.len()
    }

    /// True once the node has a successor.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    fn id_of(&self, node: NodeId) -> Key {
        self.ring_ids[node]
    }

    /// Closest finger (or successor) preceding `key`, for routing.
    fn closest_preceding(&self, key: Key) -> Option<NodeId> {
        for f in self.fingers.iter().rev().flatten() {
            if ring::in_open_open(self.id, key, self.id_of(*f)) {
                return Some(*f);
            }
        }
        self.successor().filter(|s| ring::in_open_open(self.id, key, self.id_of(*s)))
    }

    fn start_lookup(&mut self, ctx: &mut Ctx<'_, ChordMsg>, key: Key, action: PendingAction) {
        let lookup = self.next_lookup;
        self.next_lookup += 1;
        if let Some(op) = action.client_op() {
            self.op_to_lookup.insert(op, lookup);
        }
        self.pending.insert(lookup, Pending { key, action, retries: 0 });
        ctx.set_timer(LOOKUP_TIMEOUT_US, TIMER_LOOKUP_FLAG | lookup);
        // Route from self: handle as though we received FindSuccessor.
        self.route_find_successor(ctx, key, lookup, self.me, 0);
    }

    /// Retires the pending entry backing a client op, if it still exists.
    /// Returns false when the op was already completed (duplicate ack from
    /// a retried flow).
    fn retire_op(&mut self, op: u64) -> bool {
        match self.op_to_lookup.remove(&op) {
            Some(lookup) => {
                self.pending.remove(&lookup);
                true
            }
            None => false,
        }
    }

    /// Lookup routed through the bootstrap — used while this node has no
    /// routing state of its own (join, re-join after crash).
    fn start_lookup_via_bootstrap(
        &mut self,
        ctx: &mut Ctx<'_, ChordMsg>,
        key: Key,
        action: PendingAction,
    ) {
        let lookup = self.next_lookup;
        self.next_lookup += 1;
        if let Some(op) = action.client_op() {
            self.op_to_lookup.insert(op, lookup);
        }
        self.pending.insert(lookup, Pending { key, action, retries: 0 });
        ctx.set_timer(LOOKUP_TIMEOUT_US, TIMER_LOOKUP_FLAG | lookup);
        ctx.send(
            self.bootstrap,
            ChordMsg::FindSuccessor { key, lookup, origin: self.me, hops: 1 },
            48,
            TrafficClass::Maintenance,
        );
    }

    /// A lookup-timeout timer fired: the message was probably dropped by
    /// a dead hop. Retry from scratch (routing state may have healed), or
    /// abandon and fail the client op after the retry budget runs out.
    fn on_lookup_timeout(&mut self, ctx: &mut Ctx<'_, ChordMsg>, lookup: u64) {
        let Some(pending) = self.pending.get_mut(&lookup) else {
            return; // already resolved
        };
        pending.retries += 1;
        if pending.retries > MAX_LOOKUP_RETRIES {
            let pending = self.pending.remove(&lookup).expect("checked above");
            if let Some(op) = pending.action.client_op() {
                self.op_to_lookup.remove(&op);
                ctx.complete(op, false);
            }
            return;
        }
        let key = pending.key;
        ctx.set_timer(LOOKUP_TIMEOUT_US, TIMER_LOOKUP_FLAG | lookup);
        self.route_find_successor(ctx, key, lookup, self.me, 0);
    }

    fn route_find_successor(
        &mut self,
        ctx: &mut Ctx<'_, ChordMsg>,
        key: Key,
        lookup: u64,
        origin: NodeId,
        hops: u32,
    ) {
        let Some(succ) = self.successor() else {
            // Not joined: only the bootstrap in a fresh ring answers with
            // itself.
            ctx.send(
                origin,
                ChordMsg::SuccessorIs { lookup, holder: self.me, hops },
                40,
                TrafficClass::Query,
            );
            return;
        };
        if ring::in_open_closed(self.id, self.id_of(succ), key) {
            ctx.send(
                origin,
                ChordMsg::SuccessorIs { lookup, holder: succ, hops },
                40,
                TrafficClass::Query,
            );
            return;
        }
        let next = self.closest_preceding(key).unwrap_or(succ);
        if next == self.me {
            ctx.send(
                origin,
                ChordMsg::SuccessorIs { lookup, holder: self.me, hops },
                40,
                TrafficClass::Query,
            );
            return;
        }
        ctx.send(
            next,
            ChordMsg::FindSuccessor { key, lookup, origin, hops: hops + 1 },
            48,
            TrafficClass::Query,
        );
    }

    fn on_lookup_resolved(
        &mut self,
        ctx: &mut Ctx<'_, ChordMsg>,
        lookup: u64,
        holder: NodeId,
        hops: u32,
    ) {
        // Client-op flows keep their pending entry (and its retry timer)
        // alive until the final ack; join/finger lookups retire here.
        let Some(Pending { action, .. }) = self.pending.get(&lookup).cloned() else {
            return;
        };
        match action {
            PendingAction::CompleteLookup { op } => {
                if self.retire_op(op) {
                    ctx.complete_with(op, true, ChordMsg::FetchReply { op, value: None, hops });
                }
            }
            PendingAction::PutThen { key, value, op } => {
                ctx.send(
                    holder,
                    ChordMsg::Store { key, value, op, origin: self.me },
                    64,
                    TrafficClass::Update,
                );
            }
            PendingAction::GetThen { key, op } => {
                ctx.send(
                    holder,
                    ChordMsg::Fetch { key, op, origin: self.me, hops },
                    48,
                    TrafficClass::Query,
                );
            }
            PendingAction::AppendThen { key, item, op } => {
                let bytes = 64 + item.len() as u64;
                ctx.send(
                    holder,
                    ChordMsg::AppendItem { key, item, op, origin: self.me },
                    bytes,
                    TrafficClass::Update,
                );
            }
            PendingAction::GetListThen { key, max_items, op } => {
                ctx.send(
                    holder,
                    ChordMsg::FetchList { key, max_items, op, origin: self.me, hops },
                    48,
                    TrafficClass::Query,
                );
            }
            PendingAction::JoinPoint => {
                self.pending.remove(&lookup);
                if holder == self.me {
                    // The ring believes we already own our own key (we are
                    // the only member it can see); anchor on the bootstrap.
                    if self.me != self.bootstrap {
                        self.successors = vec![self.bootstrap];
                        self.joined = true;
                    }
                } else {
                    self.successors = vec![holder];
                    self.joined = true;
                }
            }
            PendingAction::FixFinger { index } => {
                self.pending.remove(&lookup);
                if holder != self.me {
                    self.fingers[index as usize] = Some(holder);
                }
            }
        }
    }

    fn stabilize(&mut self, ctx: &mut Ctx<'_, ChordMsg>) {
        if self.probe_outstanding {
            self.missed_probes += 1;
        }
        if self.missed_probes >= 2 {
            // Two consecutive silent probes: presume the successor dead.
            // (Fingers pointing at it are repaired lazily by fix_finger.)
            self.missed_probes = 0;
            if !self.successors.is_empty() {
                let dead = self.successors.remove(0);
                // Stop routing through the dead node immediately.
                for finger in &mut self.fingers {
                    if *finger == Some(dead) {
                        *finger = None;
                    }
                }
                self.successors.retain(|&s| s != dead);
            }
            if self.successors.is_empty() {
                // Lost the whole list: re-join through the bootstrap.
                self.joined = false;
                if self.me != self.bootstrap {
                    let key = self.id;
                    self.start_lookup_via_bootstrap(ctx, key, PendingAction::JoinPoint);
                } else {
                    self.successors = vec![self.me];
                    self.joined = true;
                }
            }
        }
        if let Some(succ) = self.successor() {
            self.probe_outstanding = true;
            ctx.send(succ, ChordMsg::GetPredecessor, 24, TrafficClass::Maintenance);
        }
        ctx.set_timer(self.config.stabilize_every_us, TIMER_STABILIZE);
    }

    fn fix_one_finger(&mut self, ctx: &mut Ctx<'_, ChordMsg>) {
        if self.joined || self.me == self.bootstrap {
            let index = self.next_finger;
            self.next_finger = (self.next_finger + 1) % 64;
            let start = ring::finger_start(self.id, index);
            self.start_lookup(ctx, start, PendingAction::FixFinger { index });
        }
        ctx.set_timer(self.config.fix_finger_every_us, TIMER_FIX_FINGER);
    }
}

impl Node<ChordMsg> for ChordNode {
    fn on_input(&mut self, ctx: &mut Ctx<'_, ChordMsg>, input: Input<ChordMsg>) {
        match input {
            Input::Start => {
                // (Re)start: volatile routing state is rebuilt by joining.
                if self.me == self.bootstrap {
                    // Bootstrap anchors a fresh ring pointing at itself.
                    if self.successors.is_empty() {
                        self.successors = vec![self.me];
                    }
                    self.joined = true;
                } else {
                    let key = self.id;
                    self.start_lookup_via_bootstrap(ctx, key, PendingAction::JoinPoint);
                }
                ctx.set_timer(self.config.stabilize_every_us, TIMER_STABILIZE);
                ctx.set_timer(self.config.fix_finger_every_us, TIMER_FIX_FINGER);
            }
            Input::Timer { tag } => match tag {
                TIMER_STABILIZE => self.stabilize(ctx),
                TIMER_FIX_FINGER => self.fix_one_finger(ctx),
                tag if tag & TIMER_LOOKUP_FLAG != 0 => {
                    self.on_lookup_timeout(ctx, tag & !TIMER_LOOKUP_FLAG);
                }
                _ => {}
            },
            Input::Message { from, msg } => match msg {
                ChordMsg::ClientPut { key, value, op } => {
                    self.start_lookup(ctx, key, PendingAction::PutThen { key, value, op });
                }
                ChordMsg::ClientGet { key, op } => {
                    self.start_lookup(ctx, key, PendingAction::GetThen { key, op });
                }
                ChordMsg::ClientLookup { key, op } => {
                    self.start_lookup(ctx, key, PendingAction::CompleteLookup { op });
                }
                ChordMsg::ClientAppend { key, item, op } => {
                    self.start_lookup(ctx, key, PendingAction::AppendThen { key, item, op });
                }
                ChordMsg::ClientGetList { key, max_items, op } => {
                    self.start_lookup(ctx, key, PendingAction::GetListThen { key, max_items, op });
                }
                ChordMsg::FindSuccessor { key, lookup, origin, hops } => {
                    self.route_find_successor(ctx, key, lookup, origin, hops);
                }
                ChordMsg::SuccessorIs { lookup, holder, hops } => {
                    self.on_lookup_resolved(ctx, lookup, holder, hops);
                }
                ChordMsg::GetPredecessor => {
                    ctx.send(
                        from,
                        ChordMsg::PredecessorIs {
                            pred: self.predecessor,
                            successors: self.successors.clone(),
                        },
                        48,
                        TrafficClass::Maintenance,
                    );
                }
                ChordMsg::PredecessorIs { pred, successors } => {
                    self.probe_outstanding = false;
                    self.missed_probes = 0;
                    if let (Some(p), Some(succ)) = (pred, self.successor()) {
                        if p != self.me
                            && ring::in_open_open(self.id, self.id_of(succ), self.id_of(p))
                        {
                            // A closer successor exists.
                            self.successors.insert(0, p);
                        }
                    }
                    // Rebuild the successor list from the successor's view.
                    if let Some(succ) = self.successor() {
                        let mut list = vec![succ];
                        for s in successors {
                            if s != self.me && !list.contains(&s) {
                                list.push(s);
                            }
                            if list.len() >= self.config.successor_list {
                                break;
                            }
                        }
                        self.successors = list;
                        self.joined = true;
                        ctx.send(
                            succ,
                            ChordMsg::Notify { candidate: self.me },
                            24,
                            TrafficClass::Maintenance,
                        );
                    }
                }
                ChordMsg::Notify { candidate } => {
                    let adopt = match self.predecessor {
                        None => true,
                        Some(p) => {
                            ring::in_open_open(self.id_of(p), self.id, self.id_of(candidate))
                        }
                    };
                    if adopt && candidate != self.me {
                        self.predecessor = Some(candidate);
                    }
                }
                ChordMsg::Store { key, value, op, origin } => {
                    self.store.insert(key, value.clone());
                    // Replicate to r-1 successors.
                    for &s in self.successors.iter().take(self.config.replicas.saturating_sub(1)) {
                        if s != self.me {
                            ctx.send(
                                s,
                                ChordMsg::Replicate { key, value: value.clone() },
                                64 + value.len() as u64,
                                TrafficClass::Maintenance,
                            );
                        }
                    }
                    ctx.send(origin, ChordMsg::StoreAck { op }, 24, TrafficClass::Update);
                }
                ChordMsg::Replicate { key, value } => {
                    self.store.insert(key, value);
                }
                ChordMsg::StoreAck { op } => {
                    if self.retire_op(op) {
                        ctx.complete(op, true);
                    }
                }
                ChordMsg::Fetch { key, op, origin, hops } => {
                    let value = self.store.get(&key).cloned();
                    let found = value.is_some();
                    ctx.send(
                        origin,
                        ChordMsg::FetchReply { op, value, hops },
                        if found { 128 } else { 32 },
                        TrafficClass::Query,
                    );
                }
                ChordMsg::FetchReply { op, value, hops } => {
                    if self.retire_op(op) {
                        let ok = value.is_some();
                        ctx.complete_with(op, ok, ChordMsg::FetchReply { op, value, hops });
                    }
                }
                ChordMsg::AppendItem { key, item, op, origin } => {
                    self.lists.entry(key).or_default().push(item.clone());
                    for &s in self.successors.iter().take(self.config.replicas.saturating_sub(1)) {
                        if s != self.me {
                            ctx.send(
                                s,
                                ChordMsg::ReplicateItem { key, item: item.clone() },
                                64 + item.len() as u64,
                                TrafficClass::Maintenance,
                            );
                        }
                    }
                    ctx.send(origin, ChordMsg::StoreAck { op }, 24, TrafficClass::Update);
                }
                ChordMsg::ReplicateItem { key, item } => {
                    self.lists.entry(key).or_default().push(item);
                }
                ChordMsg::FetchList { key, max_items, op, origin, hops } => {
                    let mut items = self.lists.get(&key).cloned().unwrap_or_default();
                    if max_items > 0 {
                        items.truncate(max_items);
                    }
                    let bytes = 32 + items.iter().map(|i| i.len() as u64).sum::<u64>();
                    ctx.send(
                        origin,
                        ChordMsg::ListReply { op, items, hops },
                        bytes,
                        TrafficClass::Query,
                    );
                }
                ChordMsg::ListReply { op, items, hops } => {
                    if self.retire_op(op) {
                        ctx.complete_with(op, true, ChordMsg::ListReply { op, items, hops });
                    }
                }
            },
        }
    }

    fn on_crash(&mut self) {
        // Routing state is volatile; stored keys are lost too (a crashed
        // peer's disk is gone from the ring's perspective).
        self.successors.clear();
        self.predecessor = None;
        self.fingers = vec![None; 64];
        self.store.clear();
        self.lists.clear();
        self.pending.clear();
        self.op_to_lookup.clear();
        self.probe_outstanding = false;
        self.missed_probes = 0;
        self.joined = false;
    }
}
