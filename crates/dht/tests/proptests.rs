//! Property tests for the Chord ring: interval arithmetic laws and
//! end-to-end put/get correctness on randomly sized rings.

use pass_dht::ring::{finger_start, in_open_closed, in_open_open, key_of, node_ring_id};
use pass_dht::{ChordConfig, DhtHarness};
use pass_net::{SimTime, Topology};
use proptest::prelude::*;

proptest! {
    /// `(a, b]` and its complement `(b, a]` partition the ring (minus
    /// the degenerate a == b case).
    #[test]
    fn open_closed_partitions_the_ring(a in any::<u64>(), b in any::<u64>(), x in any::<u64>()) {
        prop_assume!(a != b);
        let in_ab = in_open_closed(a, b, x);
        let in_ba = in_open_closed(b, a, x);
        prop_assert!(in_ab ^ in_ba, "exactly one side must contain x={x} for a={a}, b={b}");
    }

    /// Open-open is a strict subset of open-closed.
    #[test]
    fn open_open_subset_of_open_closed(a in any::<u64>(), b in any::<u64>(), x in any::<u64>()) {
        if in_open_open(a, b, x) {
            prop_assert!(in_open_closed(a, b, x));
        }
    }

    /// The interval endpoint is always inside open-closed, never inside
    /// open-open.
    #[test]
    fn endpoint_membership(a in any::<u64>(), b in any::<u64>()) {
        prop_assert!(in_open_closed(a, b, b));
        if a != b {
            prop_assert!(!in_open_open(a, b, b));
            prop_assert!(!in_open_closed(a, b, a));
        }
    }

    /// Finger starts are strictly increasing distances from the node.
    #[test]
    fn finger_distances_double(n in any::<u64>(), i in 0u32..63) {
        let d1 = finger_start(n, i).wrapping_sub(n);
        let d2 = finger_start(n, i + 1).wrapping_sub(n);
        prop_assert_eq!(d1, 1u64 << i);
        prop_assert_eq!(d2, 1u64 << (i + 1));
    }

    /// Hashing is deterministic and input-sensitive.
    #[test]
    fn key_of_deterministic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(key_of(&data), key_of(&data));
        let mut tweaked = data.clone();
        tweaked.push(0x5a);
        prop_assert_ne!(key_of(&data), key_of(&tweaked));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On a stable ring of arbitrary size, every put is readable from
    /// every node afterwards.
    #[test]
    fn puts_are_readable_from_anywhere(
        n_nodes in 3usize..12,
        items in proptest::collection::vec("[a-z]{1,12}", 1..8),
    ) {
        let mut h = DhtHarness::build(
            Topology::uniform(n_nodes, 5.0),
            ChordConfig::default(),
            1234,
        );
        let issued = h.sim.now();
        for (i, item) in items.iter().enumerate() {
            h.put(i % n_nodes, key_of(item.as_bytes()), item.clone().into_bytes());
        }
        let outcomes = h.run_and_collect(SimTime::from_secs(30), issued);
        prop_assert!(outcomes.iter().all(|o| o.ok), "all puts acked");

        let issued = h.sim.now();
        for (i, item) in items.iter().enumerate() {
            h.get((i + 1) % n_nodes, key_of(item.as_bytes()));
        }
        let outcomes = h.run_and_collect(SimTime::from_secs(30), issued);
        prop_assert_eq!(outcomes.len(), items.len());
        prop_assert!(outcomes.iter().all(|o| o.ok), "all gets found their value");
    }

    /// Node ring ids never collide for realistic fleet sizes.
    #[test]
    fn node_ids_unique(n in 2usize..200) {
        let mut ids: Vec<u64> = (0..n).map(node_ring_id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }
}
