//! Write-ahead log.
//!
//! Record framing: `[len: u32 LE][crc32c(payload): u32 LE][payload]`.
//! Recovery reads records until end-of-file, a short read, or a CRC
//! mismatch; everything after the first bad record is discarded as a torn
//! tail (and physically truncated, so later appends don't interleave with
//! garbage). This is the mechanism behind the paper's reliability
//! criterion: after a crash, the visible state is exactly a prefix of the
//! committed operations.

use crate::crc::crc32c;
use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Maximum accepted record payload (defensive bound while recovering).
const MAX_RECORD_LEN: u32 = 256 << 20;

/// Controls when appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every record: maximal durability, slowest.
    Always,
    /// Flush userspace buffers per record, `fsync` only on engine flush.
    /// Survives process crashes, not OS crashes. The default.
    #[default]
    OnWrite,
    /// Buffer freely; sync only on close/flush. Fastest, least durable.
    Lazy,
}

/// An append-only log writer.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    policy: SyncPolicy,
    len: u64,
}

impl Wal {
    /// Creates (or truncates) a log at `path`.
    pub fn create(path: impl Into<PathBuf>, policy: SyncPolicy) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StorageError::io(format!("creating WAL {}", path.display()), e))?;
        Ok(Wal { path, writer: BufWriter::new(file), policy, len: 0 })
    }

    /// Opens an existing log for appending at `offset` (which recovery
    /// determined to be the end of the valid prefix).
    pub fn open_for_append(
        path: impl Into<PathBuf>,
        policy: SyncPolicy,
        offset: u64,
    ) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| StorageError::io(format!("opening WAL {}", path.display()), e))?;
        // Discard any torn tail so new records start on a clean boundary.
        file.set_len(offset).map_err(|e| StorageError::io("truncating torn WAL tail", e))?;
        let mut writer = BufWriter::new(file);
        writer
            .seek(SeekFrom::Start(offset))
            .map_err(|e| StorageError::io("seeking WAL append position", e))?;
        Ok(Wal { path, writer, policy, len: offset })
    }

    /// Appends one record; returns its starting offset.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let offset = self.len;
        let len = u32::try_from(payload.len())
            .map_err(|_| StorageError::corrupt(&self.path, "record exceeds u32 length"))?;
        let crc = crc32c(payload);
        self.writer
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.writer.write_all(&crc.to_le_bytes()))
            .and_then(|()| self.writer.write_all(payload))
            .map_err(|e| StorageError::io("appending WAL record", e))?;
        self.len += 8 + u64::from(len);
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::OnWrite => {
                self.writer.flush().map_err(|e| StorageError::io("flushing WAL buffer", e))?
            }
            SyncPolicy::Lazy => {}
        }
        Ok(offset)
    }

    /// Flushes buffers and `fsync`s the file.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush().map_err(|e| StorageError::io("flushing WAL buffer", e))?;
        self.writer.get_ref().sync_data().map_err(|e| StorageError::io("fsyncing WAL", e))
    }

    /// Bytes of valid log written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The outcome of scanning a log during recovery.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every fully-valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Offset of the end of the valid prefix (start of any torn tail).
    pub valid_len: u64,
    /// True when a torn/corrupt tail was detected and discarded.
    pub torn_tail: bool,
}

/// Reads all valid records from a log file.
///
/// Stops — without erroring — at the first short read or CRC mismatch:
/// that is the torn tail of an interrupted append, the expected crash
/// artifact. Corruption *before* the tail cannot be distinguished from a
/// tail by a single scan, so like other LSM engines we treat the valid
/// prefix as the committed state.
pub fn recover(path: &Path) -> Result<WalRecovery> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalRecovery { records: Vec::new(), valid_len: 0, torn_tail: false })
        }
        Err(e) => return Err(StorageError::io(format!("opening WAL {}", path.display()), e)),
    };
    let file_len = file.metadata().map_err(|e| StorageError::io("statting WAL", e))?.len();
    let mut records = Vec::new();
    let mut offset = 0u64;
    let mut len_bytes = [0u8; 4];
    let mut crc_bytes = [0u8; 4];
    loop {
        if offset + 8 > file_len {
            break;
        }
        file.read_exact(&mut len_bytes)
            .and_then(|()| file.read_exact(&mut crc_bytes))
            .map_err(|e| StorageError::io("reading WAL header", e))?;
        let len = u32::from_le_bytes(len_bytes);
        let crc = u32::from_le_bytes(crc_bytes);
        if len > MAX_RECORD_LEN || offset + 8 + u64::from(len) > file_len {
            // Length prefix points past EOF: torn header or torn payload.
            break;
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload).map_err(|e| StorageError::io("reading WAL payload", e))?;
        if crc32c(&payload) != crc {
            break;
        }
        records.push(payload);
        offset += 8 + u64::from(len);
    }
    Ok(WalRecovery { records, valid_len: offset, torn_tail: offset < file_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn append_and_recover_round_trip() {
        let dir = TempDir::new("wal-rt");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::create(&path, SyncPolicy::OnWrite).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"").unwrap();
        wal.append(b"third record").unwrap();
        drop(wal);

        let rec = recover(&path).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records, vec![b"first".to_vec(), b"".to_vec(), b"third record".to_vec()]);
    }

    #[test]
    fn missing_file_recovers_empty() {
        let dir = TempDir::new("wal-missing");
        let rec = recover(&dir.path().join("nope.log")).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::create(&path, SyncPolicy::OnWrite).unwrap();
        wal.append(b"record one").unwrap();
        let second_start = wal.append(b"record two!").unwrap();
        let full = wal.len();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();

        // Truncating anywhere inside record two must recover exactly record one.
        for cut in second_start + 1..full {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let rec = recover(&path).unwrap();
            assert_eq!(rec.records.len(), 1, "cut at {cut}");
            assert_eq!(rec.records[0], b"record one");
            assert_eq!(rec.valid_len, second_start);
            assert!(rec.torn_tail);
        }
    }

    #[test]
    fn corrupted_payload_byte_stops_recovery() {
        let dir = TempDir::new("wal-corrupt");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::create(&path, SyncPolicy::OnWrite).unwrap();
        wal.append(b"good record").unwrap();
        wal.append(b"will be corrupted").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover(&path).unwrap();
        assert_eq!(rec.records, vec![b"good record".to_vec()]);
        assert!(rec.torn_tail);
    }

    #[test]
    fn append_after_recovery_continues_cleanly() {
        let dir = TempDir::new("wal-cont");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::create(&path, SyncPolicy::OnWrite).unwrap();
        wal.append(b"one").unwrap();
        drop(wal);
        // Simulate a torn append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[42, 0, 0, 0]); // half a header
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover(&path).unwrap();
        assert!(rec.torn_tail);
        let mut wal = Wal::open_for_append(&path, SyncPolicy::OnWrite, rec.valid_len).unwrap();
        wal.append(b"two").unwrap();
        drop(wal);

        let rec = recover(&path).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn sync_policies_all_persist_after_drop() {
        for policy in [SyncPolicy::Always, SyncPolicy::OnWrite, SyncPolicy::Lazy] {
            let dir = TempDir::new("wal-sync");
            let path = dir.path().join("wal.log");
            let mut wal = Wal::create(&path, policy).unwrap();
            wal.append(b"data").unwrap();
            wal.sync().unwrap();
            drop(wal);
            let rec = recover(&path).unwrap();
            assert_eq!(rec.records.len(), 1, "{policy:?}");
        }
    }
}
