//! The storage interface the rest of PASS programs against.

use crate::batch::WriteBatch;
use crate::error::Result;

/// A transactional, sorted key-value store.
///
/// Two backends exist: [`crate::LsmEngine`] (durable, log-structured) and
/// [`crate::MemEngine`] (volatile, for tests and simulations where
/// thousands of stores coexist in one process).
pub trait KvStore: Send + Sync {
    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Applies a batch atomically: after a crash, either every operation
    /// in the batch is visible or none is.
    fn apply(&self, batch: WriteBatch) -> Result<()>;

    /// Entries with `start <= key < end`, in key order. `end = None` means
    /// unbounded. Tombstoned/absent keys are not returned.
    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Forces buffered state to stable storage (no-op for volatile backends).
    fn flush(&self) -> Result<()>;

    /// Convenience single-key insert.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key.to_vec(), value.to_vec());
        self.apply(batch)
    }

    /// Convenience single-key delete.
    fn delete(&self, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key.to_vec());
        self.apply(batch)
    }

    /// All entries whose key starts with `prefix`, in key order.
    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match prefix_successor(prefix) {
            Some(end) => self.scan_range(prefix, Some(&end)),
            None => self.scan_range(prefix, None),
        }
    }
}

/// The smallest key strictly greater than every key with this prefix, or
/// `None` when no such key exists (prefix is empty or all `0xff`).
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_successor_basic() {
        assert_eq!(prefix_successor(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_successor(&[0x01, 0xff]), Some(vec![0x02]));
        assert_eq!(prefix_successor(&[0xff, 0xff]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn prefix_successor_bounds_all_prefixed_keys() {
        let prefix = [0x10u8, 0xff];
        let succ = prefix_successor(&prefix).unwrap();
        // Every key starting with the prefix sorts below the successor.
        for tail in [vec![], vec![0x00], vec![0xff, 0xff]] {
            let mut key = prefix.to_vec();
            key.extend(tail);
            assert!(key.as_slice() < succ.as_slice());
        }
        // And the successor itself does not carry the prefix.
        assert!(!succ.starts_with(&prefix));
    }
}
