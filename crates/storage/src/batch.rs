//! Atomic write batches.
//!
//! `pass-core` writes `{data blob, provenance record, index deltas}` as one
//! batch so that a crash leaves either all of them visible or none — the
//! coupling §IV-A says loosely-coupled indexes lack.

use crate::error::{Result, StorageError};
use crate::{MAX_KEY_LEN, MAX_VALUE_LEN};

/// One operation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert or overwrite.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove (writes a tombstone).
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Put { key, .. } | Op::Delete { key } => key,
        }
    }
}

/// An ordered set of operations applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<Op>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queues a put.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(Op::Put { key: key.into(), value: value.into() });
        self
    }

    /// Queues a delete.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(Op::Delete { key: key.into() });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations, in application order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consumes the batch.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Validates size limits; called by engines before accepting a batch.
    pub fn validate(&self) -> Result<()> {
        for op in &self.ops {
            let (klen, vlen) = match op {
                Op::Put { key, value } => (key.len(), value.len()),
                Op::Delete { key } => (key.len(), 0),
            };
            if klen == 0 || klen > MAX_KEY_LEN || vlen > MAX_VALUE_LEN {
                return Err(StorageError::OversizeEntry { key_len: klen, value_len: vlen });
            }
        }
        Ok(())
    }

    /// Serializes the batch into a WAL payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.ops.len() * 32 + 4);
        put_varint(&mut buf, self.ops.len() as u64);
        for op in &self.ops {
            match op {
                Op::Put { key, value } => {
                    buf.push(1);
                    put_varint(&mut buf, key.len() as u64);
                    buf.extend_from_slice(key);
                    put_varint(&mut buf, value.len() as u64);
                    buf.extend_from_slice(value);
                }
                Op::Delete { key } => {
                    buf.push(2);
                    put_varint(&mut buf, key.len() as u64);
                    buf.extend_from_slice(key);
                }
            }
        }
        buf
    }

    /// Deserializes a WAL payload. `None` means malformed (treated as
    /// corruption by the caller, which knows the file/offset).
    pub(crate) fn decode(payload: &[u8]) -> Option<WriteBatch> {
        let mut pos = 0usize;
        let count = take_varint(payload, &mut pos)?;
        let mut batch = WriteBatch::new();
        for _ in 0..count {
            let tag = *payload.get(pos)?;
            pos += 1;
            match tag {
                1 => {
                    let key = take_slice(payload, &mut pos)?;
                    let value = take_slice(payload, &mut pos)?;
                    batch.put(key, value);
                }
                2 => {
                    let key = take_slice(payload, &mut pos)?;
                    batch.delete(key);
                }
                _ => return None,
            }
        }
        (pos == payload.len()).then_some(batch)
    }
}

/// Reads a little-endian `u32` at `at`, `None` when out of range. The
/// fallible twin of `u32::from_le_bytes` + slice indexing, so decoding
/// paths surface truncated files as errors instead of slice panics.
pub(crate) fn take_u32_le(buf: &[u8], at: usize) -> Option<u32> {
    let bytes = buf.get(at..at.checked_add(4)?)?;
    <[u8; 4]>::try_from(bytes).ok().map(u32::from_le_bytes)
}

/// Reads a little-endian `u64` at `at`, `None` when out of range.
pub(crate) fn take_u64_le(buf: &[u8], at: usize) -> Option<u64> {
    let bytes = buf.get(at..at.checked_add(8)?)?;
    <[u8; 8]>::try_from(bytes).ok().map(u64::from_le_bytes)
}

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

pub(crate) fn take_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None;
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn take_slice<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = take_varint(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    let out = buf.get(*pos..end)?;
    *pos = end;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut b = WriteBatch::new();
        b.put(b"k1".to_vec(), b"v1".to_vec());
        b.delete(b"k2".to_vec());
        b.put(b"".to_vec(), b"".to_vec()); // empty value is legal in codec
        let enc = b.encode();
        assert_eq!(WriteBatch::decode(&enc), Some(b));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut b = WriteBatch::new();
        b.put(b"key".to_vec(), b"value".to_vec());
        let enc = b.encode();
        for cut in 0..enc.len() {
            assert_eq!(WriteBatch::decode(&enc[..cut]), None, "prefix of len {cut}");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut b = WriteBatch::new();
        b.put(b"k".to_vec(), b"v".to_vec());
        let mut enc = b.encode();
        enc.push(0);
        assert_eq!(WriteBatch::decode(&enc), None);
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut enc = Vec::new();
        put_varint(&mut enc, 1);
        enc.push(9); // no such op
        assert_eq!(WriteBatch::decode(&enc), None);
    }

    #[test]
    fn validate_rejects_empty_and_oversize_keys() {
        let mut b = WriteBatch::new();
        b.put(b"".to_vec(), b"v".to_vec());
        assert!(b.validate().is_err(), "empty key rejected");

        let mut b = WriteBatch::new();
        b.put(vec![0u8; MAX_KEY_LEN + 1], b"v".to_vec());
        assert!(b.validate().is_err(), "oversize key rejected");

        let mut b = WriteBatch::new();
        b.put(b"k".to_vec(), b"v".to_vec());
        assert!(b.validate().is_ok());
    }
}
