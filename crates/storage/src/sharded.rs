//! Horizontally sharded storage: N child stores behind one [`KvStore`].
//!
//! Each shard is an independent engine — its own WAL, memtable, and
//! SSTables when the children are [`crate::LsmEngine`]s — so writers
//! touching different shards never contend on storage. A router function
//! (supplied by the layer that owns the key layout) maps every key to
//! its shard; all keys of one logical object must route to the same
//! shard for single-shard commits to stay atomic.
//!
//! # Cross-shard atomicity: the intent log
//!
//! A batch that spans shards cannot be made atomic by the shard WALs
//! alone: each WAL only covers its own shard, and a crash between the
//! per-shard appends would tear the commit. Worse, a shard may have
//! already flushed its fragment into an SSTable — there is nothing to
//! roll *back*. So cross-shard commits roll **forward** through a
//! coordinator intent log (`xcommit.log`):
//!
//! 1. the **full** batch is appended to the intent log (one record,
//!    CRC-framed by the WAL codec) and made durable per the sync
//!    policy — this append is the commit point;
//! 2. the per-shard sub-batches are applied to their shard engines;
//! 3. the intent log is truncated to empty — the completion mark.
//!
//! Recovery at open replays a non-empty intent log: re-split the batch
//! by the router and re-apply every sub-batch (puts and deletes are
//! idempotent, so shards that already applied are unaffected). A torn
//! intent record means the commit point was never reached — no shard
//! was touched — and the log is discarded. Either way the commit is
//! all-or-nothing.
//!
//! Replay is only sound because nothing can overwrite the pending
//! commit's keys between steps 1 and 3: the caller holds the commit
//! locks of every participating shard across the whole protocol, and
//! the intent-log mutex serializes cross-shard commits with each other.
//! The log therefore never holds more than the single most recent —
//! and only possibly-incomplete — cross-shard commit, so replaying it
//! can never resurrect stale values.
//!
//! Once the intent record is durable, the commit *will* complete (if
//! not by the writer, then by recovery) even if a later step returns an
//! error to the caller — the usual fate of a transaction that fails
//! after its commit point.

use crate::batch::{Op, WriteBatch};
use crate::error::{Result, StorageError};
use crate::kv::KvStore;
use crate::wal::{self, SyncPolicy, Wal};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::Arc;

/// Maps a key to the index of the shard that owns it.
pub type ShardRouter = Box<dyn Fn(&[u8]) -> usize + Send + Sync>;

/// N child [`KvStore`]s behind one routed [`KvStore`] facade.
pub struct ShardedStore {
    shards: Vec<Arc<dyn KvStore>>,
    router: ShardRouter,
    /// Cross-shard intent log; `None` for volatile children (no crash to
    /// recover from — cross-shard applies just run sequentially).
    xlog: Option<Mutex<XLog>>,
}

struct XLog {
    path: PathBuf,
    sync: SyncPolicy,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore").field("shards", &self.shards.len()).finish()
    }
}

impl ShardedStore {
    /// Assembles a sharded store and completes any cross-shard commit a
    /// crash left pending in the intent log at `xlog_path`.
    ///
    /// The router must be stable across opens — it determines the
    /// persisted placement of every key — and must agree with the
    /// router used when the data was written.
    pub fn open(
        shards: Vec<Arc<dyn KvStore>>,
        router: ShardRouter,
        xlog_path: Option<PathBuf>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        assert!(shards.len() > 1, "a sharded store needs at least two shards");
        let store = ShardedStore {
            shards,
            router,
            xlog: xlog_path.map(|path| Mutex::new(XLog { path, sync })),
        };
        store.recover_pending()?;
        Ok(store)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct handle to one shard's engine.
    pub fn shard(&self, idx: usize) -> &Arc<dyn KvStore> {
        // pass-lint: allow(l1, reason="debug/test accessor; the index is a caller-supplied constant, not untrusted input")
        &self.shards[idx]
    }

    /// Fallible shard lookup for the apply paths: an out-of-range index
    /// surfaces as an error instead of a panic, keeping recovery and
    /// commit code panic-free even on nonsense input.
    fn shard_at(&self, idx: usize) -> Result<&Arc<dyn KvStore>> {
        self.shards.get(idx).ok_or_else(|| {
            StorageError::corrupt(
                format!("shard-{idx}"),
                format!("shard index {idx} out of range for {} shards", self.shards.len()),
            )
        })
    }

    /// The shard a key routes to.
    pub fn route(&self, key: &[u8]) -> usize {
        (self.router)(key) % self.shards.len()
    }

    /// Applies a batch whose keys all route to `shard` — the fast path a
    /// caller that already partitioned by shard uses to skip re-routing.
    /// One shard engine, one WAL append, same atomicity as any
    /// single-engine batch.
    pub fn apply_to(&self, shard: usize, batch: WriteBatch) -> Result<()> {
        debug_assert!(
            batch.ops().iter().all(|op| self.route(op.key()) == shard),
            "sub-batch contains keys routed to another shard"
        );
        self.shard_at(shard)?.apply(batch)
    }

    /// Applies pre-partitioned per-shard sub-batches as one atomic
    /// cross-shard commit (the intent-log protocol above). The caller
    /// must serialize conflicting writers — in PASS, by holding every
    /// participating shard's commit lock across this call.
    ///
    /// Lock order: called with every participating shard's commit lock
    /// already held (acquired ascending by the caller); takes only the
    /// intent-log mutex, which nests strictly inside the shard locks.
    pub fn apply_split(&self, parts: Vec<(usize, WriteBatch)>) -> Result<()> {
        let mut parts: Vec<(usize, WriteBatch)> =
            parts.into_iter().filter(|(_, b)| !b.is_empty()).collect();
        if parts.len() <= 1 {
            return match parts.pop() {
                Some((shard, batch)) => self.apply_to(shard, batch),
                None => Ok(()),
            };
        }
        for (_, batch) in &parts {
            batch.validate()?;
        }
        match &self.xlog {
            Some(xlog) => {
                let guard = xlog.lock();
                // Step 1: durable intent — the commit point. The full
                // batch goes in one WAL record; the router re-derives
                // the split at recovery.
                let mut combined = WriteBatch::new();
                for (_, batch) in &parts {
                    for op in batch.ops() {
                        match op {
                            Op::Put { key, value } => combined.put(key.clone(), value.clone()),
                            Op::Delete { key } => combined.delete(key.clone()),
                        };
                    }
                }
                let mut intent = Wal::create(&guard.path, guard.sync)?;
                intent.append(&combined.encode())?;
                drop(intent);
                // Step 2: per-shard applies (each its own WAL append).
                for (shard, batch) in parts {
                    // pass-lint: allow(l7, reason="shard_at returns the per-shard engine, so this is LsmEngine::apply — name-based resolution aliases it to ShardedStore::apply, which would re-enter the intent log")
                    self.shard_at(shard)?.apply(batch)?;
                }
                // Step 3: completion mark — truncate the intent log.
                Self::truncate_xlog(&guard)
            }
            // Volatile children: nothing survives a crash, so there is
            // no torn state to reconcile — apply sequentially.
            None => {
                for (shard, batch) in parts {
                    self.shard_at(shard)?.apply(batch)?;
                }
                Ok(())
            }
        }
    }

    /// Splits a mixed batch into per-shard sub-batches, preserving op
    /// order within each shard.
    pub fn partition(&self, batch: WriteBatch) -> Vec<(usize, WriteBatch)> {
        let mut per_shard: Vec<WriteBatch> =
            (0..self.shards.len()).map(|_| WriteBatch::new()).collect();
        for op in batch.into_ops() {
            // route() reduces modulo the shard count, so the bucket always
            // exists; `get_mut` keeps this path index-panic-free anyway.
            let shard = self.route(op.key());
            let Some(bucket) = per_shard.get_mut(shard) else {
                debug_assert!(false, "route() returned out-of-range shard {shard}");
                continue;
            };
            match op {
                Op::Put { key, value } => {
                    bucket.put(key, value);
                }
                Op::Delete { key } => {
                    bucket.delete(key);
                }
            }
        }
        per_shard.into_iter().enumerate().filter(|(_, b)| !b.is_empty()).collect()
    }

    /// Replays (roll-forward) a pending cross-shard commit, then clears
    /// the intent log. A decodable intent record past its commit point
    /// re-applies idempotently; undecodable intent bytes with a valid
    /// CRC are real corruption and surface as an error, never a panic.
    ///
    /// Lock order: runs at open, before any commit path exists; takes
    /// only the intent-log mutex.
    fn recover_pending(&self) -> Result<()> {
        let Some(xlog) = &self.xlog else { return Ok(()) };
        let guard = xlog.lock();
        let recovery = wal::recover(&guard.path)?;
        for payload in &recovery.records {
            let batch = WriteBatch::decode(payload).ok_or_else(|| {
                StorageError::corrupt(&guard.path, "undecodable cross-shard intent record")
            })?;
            for (shard, sub) in self.partition(batch) {
                self.shard_at(shard)?.apply(sub)?;
            }
        }
        if recovery.valid_len > 0 || recovery.torn_tail {
            Self::truncate_xlog(&guard)?;
        }
        Ok(())
    }

    fn truncate_xlog(xlog: &XLog) -> Result<()> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&xlog.path)
            .map_err(|e| StorageError::io("truncating cross-shard intent log", e))?;
        if xlog.sync == SyncPolicy::Always {
            file.sync_data().map_err(|e| StorageError::io("syncing intent-log truncate", e))?;
        }
        Ok(())
    }
}

impl KvStore for ShardedStore {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.shard_at(self.route(key))?.get(key)
    }

    /// Lock order: takes only the intent-log mutex (inside
    /// `apply_split`); callers that serialize commits hold their shard
    /// commit locks *before* entering the store.
    fn apply(&self, batch: WriteBatch) -> Result<()> {
        batch.validate()?;
        self.apply_split(self.partition(batch))
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // Shards interleave in key space (the router hashes), so merge
        // the per-shard sorted runs back into one sorted result.
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.scan_range(start, end)?);
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            shard.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemEngine;

    fn mem_shards(n: usize) -> Vec<Arc<dyn KvStore>> {
        (0..n).map(|_| Arc::new(MemEngine::new()) as Arc<dyn KvStore>).collect()
    }

    fn byte_router() -> ShardRouter {
        Box::new(|key: &[u8]| key.first().copied().unwrap_or(0) as usize)
    }

    #[test]
    fn routes_reads_and_writes_to_owning_shard() {
        let store =
            ShardedStore::open(mem_shards(4), byte_router(), None, SyncPolicy::OnWrite).unwrap();
        store.put(&[1, 10], b"a").unwrap();
        store.put(&[2, 20], b"b").unwrap();
        assert_eq!(store.get(&[1, 10]).unwrap(), Some(b"a".to_vec()));
        assert_eq!(store.get(&[2, 20]).unwrap(), Some(b"b".to_vec()));
        // The value really lives only on its shard.
        assert_eq!(store.shard(1).get(&[1, 10]).unwrap(), Some(b"a".to_vec()));
        assert_eq!(store.shard(2).get(&[1, 10]).unwrap(), None);
    }

    #[test]
    fn scan_merges_shards_in_key_order() {
        let store =
            ShardedStore::open(mem_shards(3), byte_router(), None, SyncPolicy::OnWrite).unwrap();
        for k in [[2u8, 1], [0, 5], [1, 3], [0, 1], [2, 0]] {
            store.put(&k, b"v").unwrap();
        }
        let keys: Vec<Vec<u8>> =
            store.scan_range(&[0], None).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![vec![0, 1], vec![0, 5], vec![1, 3], vec![2, 0], vec![2, 1]]);
    }

    #[test]
    fn cross_shard_apply_lands_on_every_shard() {
        let store =
            ShardedStore::open(mem_shards(2), byte_router(), None, SyncPolicy::OnWrite).unwrap();
        let mut batch = WriteBatch::new();
        batch.put(vec![0, 1], b"a".to_vec());
        batch.put(vec![1, 1], b"b".to_vec());
        store.apply(batch).unwrap();
        assert_eq!(store.shard(0).get(&[0, 1]).unwrap(), Some(b"a".to_vec()));
        assert_eq!(store.shard(1).get(&[1, 1]).unwrap(), Some(b"b".to_vec()));
    }
}
