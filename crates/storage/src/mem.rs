//! Volatile in-memory backend.
//!
//! Distributed experiments instantiate one store per simulated site —
//! often hundreds — so a cheap, allocation-only backend matters. Semantics
//! match [`crate::LsmEngine`] minus durability.

use crate::batch::{Op, WriteBatch};
use crate::error::Result;
use crate::kv::KvStore;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;

/// An in-memory [`KvStore`].
#[derive(Debug, Default)]
pub struct MemEngine {
    data: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl MemEngine {
    /// An empty store.
    pub fn new() -> Self {
        MemEngine::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.data.read().is_empty()
    }

    /// Approximate resident bytes (keys + values).
    pub fn approx_bytes(&self) -> usize {
        self.data.read().iter().map(|(k, v)| k.len() + v.len()).sum()
    }
}

impl KvStore for MemEngine {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.data.read().get(key).cloned())
    }

    fn apply(&self, batch: WriteBatch) -> Result<()> {
        batch.validate()?;
        let mut data = self.data.write();
        for op in batch.into_ops() {
            match op {
                Op::Put { key, value } => {
                    data.insert(key, value);
                }
                Op::Delete { key } => {
                    data.remove(&key);
                }
            }
        }
        Ok(())
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if end.is_some_and(|e| e <= start) {
            return Ok(Vec::new());
        }
        let data = self.data.read();
        let lower = Bound::Included(start.to_vec());
        let upper = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        Ok(data.range::<Vec<u8>, _>((lower, upper)).map(|(k, v)| (k.clone(), v.clone())).collect())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Direct single-key insert: hot paths (index rebuild seeding, the
    /// distributed simulations' per-site stores) call `put` in tight
    /// loops, so skip the trait-default `WriteBatch` round-trip. Same
    /// size limits as [`WriteBatch::validate`].
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        check_entry(key.len(), value.len())?;
        self.data.write().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    /// Direct single-key delete; same rationale as [`KvStore::put`].
    fn delete(&self, key: &[u8]) -> Result<()> {
        check_entry(key.len(), 0)?;
        self.data.write().remove(key);
        Ok(())
    }
}

/// The single-entry form of [`WriteBatch::validate`]'s size check.
fn check_entry(key_len: usize, value_len: usize) -> Result<()> {
    if key_len == 0 || key_len > crate::MAX_KEY_LEN || value_len > crate::MAX_VALUE_LEN {
        return Err(crate::StorageError::OversizeEntry { key_len, value_len });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let m = MemEngine::new();
        m.put(b"a", b"1").unwrap();
        assert_eq!(m.get(b"a").unwrap(), Some(b"1".to_vec()));
        m.delete(b"a").unwrap();
        assert_eq!(m.get(b"a").unwrap(), None);
        assert!(m.is_empty());
    }

    #[test]
    fn batch_is_atomic_in_order() {
        let m = MemEngine::new();
        let mut b = WriteBatch::new();
        b.put(b"k".to_vec(), b"1".to_vec());
        b.delete(b"k".to_vec());
        b.put(b"k".to_vec(), b"2".to_vec());
        m.apply(b).unwrap();
        assert_eq!(m.get(b"k").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn scans_are_sorted_and_bounded() {
        let m = MemEngine::new();
        for k in ["p/1", "p/2", "q/1", "p/3"] {
            m.put(k.as_bytes(), b"v").unwrap();
        }
        let got = m.scan_prefix(b"p/").unwrap();
        let keys: Vec<_> =
            got.iter().map(|(k, _)| String::from_utf8_lossy(k).into_owned()).collect();
        assert_eq!(keys, vec!["p/1", "p/2", "p/3"]);
    }

    #[test]
    fn rejects_invalid_batches() {
        let m = MemEngine::new();
        let mut b = WriteBatch::new();
        b.put(Vec::new(), b"v".to_vec());
        assert!(m.apply(b).is_err());
    }
}
