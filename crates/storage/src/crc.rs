//! CRC-32C (Castagnoli), table-driven.
//!
//! Every WAL record and SSTable block carries a CRC so recovery can
//! distinguish a torn write from valid data — the reliability criterion of
//! §IV ("the system must recover provenance metadata to a state consistent
//! with its data after a system failure") starts here.

/// The Castagnoli polynomial (reflected form).
const POLY: u32 = 0x82f6_3b78;

/// Lazily-built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        // pass-lint: allow(l1, reason="index is masked with & 0xff into a 256-entry table — in-bounds by construction")
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Incremental CRC-32C state, for checksumming scattered buffers.
#[derive(Debug, Clone)]
pub struct Crc32c(u32);

impl Crc32c {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32c(!0)
    }

    /// Feeds bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            // pass-lint: allow(l1, reason="index is masked with & 0xff into a 256-entry table — in-bounds by construction")
            self.0 = (self.0 >> 8) ^ t[((self.0 ^ u32::from(b)) & 0xff) as usize];
        }
    }

    /// Finalizes.
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // RFC 3720 test vector: CRC-32C of "123456789" is 0xE3069283.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn known_vector_zeros() {
        // 32 bytes of zeros: 0x8A9136AA (iSCSI test pattern).
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"provenance-aware sensor data storage";
        let mut inc = Crc32c::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32c(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"some WAL record payload";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            copy[i] ^= 0x01;
            assert_ne!(crc32c(&copy), base, "flip at byte {i} undetected");
            copy[i] ^= 0x01;
        }
    }
}
