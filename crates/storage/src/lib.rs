//! # pass-storage — the embedded storage engine under PASS
//!
//! A log-structured key-value engine built for the PASS reproduction:
//! the offline dependency set has no storage crate, and owning the engine
//! gives the reliability experiments (E10) real fault-injection surfaces —
//! torn WAL tails, orphaned SSTables, corrupt blocks — instead of mocks.
//!
//! Shape: WAL ([`wal`]) → memtable ([`memtable`]) → SSTables ([`sstable`])
//! with bloom filters ([`bloom`]), tiered compaction ([`compaction`])
//! driven by a background maintenance worker ([`maintenance`]), a
//! crash-safe append-only manifest ([`manifest`]) owning the live table
//! set, and a sharded block cache ([`cache`]) on the read path.
//! Everything is CRC-32C checksummed ([`crc`]).
//!
//! Two backends implement the [`KvStore`] trait:
//! [`LsmEngine`] (durable) and [`MemEngine`] (volatile, for simulations
//! that instantiate hundreds of stores).
//!
//! ```
//! use pass_storage::{KvStore, LsmEngine, tempdir::TempDir};
//!
//! let dir = TempDir::new("doc");
//! let db = LsmEngine::open_default(dir.path()).unwrap();
//! db.put(b"tuple-set/42", b"encoded record").unwrap();
//! assert_eq!(db.get(b"tuple-set/42").unwrap().as_deref(), Some(&b"encoded record"[..]));
//! ```

// Unit-test modules assert by panicking; the panic lints cover only
// the shipped library code.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod bloom;
pub mod cache;
pub mod compaction;
pub mod crc;
pub mod engine;
pub mod error;
pub mod iter;
pub mod kv;
pub mod maintenance;
pub mod manifest;
pub mod mem;
pub mod memtable;
pub mod sharded;
pub mod sstable;
pub mod tempdir;
pub mod wal;

pub use batch::{Op, WriteBatch};
pub use cache::{BlockCache, CacheStats};
pub use compaction::{CompactionPolicy, Pick, PickReason, TableInfo};
pub use engine::{EngineOptions, EngineStats, LsmEngine};
pub use error::{Result, StorageError};
pub use kv::{prefix_successor, KvStore};
pub use maintenance::{
    spawn_engine_worker, spawn_task_worker, MaintenanceHandle, MaintenanceOptions, PinFloor, Signal,
};
pub use manifest::{Manifest, ManifestEdit, ManifestState, TableMeta};
pub use mem::MemEngine;
pub use sharded::{ShardRouter, ShardedStore};
pub use wal::SyncPolicy;

/// Maximum key length accepted by engines (64 KiB).
pub const MAX_KEY_LEN: usize = 64 << 10;
/// Maximum value length accepted by engines (32 MiB).
pub const MAX_VALUE_LEN: usize = 32 << 20;
