//! Bloom filters for SSTable key membership.
//!
//! A negative answer skips the table entirely; point lookups across many
//! tables stay cheap even before compaction catches up.

use crate::batch::{put_varint, take_varint};

/// A fixed-size Bloom filter built with double hashing
/// (`h_i = h1 + i * h2`), the standard Kirsch–Mitzenmacher construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// Sizes a filter for `expected_items` at roughly `bits_per_key` bits
    /// each. 10 bits/key gives ~1% false positives.
    pub fn with_capacity(expected_items: usize, bits_per_key: usize) -> Self {
        let num_bits = (expected_items.max(1) * bits_per_key.max(1)).max(64) as u64;
        let num_bits = num_bits.next_multiple_of(64);
        // Optimal k = ln2 * bits/key, clamped to a sane range.
        let num_hashes = ((bits_per_key as f64) * 0.69).round().clamp(1.0, 30.0) as u32;
        BloomFilter { bits: vec![0u64; (num_bits / 64) as usize], num_bits, num_hashes }
    }

    fn hash_pair(key: &[u8]) -> (u64, u64) {
        // Two independent 64-bit FNV-1a streams with distinct offsets.
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h2: u64 = 0x9ae1_6a3b_2f90_404f;
        for &b in key {
            h1 = (h1 ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            h2 = (h2 ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            h2 = h2.rotate_left(17);
        }
        (h1, h2 | 1) // odd step so probes cover the table
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash_pair(key);
        for i in 0..self.num_hashes {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits;
            // pass-lint: allow(l1, reason="bit < num_bits by the modulo above, and bits holds exactly num_bits/64 words by construction")
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// True when the key *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash_pair(key);
        (0..self.num_hashes).all(|i| {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits;
            // pass-lint: allow(l1, reason="bit < num_bits by the modulo above, and bits holds exactly num_bits/64 words by construction")
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Serialized size plus contents.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.bits.len() * 8 + 16);
        put_varint(&mut buf, self.num_bits);
        put_varint(&mut buf, u64::from(self.num_hashes));
        for word in &self.bits {
            buf.extend_from_slice(&word.to_le_bytes());
        }
        buf
    }

    /// Inverse of [`BloomFilter::encode`].
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let num_bits = take_varint(buf, &mut pos)?;
        let num_hashes = u32::try_from(take_varint(buf, &mut pos)?).ok()?;
        if num_bits == 0 || num_bits % 64 != 0 || num_hashes == 0 || num_hashes > 64 {
            return None;
        }
        let words = (num_bits / 64) as usize;
        if buf.len() - pos != words * 8 {
            return None;
        }
        let mut bits = Vec::with_capacity(words);
        for chunk in buf.get(pos..)?.chunks_exact(8) {
            bits.push(u64::from_le_bytes(<[u8; 8]>::try_from(chunk).ok()?));
        }
        Some(BloomFilter { bits, num_bits, num_hashes })
    }

    /// Memory footprint of the bit array.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::with_capacity(10_000, 10);
        for i in 0..10_000u32 {
            f.insert(&i.to_le_bytes());
        }
        let fp = (10_000..110_000u32).filter(|i| f.may_contain(&i.to_le_bytes())).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate {rate} too high for 10 bits/key");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::with_capacity(100, 10);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut f = BloomFilter::with_capacity(500, 8);
        for i in 0..500u32 {
            f.insert(&i.to_be_bytes());
        }
        let dec = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(f, dec);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(BloomFilter::decode(&[]).is_none());
        let mut f = BloomFilter::with_capacity(64, 10);
        f.insert(b"x");
        let mut enc = f.encode();
        enc.pop();
        assert!(BloomFilter::decode(&enc).is_none(), "truncated body");
    }
}
