//! Storage engine errors.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Errors raised by the storage engine.
#[derive(Debug, Clone)]
pub enum StorageError {
    /// An underlying I/O failure. Wrapped in `Arc` so the error stays
    /// `Clone` (engine handles are shared across threads).
    Io {
        /// What the engine was doing.
        context: String,
        /// The OS error.
        source: Arc<io::Error>,
    },
    /// A file exists but its contents are not a valid engine file.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A checksum mismatch: the bytes on disk are not the bytes written.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// Offset of the bad record/block.
        offset: u64,
    },
    /// The engine was asked to open a directory that is already open.
    AlreadyOpen(PathBuf),
    /// Keys are limited to 64 KiB and values to [`crate::MAX_VALUE_LEN`].
    OversizeEntry {
        /// Length of the offending key.
        key_len: usize,
        /// Length of the offending value.
        value_len: usize,
    },
}

impl StorageError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StorageError::Io { context: context.into(), source: Arc::new(source) }
    }

    /// Creates a corruption error.
    pub fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StorageError::Corrupt { path: path.into(), detail: detail.into() }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => {
                write!(f, "I/O error while {context}: {source}")
            }
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt engine file {}: {detail}", path.display())
            }
            StorageError::ChecksumMismatch { path, offset } => {
                write!(f, "checksum mismatch in {} at offset {offset}", path.display())
            }
            StorageError::AlreadyOpen(path) => {
                write!(f, "engine directory {} is already open", path.display())
            }
            StorageError::OversizeEntry { key_len, value_len } => {
                write!(f, "entry too large: key {key_len} bytes, value {value_len} bytes")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
