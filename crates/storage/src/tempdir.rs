//! Self-cleaning temporary directories for tests and benches.
//!
//! The offline crate set has no `tempfile`, so the engine ships its own
//! minimal equivalent. Public because every downstream crate's tests need
//! a scratch directory for on-disk engines.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/pass-<label>-<pid>-<n>`.
    ///
    /// # Panics
    /// Panics when the directory cannot be created — tests cannot proceed
    /// without scratch space, and an `expect` here beats silent reuse.
    #[allow(clippy::expect_used)] // test-only scaffolding, documented panic
    pub fn new(label: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("pass-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("creating temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort cleanup; leaking a temp dir is not worth a panic
        // during unwinding.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists(), "dir removed with contents");
        assert!(b.path().is_dir());
    }
}
