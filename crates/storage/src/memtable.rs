//! The mutable in-memory write buffer.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted write buffer. `None` values are tombstones: they shadow older
/// on-disk values until compaction drops both.
#[derive(Debug, Default)]
pub struct MemTable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Approximate resident bytes, used for flush triggering.
    approx_bytes: usize,
}

impl MemTable {
    /// An empty table.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Inserts a value.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.approx_bytes += key.len() + value.len() + 48;
        if let Some(old) = self.entries.insert(key, Some(value)) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()) + 48);
        }
    }

    /// Inserts a tombstone.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.approx_bytes += key.len() + 48;
        if let Some(old) = self.entries.insert(key, None) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()) + 48);
        }
    }

    /// Looks up a key. The outer `Option` is presence in *this* table; the
    /// inner `Option` distinguishes live values from tombstones.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Number of entries (tombstones included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterates entries in key order within `[start, end)`; `end = None`
    /// means unbounded. An empty interval (`end <= start`) yields nothing.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> + 'a {
        // BTreeMap::range panics on inverted bounds; normalize to empty.
        let end = end.map(|e| e.max(start));
        let lower = Bound::Included(start.to_vec());
        let upper = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        self.entries.range::<Vec<u8>, _>((lower, upper)).map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Iterates everything in key order (flush path).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.entries.iter().map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.approx_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_semantics() {
        let mut m = MemTable::new();
        m.put(b"a".to_vec(), b"1".to_vec());
        assert_eq!(m.get(b"a"), Some(Some(b"1".as_slice())));
        m.delete(b"a".to_vec());
        assert_eq!(m.get(b"a"), Some(None), "tombstone is present, not absent");
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = MemTable::new();
        m.put(b"k".to_vec(), b"old".to_vec());
        m.put(b"k".to_vec(), b"new".to_vec());
        assert_eq!(m.get(b"k"), Some(Some(b"new".as_slice())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn range_is_sorted_and_bounded() {
        let mut m = MemTable::new();
        for k in ["b", "d", "a", "c"] {
            m.put(k.as_bytes().to_vec(), k.as_bytes().to_vec());
        }
        let keys: Vec<_> = m.range(b"b", Some(b"d")).map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
        let all: Vec<_> = m.range(b"", None).map(|(k, _)| k.to_vec()).collect();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn approx_bytes_grows_and_clears() {
        let mut m = MemTable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(vec![0; 100], vec![0; 900]);
        assert!(m.approx_bytes() >= 1000);
        m.clear();
        assert_eq!(m.approx_bytes(), 0);
        assert!(m.is_empty());
    }
}
