//! Sharded CLOCK cache over decoded SSTable data blocks.
//!
//! Point reads touch exactly one block, but under sustained ingest the
//! same hot blocks are re-read, re-CRC'd, and re-decoded on every
//! lookup. The cache keeps *decoded* entry runs (`Arc<Vec<Entry>>`) so
//! a hit skips the seek, the checksum, and the parse.
//!
//! Design:
//!
//! * **Keying** — `(table cache id, block index)`. The table component
//!   is a process-global counter stamped at `SsTable::open`, *not* the
//!   file id: one cache is shared across every shard engine of a
//!   [`crate::ShardedStore`], and different shards reuse file ids.
//!   A fresh id per open also means a re-opened (rewritten) file can
//!   never alias stale cached blocks.
//! * **Sharding** — the key hash picks one of N independently locked
//!   shards, so concurrent readers on different blocks don't serialize
//!   on a single LRU lock.
//! * **Eviction** — CLOCK (second chance): a hit sets a reference bit,
//!   the sweep hand clears bits and evicts the first unreferenced slot.
//!   Fresh inserts start unreferenced, so blocks read exactly once are
//!   reclaimed before anything re-touched. Approximates LRU without
//!   per-hit list surgery.
//! * **Capacity** — bytes of decoded entries (keys + values + fixed
//!   per-entry overhead), split evenly across shards. An over-sized
//!   block bypasses the cache rather than flushing it.
//!
//! Hit/miss/eviction counters are lock-free and surfaced through
//! [`crate::EngineStats`].

use crate::sstable::Entry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed accounting overhead per cached entry (vec headers, tag).
const ENTRY_OVERHEAD: usize = 32;

/// Hands out process-unique table ids for cache keying.
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// Returns a fresh process-unique cache id for an opened table.
pub(crate) fn next_table_id() -> u64 {
    NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Cache key: (per-open table id, block index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BlockKey {
    table: u64,
    block: u32,
}

struct Slot {
    key: BlockKey,
    value: Arc<Vec<Entry>>,
    bytes: usize,
    referenced: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<BlockKey, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    hand: usize,
    bytes: usize,
}

impl Shard {
    fn get(&mut self, key: &BlockKey) -> Option<Arc<Vec<Entry>>> {
        let i = *self.map.get(key)?;
        let slot = self.slots.get_mut(i)?.as_mut()?;
        slot.referenced = true;
        Some(Arc::clone(&slot.value))
    }

    /// CLOCK sweep: clears reference bits until an unreferenced slot
    /// falls out. Bounded at two laps, which guarantees an eviction
    /// whenever any slot is occupied.
    fn evict_one(&mut self) -> bool {
        let n = self.slots.len();
        if n == 0 || self.map.is_empty() {
            return false;
        }
        for _ in 0..2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            let Some(occupied) = self.slots.get_mut(i) else { continue };
            let Some(slot) = occupied.as_mut() else { continue };
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            if let Some(slot) = occupied.take() {
                self.map.remove(&slot.key);
                self.bytes -= slot.bytes;
                self.free.push(i);
                return true;
            }
        }
        false
    }

    fn insert(
        &mut self,
        key: BlockKey,
        value: Arc<Vec<Entry>>,
        bytes: usize,
        capacity: usize,
    ) -> u64 {
        if self.map.contains_key(&key) {
            return 0; // racing reader already filled it
        }
        let mut evicted = 0u64;
        while self.bytes + bytes > capacity {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        // Fresh blocks start unreferenced: only a re-touch earns the
        // second chance, so a one-shot scan can't flush the hot set.
        let slot = Slot { key, value, bytes, referenced: false };
        let i = match self.free.pop() {
            Some(i) => {
                if let Some(cell) = self.slots.get_mut(i) {
                    *cell = Some(slot);
                }
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.bytes += bytes;
        evicted
    }
}

/// A sharded block cache shared by one or more [`crate::LsmEngine`]s.
///
/// Construct once, clone the [`Arc`] into
/// [`crate::EngineOptions::cache`] for every engine that should share
/// it.
pub struct BlockCache {
    shards: Box<[Mutex<Shard>]>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BlockCache")
            .field("capacity_bytes", &(self.shard_capacity * self.shards.len()))
            .field("shards", &self.shards.len())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the file.
    pub misses: u64,
    /// Blocks evicted by the CLOCK sweep.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub cached_bytes: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl BlockCache {
    /// A cache holding ~`capacity_bytes` of decoded blocks across 16
    /// shards.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_shards(capacity_bytes, 16)
    }

    /// A cache with an explicit shard count (power of two recommended).
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = (capacity_bytes / shards).max(1);
        let shards = (0..shards).map(|_| Mutex::new(Shard::default())).collect();
        BlockCache {
            shards,
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The shard holding `key`; `None` only if the shard set were empty,
    /// which the constructors rule out.
    fn shard(&self, key: &BlockKey) -> Option<&Mutex<Shard>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() as usize) % self.shards.len().max(1);
        self.shards.get(i).or_else(|| self.shards.first())
    }

    /// Looks up a decoded block, counting the hit or miss.
    pub(crate) fn get(&self, table: u64, block: u32) -> Option<Arc<Vec<Entry>>> {
        let key = BlockKey { table, block };
        let got = self.shard(&key)?.lock().get(&key);
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Inserts a freshly decoded block (no-op when it alone exceeds a
    /// shard's capacity).
    pub(crate) fn insert(&self, table: u64, block: u32, value: Arc<Vec<Entry>>) {
        let bytes = entries_bytes(&value);
        if bytes > self.shard_capacity {
            return;
        }
        let key = BlockKey { table, block };
        let Some(shard) = self.shard(&key) else { return };
        let evicted = shard.lock().insert(key, value, bytes, self.shard_capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let cached_bytes = self.shards.iter().map(|s| s.lock().bytes as u64).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cached_bytes,
        }
    }
}

/// Accounted size of a decoded block.
fn entries_bytes(entries: &[Entry]) -> usize {
    entries.iter().map(|(k, v)| k.len() + v.as_ref().map_or(0, Vec::len) + ENTRY_OVERHEAD).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tag: u8, n: usize) -> Arc<Vec<Entry>> {
        Arc::new((0..n).map(|i| (vec![tag, i as u8], Some(vec![0u8; 100]))).collect())
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = BlockCache::new(1 << 20);
        assert!(cache.get(1, 0).is_none());
        cache.insert(1, 0, block(1, 4));
        let got = cache.get(1, 0).expect("cached");
        assert_eq!(got.len(), 4);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.cached_bytes > 0);
    }

    #[test]
    fn distinct_tables_do_not_alias() {
        let cache = BlockCache::new(1 << 20);
        cache.insert(1, 0, block(1, 1));
        cache.insert(2, 0, block(2, 2));
        assert_eq!(cache.get(1, 0).unwrap().len(), 1);
        assert_eq!(cache.get(2, 0).unwrap().len(), 2);
    }

    #[test]
    fn capacity_bounds_resident_bytes() {
        // One shard so the capacity math is exact.
        let cache = BlockCache::with_shards(4_000, 1);
        for b in 0..100u32 {
            cache.insert(7, b, block(7, 4));
        }
        let s = cache.stats();
        assert!(s.cached_bytes <= 4_000, "resident {} bytes", s.cached_bytes);
        assert!(s.evictions > 0, "sweep ran");
    }

    #[test]
    fn hot_block_survives_the_sweep() {
        let cache = BlockCache::with_shards(4_000, 1);
        cache.insert(7, 0, block(7, 1));
        for b in 1..50u32 {
            // Keep touching block 0 while colder blocks churn through.
            cache.insert(7, b, block(7, 4));
            let _ = cache.get(7, 0);
        }
        assert!(cache.get(7, 0).is_some(), "referenced block kept its second chance");
    }

    #[test]
    fn oversized_block_bypasses() {
        let cache = BlockCache::with_shards(100, 1);
        cache.insert(1, 0, block(1, 10));
        assert!(cache.get(1, 0).is_none());
    }

    #[test]
    fn table_ids_are_unique() {
        let a = next_table_id();
        let b = next_table_id();
        assert_ne!(a, b);
    }
}
