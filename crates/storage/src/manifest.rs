//! Crash-safe manifest: the append-only edit log that owns the live
//! SSTable set.
//!
//! Before this module the engine's table set was directory-scan-owned:
//! a single-record `MANIFEST` file listed the ids, and anything on disk
//! that wasn't listed was debris. That shape cannot express compaction
//! safely — replacing K tables with one needs an *atomic* transition
//! between two editions of the table set, and rewriting a whole file
//! per flush is wasteful under sustained ingest.
//!
//! The manifest here is a WAL-framed log (`MANIFEST.log`): each record
//! is `[len u32 LE][crc32c u32 LE][payload]`, the same framing as
//! [`crate::wal`]. Payloads are versioned edits:
//!
//! * **snapshot** (tag 1) — the full table set + the id allocator.
//!   Written when the log is created and as a periodic checkpoint
//!   (rewrite via temp file + rename, so the prefix is always one
//!   complete snapshot).
//! * **flush** (tag 2) — one new table pushed at the newest position.
//! * **compact** (tag 3) — one added table replacing a contiguous run
//!   of removed ids, at the position of the newest removed table.
//!
//! Recovery replays the log in order. A record that extends past EOF is
//! the ordinary crash artifact (the edit never committed): it is
//! discarded and the file truncated. A *complete* record whose CRC
//! fails, or a checksummed record that does not decode, is corruption
//! past the commit point and fails the open — losing a mid-file edit
//! silently would unregister live tables and let the debris sweep
//! delete real data.
//!
//! Ordering invariant: the table list is kept newest-first, and every
//! edit preserves recency order (a compaction output sits exactly where
//! its newest input sat). Readers rely on this for newest-wins shadowing.
//!
//! Bootstrap: a directory with the legacy single-record `MANIFEST` (or
//! with no manifest at all) is converted on open — the legacy set is
//! replayed into a fresh `MANIFEST.log` snapshot and the legacy file
//! removed once the log is durable. `shards = 1` layouts written before
//! this module reopen unchanged.

use crate::batch::{put_varint, take_u32_le, take_varint};
use crate::crc::crc32c;
use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Current manifest log file name.
pub const MANIFEST_NAME: &str = "MANIFEST.log";
/// Temp name used during checkpoint rewrite (renamed over the log).
const TMP_NAME: &str = "MANIFEST.log.tmp";
/// Pre-log single-record manifest name, still recognized for bootstrap.
const LEGACY_NAME: &str = "MANIFEST";

/// Edits accumulated since the last checkpoint before the log is
/// rewritten as a single snapshot.
const CHECKPOINT_EVERY: usize = 64;

/// Largest manifest record accepted (the table set at snapshot time;
/// far beyond any realistic size).
const MAX_RECORD_LEN: u32 = 64 << 20;

const TAG_SNAPSHOT: u64 = 1;
const TAG_FLUSH: u64 = 2;
const TAG_COMPACT: u64 = 3;

/// One live SSTable as the manifest tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableMeta {
    /// File id (the `sst-<id>.sst` name).
    pub id: u64,
    /// Engine version the table was sealed at (0 when no version clock
    /// is wired in). Compaction uses it to gate tombstone drops against
    /// the pin floor.
    pub seal_version: u64,
}

/// One durable transition of the table set.
#[derive(Debug, Clone)]
pub enum ManifestEdit {
    /// A memtable flush produced `table`; it becomes the newest.
    Flush {
        /// The newly sealed table.
        table: TableMeta,
    },
    /// A compaction replaced the contiguous run `removed` (listed
    /// newest-first) with `added`, at the newest removed position.
    Compact {
        /// The merge output.
        added: TableMeta,
        /// Input table ids, newest-first; must be live and contiguous.
        removed: Vec<u64>,
    },
}

/// The recovered table set.
#[derive(Debug, Clone, Default)]
pub struct ManifestState {
    /// Live tables, newest-first.
    pub tables: Vec<TableMeta>,
    /// Next table id to allocate.
    pub next_id: u64,
    /// True when a torn (uncommitted) trailing record was discarded.
    pub recovered_torn_tail: bool,
}

/// Open handle to the manifest log; owns appends and checkpoints.
#[derive(Debug)]
pub struct Manifest {
    dir: PathBuf,
    file: File,
    edits_since_checkpoint: usize,
}

impl Manifest {
    /// Opens (or bootstraps) the manifest for `dir` and returns the
    /// recovered table set.
    ///
    /// `have_tables` tells the corruption heuristic whether any
    /// `sst-*.sst` files exist: a manifest log with *zero* decodable
    /// records is a benign create-crash only when there is nothing on
    /// disk it could have been tracking.
    pub fn open(dir: &Path, have_tables: bool) -> Result<(Manifest, ManifestState)> {
        let log_path = dir.join(MANIFEST_NAME);
        let tmp_path = dir.join(TMP_NAME);
        if tmp_path.exists() {
            // A checkpoint that never reached its rename; the log (or
            // legacy file) is still authoritative.
            std::fs::remove_file(&tmp_path)
                .map_err(|e| StorageError::io("removing stale manifest temp file", e))?;
        }

        if log_path.exists() {
            return Self::open_existing(dir, &log_path, have_tables);
        }

        // Bootstrap: legacy single-record MANIFEST, or a fresh directory.
        let legacy_path = dir.join(LEGACY_NAME);
        let state = if legacy_path.exists() {
            read_legacy(&legacy_path)?
        } else {
            ManifestState { tables: Vec::new(), next_id: 1, recovered_torn_tail: false }
        };
        let manifest = Self::create_checkpoint(dir, &state)?;
        if legacy_path.exists() {
            std::fs::remove_file(&legacy_path)
                .map_err(|e| StorageError::io("removing legacy manifest", e))?;
        }
        Ok((manifest, state))
    }

    fn open_existing(
        dir: &Path,
        log_path: &Path,
        have_tables: bool,
    ) -> Result<(Manifest, ManifestState)> {
        let bytes =
            std::fs::read(log_path).map_err(|e| StorageError::io("reading manifest log", e))?;
        let scan = scan_frames(log_path, &bytes)?;
        if scan.records.is_empty() && have_tables {
            // A log in which nothing decodes, next to real tables: this
            // is not a create-crash (checkpoints install via rename, so
            // a legitimate log always starts with one complete
            // snapshot), it is a destroyed manifest. Refuse rather than
            // sweep the tables as debris.
            return Err(StorageError::corrupt(
                log_path,
                "manifest log holds tables' history but no decodable records",
            ));
        }
        let mut state = ManifestState {
            next_id: 1,
            recovered_torn_tail: scan.torn_tail,
            ..ManifestState::default()
        };
        for payload in &scan.records {
            apply_record(log_path, payload, &mut state)?;
        }
        // The allocator can never sit at or below a live id.
        let max_live = state.tables.iter().map(|t| t.id).max().unwrap_or(0);
        state.next_id = state.next_id.max(max_live + 1);

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(log_path)
            .map_err(|e| StorageError::io("opening manifest log for append", e))?;
        if scan.torn_tail {
            file.set_len(scan.valid_len)
                .map_err(|e| StorageError::io("truncating torn manifest tail", e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| StorageError::io("seeking manifest log", e))?;
        let manifest = Manifest {
            dir: dir.to_path_buf(),
            file,
            edits_since_checkpoint: scan.records.len().saturating_sub(1),
        };
        Ok((manifest, state))
    }

    /// Appends one edit durably (write + fsync). This is the commit
    /// point for the table-set transition the edit describes: callers
    /// must have fsynced any added table files *before* this call, and
    /// must delete removed files only *after* it returns.
    ///
    /// `live` and `next_id` describe the post-edit state; they feed the
    /// periodic checkpoint rewrite.
    pub fn append(&mut self, edit: &ManifestEdit, live: &[TableMeta], next_id: u64) -> Result<()> {
        let payload = encode_edit(edit, next_id);
        self.file
            .write_all(&frame(&payload))
            .map_err(|e| StorageError::io("appending manifest edit", e))?;
        self.file.sync_data().map_err(|e| StorageError::io("syncing manifest edit", e))?;
        self.edits_since_checkpoint += 1;
        if self.edits_since_checkpoint >= CHECKPOINT_EVERY {
            self.checkpoint(live, next_id)?;
        }
        Ok(())
    }

    /// Rewrites the log as a single snapshot record via temp + rename.
    fn checkpoint(&mut self, live: &[TableMeta], next_id: u64) -> Result<()> {
        let state = ManifestState { tables: live.to_vec(), next_id, recovered_torn_tail: false };
        let fresh = Self::create_checkpoint(&self.dir, &state)?;
        *self = fresh;
        Ok(())
    }

    /// Writes a new log containing one snapshot record and atomically
    /// installs it, returning the open handle.
    fn create_checkpoint(dir: &Path, state: &ManifestState) -> Result<Manifest> {
        let tmp_path = dir.join(TMP_NAME);
        let log_path = dir.join(MANIFEST_NAME);
        let payload = encode_snapshot(state);
        {
            let mut tmp = File::create(&tmp_path)
                .map_err(|e| StorageError::io("creating manifest checkpoint", e))?;
            tmp.write_all(&frame(&payload))
                .map_err(|e| StorageError::io("writing manifest checkpoint", e))?;
            tmp.sync_data().map_err(|e| StorageError::io("syncing manifest checkpoint", e))?;
        }
        std::fs::rename(&tmp_path, &log_path)
            .map_err(|e| StorageError::io("installing manifest checkpoint", e))?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&log_path)
            .map_err(|e| StorageError::io("reopening manifest log", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| StorageError::io("seeking manifest log", e))?;
        Ok(Manifest { dir: dir.to_path_buf(), file, edits_since_checkpoint: 0 })
    }
}

/// Wraps `payload` in the `[len][crc][payload]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

struct FrameScan {
    records: Vec<Vec<u8>>,
    valid_len: u64,
    torn_tail: bool,
}

/// Walks the framed records in `bytes`. A frame that extends past EOF
/// is a torn tail (discarded, `torn_tail` set); a *complete* frame with
/// a CRC mismatch is corruption and fails the scan.
fn scan_frames(path: &Path, bytes: &[u8]) -> Result<FrameScan> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return Ok(FrameScan { records, valid_len: pos as u64, torn_tail: false });
        }
        let (Some(len), Some(crc)) = (take_u32_le(bytes, pos), take_u32_le(bytes, pos + 4)) else {
            // Half a header: torn.
            return Ok(FrameScan { records, valid_len: pos as u64, torn_tail: true });
        };
        if len > MAX_RECORD_LEN {
            return Err(StorageError::corrupt(
                path,
                format!("manifest record length {len} exceeds limit"),
            ));
        }
        let start = pos + 8;
        let Some(end) = start.checked_add(len as usize) else {
            return Err(StorageError::corrupt(path, "manifest record length overflows"));
        };
        let Some(payload) = bytes.get(start..end) else {
            // Payload cut short by the crash: torn.
            return Ok(FrameScan { records, valid_len: pos as u64, torn_tail: true });
        };
        if crc32c(payload) != crc {
            return Err(StorageError::ChecksumMismatch {
                path: path.to_path_buf(),
                offset: pos as u64,
            });
        }
        records.push(payload.to_vec());
        pos = end;
    }
}

fn encode_snapshot(state: &ManifestState) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, TAG_SNAPSHOT);
    put_varint(&mut out, state.next_id);
    put_varint(&mut out, state.tables.len() as u64);
    for t in &state.tables {
        put_varint(&mut out, t.id);
        put_varint(&mut out, t.seal_version);
    }
    out
}

fn encode_edit(edit: &ManifestEdit, next_id: u64) -> Vec<u8> {
    let mut out = Vec::new();
    match edit {
        ManifestEdit::Flush { table } => {
            put_varint(&mut out, TAG_FLUSH);
            put_varint(&mut out, next_id);
            put_varint(&mut out, table.id);
            put_varint(&mut out, table.seal_version);
        }
        ManifestEdit::Compact { added, removed } => {
            put_varint(&mut out, TAG_COMPACT);
            put_varint(&mut out, next_id);
            put_varint(&mut out, added.id);
            put_varint(&mut out, added.seal_version);
            put_varint(&mut out, removed.len() as u64);
            for id in removed {
                put_varint(&mut out, *id);
            }
        }
    }
    out
}

/// Applies one decoded record to `state`. Any malformed payload is
/// corruption (its CRC already passed).
fn apply_record(path: &Path, payload: &[u8], state: &mut ManifestState) -> Result<()> {
    let bad = |detail: &str| StorageError::corrupt(path, detail);
    let mut pos = 0usize;
    let tag = take_varint(payload, &mut pos).ok_or_else(|| bad("manifest record missing tag"))?;
    let next_id =
        take_varint(payload, &mut pos).ok_or_else(|| bad("manifest record missing next_id"))?;
    match tag {
        TAG_SNAPSHOT => {
            let count = take_varint(payload, &mut pos)
                .ok_or_else(|| bad("manifest snapshot missing table count"))?;
            let mut tables = Vec::new();
            for _ in 0..count {
                let id = take_varint(payload, &mut pos)
                    .ok_or_else(|| bad("manifest snapshot truncated table id"))?;
                let seal_version = take_varint(payload, &mut pos)
                    .ok_or_else(|| bad("manifest snapshot truncated seal version"))?;
                tables.push(TableMeta { id, seal_version });
            }
            state.tables = tables;
        }
        TAG_FLUSH => {
            let id = take_varint(payload, &mut pos)
                .ok_or_else(|| bad("manifest flush missing table id"))?;
            let seal_version = take_varint(payload, &mut pos)
                .ok_or_else(|| bad("manifest flush missing seal version"))?;
            state.tables.insert(0, TableMeta { id, seal_version });
        }
        TAG_COMPACT => {
            let added_id = take_varint(payload, &mut pos)
                .ok_or_else(|| bad("manifest compact missing added id"))?;
            let seal_version = take_varint(payload, &mut pos)
                .ok_or_else(|| bad("manifest compact missing seal version"))?;
            let count = take_varint(payload, &mut pos)
                .ok_or_else(|| bad("manifest compact missing removed count"))?;
            let mut removed = Vec::new();
            for _ in 0..count {
                removed.push(
                    take_varint(payload, &mut pos)
                        .ok_or_else(|| bad("manifest compact truncated removed id"))?,
                );
            }
            if removed.is_empty() {
                return Err(bad("manifest compact removes nothing"));
            }
            let at = state
                .tables
                .iter()
                .position(|t| Some(t.id) == removed.first().copied())
                .ok_or_else(|| bad("manifest compact removes an unknown table"))?;
            for id in &removed {
                let idx = state
                    .tables
                    .iter()
                    .position(|t| t.id == *id)
                    .ok_or_else(|| bad("manifest compact removes an unknown table"))?;
                state.tables.remove(idx);
            }
            state
                .tables
                .insert(at.min(state.tables.len()), TableMeta { id: added_id, seal_version });
        }
        _ => return Err(bad("manifest record with unknown tag")),
    }
    if pos != payload.len() {
        return Err(bad("manifest record carries trailing bytes"));
    }
    state.next_id = next_id;
    Ok(())
}

/// Reads the legacy single-record `MANIFEST`:
/// `[len u32 LE][crc32c u32 LE][payload: varint count, count × varint id]`.
/// Tables are ordered newest-first by id (the pre-compaction invariant);
/// seal versions are unknown and recorded as 0.
fn read_legacy(path: &Path) -> Result<ManifestState> {
    let bytes = std::fs::read(path).map_err(|e| StorageError::io("reading legacy manifest", e))?;
    let (Some(len), Some(crc)) = (take_u32_le(&bytes, 0), take_u32_le(&bytes, 4)) else {
        return Err(StorageError::corrupt(path, "legacy manifest shorter than header"));
    };
    let payload = bytes
        .get(8..8usize.saturating_add(len as usize))
        .filter(|p| p.len() == len as usize)
        .ok_or_else(|| StorageError::corrupt(path, "legacy manifest shorter than its length"))?;
    if crc32c(payload) != crc {
        return Err(StorageError::ChecksumMismatch { path: path.to_path_buf(), offset: 0 });
    }
    let mut pos = 0usize;
    let count = take_varint(payload, &mut pos)
        .ok_or_else(|| StorageError::corrupt(path, "legacy manifest missing count"))?;
    let mut ids = Vec::new();
    for _ in 0..count {
        ids.push(
            take_varint(payload, &mut pos)
                .ok_or_else(|| StorageError::corrupt(path, "legacy manifest truncated id"))?,
        );
    }
    if pos != payload.len() {
        return Err(StorageError::corrupt(path, "legacy manifest carries trailing bytes"));
    }
    ids.sort_unstable_by(|a, b| b.cmp(a));
    let next_id = ids.first().copied().unwrap_or(0) + 1;
    let tables = ids.into_iter().map(|id| TableMeta { id, seal_version: 0 }).collect();
    Ok(ManifestState { tables, next_id, recovered_torn_tail: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn meta(id: u64, seal: u64) -> TableMeta {
        TableMeta { id, seal_version: seal }
    }

    #[test]
    fn fresh_open_then_edits_replay() {
        let dir = TempDir::new("manifest-fresh");
        let (mut m, state) = Manifest::open(dir.path(), false).unwrap();
        assert!(state.tables.is_empty());
        assert_eq!(state.next_id, 1);

        m.append(&ManifestEdit::Flush { table: meta(1, 10) }, &[meta(1, 10)], 2).unwrap();
        m.append(&ManifestEdit::Flush { table: meta(2, 20) }, &[meta(2, 20), meta(1, 10)], 3)
            .unwrap();
        drop(m);

        let (_, state) = Manifest::open(dir.path(), true).unwrap();
        assert_eq!(state.tables, vec![meta(2, 20), meta(1, 10)]);
        assert_eq!(state.next_id, 3);
        assert!(!state.recovered_torn_tail);
    }

    #[test]
    fn compact_edit_preserves_recency_position() {
        let dir = TempDir::new("manifest-compact");
        let (mut m, _) = Manifest::open(dir.path(), false).unwrap();
        let full = [meta(4, 40), meta(3, 30), meta(2, 20), meta(1, 10)];
        for (i, t) in full.iter().rev().enumerate() {
            m.append(&ManifestEdit::Flush { table: *t }, &full[full.len() - 1 - i..], t.id + 1)
                .unwrap();
        }
        // Merge the middle run [3, 2] into table 5.
        m.append(
            &ManifestEdit::Compact { added: meta(5, 30), removed: vec![3, 2] },
            &[meta(4, 40), meta(5, 30), meta(1, 10)],
            6,
        )
        .unwrap();
        drop(m);

        let (_, state) = Manifest::open(dir.path(), true).unwrap();
        assert_eq!(state.tables, vec![meta(4, 40), meta(5, 30), meta(1, 10)]);
        assert_eq!(state.next_id, 6);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let dir = TempDir::new("manifest-torn");
        let (mut m, _) = Manifest::open(dir.path(), false).unwrap();
        m.append(&ManifestEdit::Flush { table: meta(1, 1) }, &[meta(1, 1)], 2).unwrap();
        drop(m);
        // Simulate a crash mid-append: half a header.
        let path = dir.path().join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        let before = bytes.len();
        bytes.extend_from_slice(&[9, 0, 0]);
        std::fs::write(&path, &bytes).unwrap();

        let (_, state) = Manifest::open(dir.path(), true).unwrap();
        assert_eq!(state.tables, vec![meta(1, 1)]);
        assert!(state.recovered_torn_tail);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before as u64);
    }

    #[test]
    fn complete_record_with_bad_crc_is_corruption() {
        let dir = TempDir::new("manifest-badcrc");
        let (mut m, _) = Manifest::open(dir.path(), false).unwrap();
        m.append(&ManifestEdit::Flush { table: meta(1, 1) }, &[meta(1, 1)], 2).unwrap();
        drop(m);
        let path = dir.path().join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Manifest::open(dir.path(), true).is_err());
    }

    #[test]
    fn checkpoint_compacts_the_log() {
        let dir = TempDir::new("manifest-checkpoint");
        let (mut m, _) = Manifest::open(dir.path(), false).unwrap();
        let live = [meta(1, 1)];
        for _ in 0..(CHECKPOINT_EVERY + 3) {
            m.append(&ManifestEdit::Flush { table: meta(1, 1) }, &live, 2).unwrap();
        }
        drop(m);
        let path = dir.path().join(MANIFEST_NAME);
        let bytes = std::fs::read(&path).unwrap();
        // Far smaller than CHECKPOINT_EVERY appended records.
        assert!(bytes.len() < CHECKPOINT_EVERY * 8, "log was checkpointed: {}", bytes.len());
        let (_, state) = Manifest::open(dir.path(), true).unwrap();
        assert_eq!(state.next_id, 2);
    }

    #[test]
    fn legacy_manifest_bootstraps_and_is_removed() {
        let dir = TempDir::new("manifest-legacy");
        // Hand-build the legacy format listing tables 2 and 1.
        let mut payload = Vec::new();
        put_varint(&mut payload, 2);
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 2);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32c(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(dir.path().join(LEGACY_NAME), &bytes).unwrap();

        let (_, state) = Manifest::open(dir.path(), true).unwrap();
        assert_eq!(state.tables, vec![meta(2, 0), meta(1, 0)]);
        assert_eq!(state.next_id, 3);
        assert!(!dir.path().join(LEGACY_NAME).exists(), "legacy file replaced by the log");
        assert!(dir.path().join(MANIFEST_NAME).exists());
    }

    #[test]
    fn truncated_legacy_manifest_is_an_error() {
        let dir = TempDir::new("manifest-legacy-short");
        std::fs::write(dir.path().join(LEGACY_NAME), [7u8, 0, 0]).unwrap();
        assert!(Manifest::open(dir.path(), true).is_err());
    }

    #[test]
    fn destroyed_log_with_tables_is_an_error_but_fresh_crash_is_not() {
        let dir = TempDir::new("manifest-destroyed");
        std::fs::write(dir.path().join(MANIFEST_NAME), [3u8, 0]).unwrap();
        // No tables on disk: a crash during the very first create.
        let (_, state) = Manifest::open(dir.path(), false).unwrap();
        assert!(state.tables.is_empty());
        drop(state);

        let dir = TempDir::new("manifest-destroyed-tables");
        std::fs::write(dir.path().join(MANIFEST_NAME), [3u8, 0]).unwrap();
        assert!(Manifest::open(dir.path(), true).is_err());
    }

    #[test]
    fn stale_tmp_file_is_cleaned_up() {
        let dir = TempDir::new("manifest-tmp");
        let (mut m, _) = Manifest::open(dir.path(), false).unwrap();
        m.append(&ManifestEdit::Flush { table: meta(1, 1) }, &[meta(1, 1)], 2).unwrap();
        drop(m);
        std::fs::write(dir.path().join(TMP_NAME), b"half a checkpoint").unwrap();
        let (_, state) = Manifest::open(dir.path(), true).unwrap();
        assert_eq!(state.tables, vec![meta(1, 1)]);
        assert!(!dir.path().join(TMP_NAME).exists());
    }
}
