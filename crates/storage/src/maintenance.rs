//! The background maintenance worker: a dedicated thread per
//! [`LsmEngine`] that runs compaction between commits.
//!
//! Writers never compact inline once a worker is attached — a flush
//! appends its manifest edit, pokes the worker's [`Signal`], and
//! returns. The worker drains the compaction picker (possibly several
//! merges back-to-back), then parks until the next flush or periodic
//! tick. A tick exists so deletes-without-flushes and pin releases
//! still get serviced.
//!
//! Shutdown contract: dropping the [`MaintenanceHandle`] (or calling
//! [`MaintenanceHandle::shutdown`]) sets the shutdown flag, wakes the
//! thread, joins it, and detaches the engine's flush listener — after
//! which the engine falls back to inline compaction. In-flight merges
//! finish; nothing is interrupted mid-edit, so the manifest never sees
//! a half-committed transition.
//!
//! Version GC plumbing: the worker re-reads a `pin_floor` callback
//! before every merge. `pass-core` wires its snapshot/subscription pin
//! registry in through it, so tombstones and shadowed versions are only
//! dropped once no live reader can still observe them.
//!
//! [`spawn_task_worker`] reuses the same thread/signal/shutdown shape
//! for non-engine jobs (pass-core schedules cold-record aging with it).

use crate::engine::LsmEngine;
use crate::error::StorageError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Callback yielding the oldest version any live reader still pins
/// (`None` ⇒ no pins, everything reclaimable).
pub type PinFloor = Arc<dyn Fn() -> Option<u64> + Send + Sync>;

/// Wake-up latch between flush paths and the worker thread.
///
/// Built on `std::sync` (the vendored `parking_lot` shim has no
/// condvar); poisoning is swallowed to match the shim's semantics.
pub struct Signal {
    state: std::sync::Mutex<SignalState>,
    cv: Condvar,
}

#[derive(Default)]
struct SignalState {
    pending: bool,
    shutdown: bool,
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal").finish_non_exhaustive()
    }
}

enum Wake {
    /// Work was signalled.
    Work,
    /// The timeout elapsed.
    Tick,
    /// Shutdown requested.
    Shutdown,
}

impl Signal {
    fn new() -> Arc<Signal> {
        Arc::new(Signal {
            state: std::sync::Mutex::new(SignalState::default()),
            cv: Condvar::new(),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SignalState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks work pending and wakes the worker. Cheap, lock-held for a
    /// few instructions; safe to call from flush paths.
    pub fn notify(&self) {
        self.lock_state().pending = true;
        self.cv.notify_one();
    }

    fn shutdown(&self) {
        self.lock_state().shutdown = true;
        self.cv.notify_one();
    }

    /// Parks up to `timeout`; consumes the pending flag.
    fn wait(&self, timeout: Duration) -> Wake {
        let mut st = self.lock_state();
        if !st.shutdown && !st.pending {
            let (guard, _timed_out) =
                self.cv.wait_timeout(st, timeout).unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        if st.shutdown {
            return Wake::Shutdown;
        }
        if st.pending {
            st.pending = false;
            return Wake::Work;
        }
        Wake::Tick
    }
}

/// Options for [`spawn_engine_worker`].
#[derive(Clone)]
pub struct MaintenanceOptions {
    /// Periodic wake-up interval (work is also signalled by flushes).
    pub tick: Duration,
    /// Pin-floor callback for version GC; `None` ⇒ nothing is pinned.
    pub pin_floor: Option<PinFloor>,
}

impl Default for MaintenanceOptions {
    fn default() -> Self {
        MaintenanceOptions { tick: Duration::from_millis(250), pin_floor: None }
    }
}

impl std::fmt::Debug for MaintenanceOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceOptions")
            .field("tick", &self.tick)
            .field("pin_floor", &self.pin_floor.as_ref().map(|_| "fn"))
            .finish()
    }
}

/// Owns a maintenance thread; dropping it shuts the thread down cleanly.
pub struct MaintenanceHandle {
    signal: Arc<Signal>,
    thread: Option<JoinHandle<()>>,
    // `Sync` so structs embedding a handle stay shareable across threads.
    detach: Option<Box<dyn FnOnce() + Send + Sync>>,
    errors: Arc<AtomicU64>,
    last_error: Arc<Mutex<Option<String>>>,
}

impl std::fmt::Debug for MaintenanceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceHandle").field("errors", &self.errors()).finish()
    }
}

impl MaintenanceHandle {
    /// Nudges the worker outside its tick (tests, manual triggers).
    pub fn wake(&self) {
        self.signal.notify();
    }

    /// Background errors recorded so far (each also remembered in
    /// [`Self::last_error`]). Maintenance failure never fails a commit;
    /// callers poll this to surface trouble.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Human-readable text of the most recent background error.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Stops the worker and joins it (also what `Drop` does).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.signal.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(detach) = self.detach.take() {
            detach();
        }
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns the compaction worker for `engine` and attaches it as the
/// engine's flush listener (disabling inline compaction).
///
/// Lock order: the worker thread only calls [`LsmEngine::maybe_compact`],
/// which takes the engine's compaction mutex and then its state lock in
/// short critical sections; no other lock is held across a merge.
pub fn spawn_engine_worker(engine: Arc<LsmEngine>, opts: MaintenanceOptions) -> MaintenanceHandle {
    let signal = Signal::new();
    engine.set_flush_signal(Some(Arc::clone(&signal)));
    let errors = Arc::new(AtomicU64::new(0));
    let last_error = Arc::new(Mutex::new(None));

    let thread = {
        let signal = Arc::clone(&signal);
        let errors = Arc::clone(&errors);
        let last_error = Arc::clone(&last_error);
        let engine = Arc::clone(&engine);
        std::thread::Builder::new().name("pass-maintenance".into()).spawn(move || loop {
            if let Wake::Shutdown = signal.wait(opts.tick) {
                return;
            }
            // Drain the picker: one wake-up may owe several merges.
            loop {
                let floor = opts.pin_floor.as_ref().and_then(|f| f());
                match engine.maybe_compact(floor) {
                    Ok(true) => continue,
                    Ok(false) => break,
                    Err(e) => {
                        record_error(&errors, &last_error, &e);
                        break;
                    }
                }
            }
        })
    };

    let detach: Box<dyn FnOnce() + Send + Sync> = {
        let engine = Arc::clone(&engine);
        Box::new(move || engine.set_flush_signal(None))
    };
    MaintenanceHandle { signal, thread: thread.ok(), detach: Some(detach), errors, last_error }
}

/// Spawns a generic periodic worker running `task` once per tick (or
/// sooner when [`MaintenanceHandle::wake`] is called). The task should
/// swallow its own errors or report them via `record`-style side
/// channels; a panic kills only the worker thread.
pub fn spawn_task_worker(
    name: &str,
    tick: Duration,
    mut task: impl FnMut() + Send + 'static,
) -> MaintenanceHandle {
    let signal = Signal::new();
    let thread = {
        let signal = Arc::clone(&signal);
        std::thread::Builder::new().name(name.to_string()).spawn(move || loop {
            if let Wake::Shutdown = signal.wait(tick) {
                return;
            }
            task();
        })
    };
    MaintenanceHandle {
        signal,
        thread: thread.ok(),
        detach: None,
        errors: Arc::new(AtomicU64::new(0)),
        last_error: Arc::new(Mutex::new(None)),
    }
}

fn record_error(errors: &AtomicU64, last: &Mutex<Option<String>>, e: &StorageError) {
    errors.fetch_add(1, Ordering::Relaxed);
    *last.lock() = Some(e.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn task_worker_runs_on_wake_and_stops_on_drop() {
        let runs = Arc::new(AtomicUsize::new(0));
        let handle = {
            let runs = Arc::clone(&runs);
            spawn_task_worker("test-task", Duration::from_secs(3600), move || {
                runs.fetch_add(1, Ordering::SeqCst);
            })
        };
        handle.wake();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while runs.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(runs.load(Ordering::SeqCst) >= 1, "woken task ran");
        drop(handle); // joins — must not hang
        let after = runs.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(runs.load(Ordering::SeqCst), after, "no runs after shutdown");
    }

    #[test]
    fn ticks_fire_without_wakes() {
        let runs = Arc::new(AtomicUsize::new(0));
        let _handle = {
            let runs = Arc::clone(&runs);
            spawn_task_worker("test-tick", Duration::from_millis(10), move || {
                runs.fetch_add(1, Ordering::SeqCst);
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while runs.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(runs.load(Ordering::SeqCst) >= 3, "periodic ticks drove the task");
    }
}
