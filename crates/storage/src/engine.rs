//! The durable log-structured engine.
//!
//! A classic single-writer LSM shape, kept deliberately synchronous so
//! tests and crash-injection sweeps are deterministic:
//!
//! * writes append a batch to the WAL, then apply to the memtable;
//! * a full memtable flushes to a new SSTable and resets the WAL;
//! * when enough tables accumulate, a full merge compacts them into one,
//!   dropping tombstones;
//! * the `MANIFEST` file (written via temp-file + rename, which POSIX
//!   makes atomic) names the live tables, so a crash mid-flush or
//!   mid-compaction leaves only garbage files that the next open deletes.
//!
//! Recovery order on open: read manifest → open listed tables → delete
//! unlisted table files → replay the WAL's valid prefix into the memtable.

use crate::batch::{put_varint, take_u32_le, take_varint, WriteBatch};
use crate::crc::crc32c;
use crate::error::{Result, StorageError};
use crate::iter::{MergeIter, Source};
use crate::kv::KvStore;
use crate::memtable::MemTable;
use crate::sstable::{SsTable, TableBuilder, TableOptions};
use crate::wal::{self, SyncPolicy, Wal};
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const WAL_FILE: &str = "wal.log";

/// Engine tuning.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_bytes: usize,
    /// SSTable block/bloom parameters.
    pub table: TableOptions,
    /// WAL durability policy.
    pub sync: SyncPolicy,
    /// Run a full compaction once this many tables are live.
    pub compact_at: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            memtable_bytes: 4 << 20,
            table: TableOptions::default(),
            sync: SyncPolicy::OnWrite,
            compact_at: 8,
        }
    }
}

/// Observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Bytes resident in the memtable.
    pub memtable_bytes: usize,
    /// Entries resident in the memtable.
    pub memtable_entries: usize,
    /// Live SSTables.
    pub num_tables: usize,
    /// Entries across live SSTables (tombstones included).
    pub table_entries: u64,
    /// Flushes performed since open.
    pub flushes: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// True when the last open found (and discarded) a torn WAL tail.
    pub recovered_torn_tail: bool,
}

struct Inner {
    dir: PathBuf,
    opts: EngineOptions,
    wal: Wal,
    mem: MemTable,
    /// Live tables, newest first.
    tables: Vec<Arc<SsTable>>,
    next_id: u64,
    flushes: u64,
    compactions: u64,
    recovered_torn_tail: bool,
}

/// A durable [`KvStore`] rooted at a directory.
pub struct LsmEngine {
    inner: RwLock<Inner>,
}

impl std::fmt::Debug for LsmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("LsmEngine")
            .field("dir", &inner.dir)
            .field("tables", &inner.tables.len())
            .finish()
    }
}

impl LsmEngine {
    /// Opens (creating if necessary) an engine at `dir`.
    pub fn open(dir: impl Into<PathBuf>, opts: EngineOptions) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("creating engine dir {}", dir.display()), e))?;

        let live_ids = read_manifest(&dir)?;

        // Open listed tables (newest = highest id first).
        let mut ids = live_ids.clone();
        ids.sort_unstable_by(|a, b| b.cmp(a));
        let mut tables = Vec::with_capacity(ids.len());
        for id in &ids {
            tables.push(Arc::new(SsTable::open(table_path(&dir, *id))?));
        }

        // Remove table files the manifest does not know about (debris from
        // a crash mid-flush/compaction).
        for entry in
            std::fs::read_dir(&dir).map_err(|e| StorageError::io("listing engine dir", e))?
        {
            let entry = entry.map_err(|e| StorageError::io("listing engine dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = parse_table_name(name) {
                if !live_ids.contains(&id) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }

        // Replay the WAL into a fresh memtable.
        let wal_path = dir.join(WAL_FILE);
        let recovery = wal::recover(&wal_path)?;
        let mut mem = MemTable::new();
        for payload in &recovery.records {
            let batch = WriteBatch::decode(payload).ok_or_else(|| {
                // A record with a valid CRC but an undecodable payload is
                // real corruption, not a torn tail.
                StorageError::corrupt(&wal_path, "valid-CRC record failed to decode")
            })?;
            apply_to_memtable(&mut mem, batch);
        }
        let wal = if wal_path.exists() {
            Wal::open_for_append(&wal_path, opts.sync, recovery.valid_len)?
        } else {
            Wal::create(&wal_path, opts.sync)?
        };

        let next_id = live_ids.iter().copied().max().map_or(0, |m| m + 1);
        Ok(LsmEngine {
            inner: RwLock::new(Inner {
                dir,
                opts,
                wal,
                mem,
                tables,
                next_id,
                flushes: 0,
                compactions: 0,
                recovered_torn_tail: recovery.torn_tail,
            }),
        })
    }

    /// Opens with default options.
    pub fn open_default(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open(dir, EngineOptions::default())
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.read();
        EngineStats {
            memtable_bytes: inner.mem.approx_bytes(),
            memtable_entries: inner.mem.len(),
            num_tables: inner.tables.len(),
            table_entries: inner.tables.iter().map(|t| t.entry_count()).sum(),
            flushes: inner.flushes,
            compactions: inner.compactions,
            recovered_torn_tail: inner.recovered_torn_tail,
        }
    }

    /// Forces a memtable flush (normally triggered by size).
    pub fn force_flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        flush_locked(&mut inner)
    }

    /// Forces a full compaction (normally triggered by table count).
    pub fn force_compact(&self) -> Result<()> {
        let mut inner = self.inner.write();
        compact_locked(&mut inner)
    }

    /// The engine directory.
    pub fn dir(&self) -> PathBuf {
        self.inner.read().dir.clone()
    }
}

impl KvStore for LsmEngine {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = self.inner.read();
        if let Some(hit) = inner.mem.get(key) {
            return Ok(hit.map(<[u8]>::to_vec));
        }
        for table in &inner.tables {
            if let Some(hit) = table.get(key)? {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    fn apply(&self, batch: WriteBatch) -> Result<()> {
        batch.validate()?;
        if batch.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        inner.wal.append(&batch.encode())?;
        apply_to_memtable(&mut inner.mem, batch);
        if inner.mem.approx_bytes() >= inner.opts.memtable_bytes {
            flush_locked(&mut inner)?;
        }
        Ok(())
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if end.is_some_and(|e| e <= start) {
            return Ok(Vec::new());
        }
        let inner = self.inner.read();
        let mut sources: Vec<Source> = Vec::with_capacity(inner.tables.len() + 1);
        let mem_entries: Vec<_> = inner
            .mem
            .range(start, end)
            .map(|(k, v)| Ok((k.to_vec(), v.map(<[u8]>::to_vec))))
            .collect();
        sources.push(Box::new(mem_entries.into_iter()));
        for table in &inner.tables {
            let entries = table.scan_range(start, end)?;
            sources.push(Box::new(entries.into_iter().map(Ok)));
        }
        let mut out = Vec::new();
        for item in MergeIter::new(sources) {
            let (k, v) = item?;
            if let Some(v) = v {
                out.push((k, v));
            }
        }
        Ok(out)
    }

    fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.mem.is_empty() {
            return inner.wal.sync();
        }
        flush_locked(&mut inner)
    }
}

fn apply_to_memtable(mem: &mut MemTable, batch: WriteBatch) {
    for op in batch.into_ops() {
        match op {
            crate::batch::Op::Put { key, value } => mem.put(key, value),
            crate::batch::Op::Delete { key } => mem.delete(key),
        }
    }
}

fn flush_locked(inner: &mut Inner) -> Result<()> {
    if inner.mem.is_empty() {
        return Ok(());
    }
    let id = inner.next_id;
    inner.next_id += 1;
    let path = table_path(&inner.dir, id);
    let mut builder = TableBuilder::create(&path, inner.mem.len(), inner.opts.table.clone())?;
    for (key, value) in inner.mem.iter() {
        builder.add(key, value)?;
    }
    builder.finish()?;

    // Commit point: the manifest now names the new table.
    let mut ids = Vec::with_capacity(inner.tables.len() + 1);
    for table in &inner.tables {
        ids.push(table_id(table.path())?);
    }
    ids.push(id);
    write_manifest(&inner.dir, &ids)?;

    inner.tables.insert(0, Arc::new(SsTable::open(&path)?));
    inner.mem.clear();
    // The WAL's contents are now durable in the table; start a fresh log.
    inner.wal = Wal::create(inner.dir.join(WAL_FILE), inner.opts.sync)?;
    inner.flushes += 1;

    if inner.tables.len() >= inner.opts.compact_at {
        compact_locked(inner)?;
    }
    Ok(())
}

fn compact_locked(inner: &mut Inner) -> Result<()> {
    if inner.tables.len() < 2 {
        return Ok(());
    }
    let id = inner.next_id;
    inner.next_id += 1;
    let path = table_path(&inner.dir, id);
    let expected: u64 = inner.tables.iter().map(|t| t.entry_count()).sum();
    let mut builder = TableBuilder::create(&path, expected as usize, inner.opts.table.clone())?;

    let sources: Vec<Source> = inner.tables.iter().map(|t| Box::new(t.iter()) as Source).collect();
    for item in MergeIter::new(sources) {
        let (key, value) = item?;
        // Merging *all* tables: a tombstone shadows nothing older, drop it.
        if let Some(value) = value {
            builder.add(&key, Some(&value))?;
        }
    }
    builder.finish()?;

    let old_paths: Vec<PathBuf> = inner.tables.iter().map(|t| t.path().to_path_buf()).collect();
    // Commit point.
    write_manifest(&inner.dir, &[id])?;
    inner.tables = vec![Arc::new(SsTable::open(&path)?)];
    inner.compactions += 1;
    for old in old_paths {
        let _ = std::fs::remove_file(old);
    }
    Ok(())
}

fn table_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("sst-{id:010}.sst"))
}

fn table_id(path: &Path) -> Result<u64> {
    path.file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_table_name)
        .ok_or_else(|| StorageError::corrupt(path, "live table with a non-engine file name"))
}

fn parse_table_name(name: &str) -> Option<u64> {
    name.strip_prefix("sst-")?.strip_suffix(".sst")?.parse().ok()
}

fn write_manifest(dir: &Path, ids: &[u64]) -> Result<()> {
    let mut payload = Vec::with_capacity(ids.len() * 4 + 4);
    put_varint(&mut payload, ids.len() as u64);
    for id in ids {
        put_varint(&mut payload, *id);
    }
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32c(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);

    let tmp = dir.join(MANIFEST_TMP);
    std::fs::write(&tmp, &buf).map_err(|e| StorageError::io("writing manifest temp", e))?;
    // Rename is the atomic commit point.
    std::fs::rename(&tmp, dir.join(MANIFEST))
        .map_err(|e| StorageError::io("committing manifest", e))
}

fn read_manifest(dir: &Path) -> Result<Vec<u64>> {
    let path = dir.join(MANIFEST);
    let buf = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StorageError::io("reading manifest", e)),
    };
    if buf.len() < 8 {
        return Err(StorageError::corrupt(&path, "manifest shorter than header"));
    }
    let len = take_u32_le(&buf, 0)
        .ok_or_else(|| StorageError::corrupt(&path, "manifest length field"))?
        as usize;
    let crc =
        take_u32_le(&buf, 4).ok_or_else(|| StorageError::corrupt(&path, "manifest crc field"))?;
    if buf.len() != 8 + len {
        return Err(StorageError::corrupt(&path, "manifest length mismatch"));
    }
    let payload =
        buf.get(8..).ok_or_else(|| StorageError::corrupt(&path, "manifest shorter than header"))?;
    if crc32c(payload) != crc {
        return Err(StorageError::ChecksumMismatch { path, offset: 8 });
    }
    let mut pos = 0usize;
    let count = take_varint(payload, &mut pos)
        .ok_or_else(|| StorageError::corrupt(&path, "manifest count"))? as usize;
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(
            take_varint(payload, &mut pos)
                .ok_or_else(|| StorageError::corrupt(&path, "manifest id"))?,
        );
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn small_opts() -> EngineOptions {
        EngineOptions {
            memtable_bytes: 8 << 10, // flush often so tests exercise tables
            compact_at: 4,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn put_get_delete_across_flush() {
        let dir = TempDir::new("lsm-basic");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.force_flush().unwrap();
        db.delete(b"a").unwrap();
        db.put(b"c", b"3").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None, "tombstone shadows flushed value");
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.get(b"c").unwrap(), Some(b"3".to_vec()));
    }

    #[test]
    fn reopen_recovers_wal_and_tables() {
        let dir = TempDir::new("lsm-reopen");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            db.put(b"flushed", b"on disk").unwrap();
            db.force_flush().unwrap();
            db.put(b"unflushed", b"in wal").unwrap();
            // Dropped without flush: the WAL is the only copy of `unflushed`.
        }
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert_eq!(db.get(b"flushed").unwrap(), Some(b"on disk".to_vec()));
        assert_eq!(db.get(b"unflushed").unwrap(), Some(b"in wal".to_vec()));
    }

    #[test]
    fn many_writes_trigger_flush_and_compaction() {
        let dir = TempDir::new("lsm-compact");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        for i in 0..2_000u32 {
            db.put(format!("key-{i:05}").as_bytes(), &[0u8; 64]).unwrap();
        }
        let stats = db.stats();
        assert!(stats.flushes > 0, "expected automatic flushes: {stats:?}");
        assert!(stats.compactions > 0, "expected automatic compaction: {stats:?}");
        for i in (0..2_000u32).step_by(97) {
            assert_eq!(db.get(format!("key-{i:05}").as_bytes()).unwrap(), Some(vec![0u8; 64]));
        }
    }

    #[test]
    fn compaction_drops_tombstones_without_resurrection() {
        let dir = TempDir::new("lsm-tomb");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        db.put(b"victim", b"v1").unwrap();
        db.force_flush().unwrap();
        db.delete(b"victim").unwrap();
        db.force_flush().unwrap();
        db.force_compact().unwrap();
        assert_eq!(db.get(b"victim").unwrap(), None);
        // Reopen: still gone (the old table holding v1 was deleted).
        drop(db);
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert_eq!(db.get(b"victim").unwrap(), None);
    }

    #[test]
    fn scan_merges_memtable_and_tables() {
        let dir = TempDir::new("lsm-scan");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        db.put(b"p/1", b"old").unwrap();
        db.put(b"p/3", b"t3").unwrap();
        db.force_flush().unwrap();
        db.put(b"p/1", b"new").unwrap(); // shadow in memtable
        db.put(b"p/2", b"t2").unwrap();
        db.delete(b"p/3").unwrap(); // tombstone in memtable
        db.put(b"q/1", b"other").unwrap();

        let got = db.scan_prefix(b"p/").unwrap();
        assert_eq!(
            got,
            vec![(b"p/1".to_vec(), b"new".to_vec()), (b"p/2".to_vec(), b"t2".to_vec()),]
        );
    }

    #[test]
    fn batch_atomicity_survives_crash_replay() {
        let dir = TempDir::new("lsm-atomic");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            let mut batch = WriteBatch::new();
            batch.put(b"pair/a".to_vec(), b"1".to_vec());
            batch.put(b"pair/b".to_vec(), b"2".to_vec());
            db.apply(batch).unwrap();
        }
        // Truncate the WAL inside the (single) batch record: the whole
        // batch must disappear, never half of it.
        let wal_path = dir.path().join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        for cut in 1..bytes.len() {
            std::fs::write(&wal_path, &bytes[..cut]).unwrap();
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            let a = db.get(b"pair/a").unwrap();
            let b = db.get(b"pair/b").unwrap();
            assert_eq!(a.is_some(), b.is_some(), "torn batch at cut {cut}: a={a:?} b={b:?}");
            drop(db);
            std::fs::write(&wal_path, &bytes).unwrap();
        }
    }

    #[test]
    fn crash_debris_tables_are_cleaned_up() {
        let dir = TempDir::new("lsm-debris");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            db.put(b"k", b"v").unwrap();
            db.force_flush().unwrap();
        }
        // Simulate a crash mid-flush: an orphan table not in the manifest.
        let orphan = dir.path().join("sst-0000009999.sst");
        std::fs::write(&orphan, b"garbage that is not a table").unwrap();
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert!(!orphan.exists(), "orphan removed on open");
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn empty_engine_reopens_cleanly() {
        let dir = TempDir::new("lsm-empty");
        {
            let _db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        }
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert_eq!(db.get(b"anything").unwrap(), None);
        assert_eq!(db.stats().num_tables, 0);
    }

    #[test]
    fn stats_report_recovered_torn_tail() {
        let dir = TempDir::new("lsm-torn-stat");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            db.put(b"a", b"1").unwrap();
            db.put(b"b", b"2").unwrap();
        }
        let wal_path = dir.path().join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert!(db.stats().recovered_torn_tail);
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), None, "torn record discarded");
    }
}
