//! The durable log-structured engine.
//!
//! A classic LSM shape, kept deliberately synchronous on the write path
//! so tests and crash-injection sweeps are deterministic:
//!
//! * writes append a batch to the WAL, then apply to the memtable;
//! * a full memtable flushes to a new SSTable and resets the WAL;
//! * the live table set is owned by the crash-safe manifest log
//!   ([`crate::manifest`]): flushes and compactions commit by appending
//!   an edit, so a crash leaves either the old or the new edition —
//!   never a mix — and files the manifest does not name are debris the
//!   next open deletes;
//! * compaction runs either inline (no worker attached: a full merge
//!   once [`EngineOptions::compact_at`] tables accumulate, preserving
//!   the original single-writer behavior) or in the background through
//!   [`LsmEngine::maybe_compact`], which follows the tiered
//!   [`CompactionPolicy`] and merges *outside* the write lock;
//! * point reads and range scans go through the shared
//!   [`BlockCache`] when [`EngineOptions::cache`] is set.
//!
//! Recovery order on open: replay manifest → open listed tables →
//! delete unlisted table files → replay the WAL's valid prefix into the
//! memtable.

use crate::batch::WriteBatch;
use crate::cache::BlockCache;
use crate::compaction::{self, CompactionPolicy, TableInfo};
use crate::error::{Result, StorageError};
use crate::iter::{MergeIter, Source};
use crate::kv::KvStore;
use crate::maintenance::Signal;
use crate::manifest::{Manifest, ManifestEdit, TableMeta};
use crate::memtable::MemTable;
use crate::sstable::{SsTable, TableOptions};
use crate::wal::{self, SyncPolicy, Wal};
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WAL_FILE: &str = "wal.log";

/// Engine tuning.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_bytes: usize,
    /// SSTable block/bloom parameters.
    pub table: TableOptions,
    /// WAL durability policy.
    pub sync: SyncPolicy,
    /// Inline fallback: run a full compaction once this many tables are
    /// live. Only fires when no maintenance worker is attached.
    pub compact_at: usize,
    /// Tiered policy driving [`LsmEngine::maybe_compact`].
    pub compaction: CompactionPolicy,
    /// Shared cache for decoded data blocks; `None` ⇒ uncached reads.
    /// Share one [`Arc`] across shard engines to give them one budget.
    pub cache: Option<Arc<BlockCache>>,
    /// External version clock stamped onto tables at flush
    /// (`seal_version`). `pass-core` wires its commit version in so
    /// compaction can compare tables against the snapshot pin floor.
    pub seal_clock: Option<Arc<AtomicU64>>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            memtable_bytes: 4 << 20,
            table: TableOptions::default(),
            sync: SyncPolicy::OnWrite,
            compact_at: 8,
            compaction: CompactionPolicy::default(),
            cache: None,
            seal_clock: None,
        }
    }
}

impl EngineOptions {
    /// Convenience: attach a fresh block cache of `bytes` capacity.
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache = Some(Arc::new(BlockCache::new(bytes)));
        self
    }
}

/// Observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Bytes resident in the memtable.
    pub memtable_bytes: usize,
    /// Entries resident in the memtable.
    pub memtable_entries: usize,
    /// Live SSTables.
    pub num_tables: usize,
    /// Entries across live SSTables (tombstones included).
    pub table_entries: u64,
    /// On-disk bytes across live SSTables.
    pub live_table_bytes: u64,
    /// Flushes performed since open.
    pub flushes: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Block-cache hits (shared cache totals when engines share one).
    pub cache_hits: u64,
    /// Block-cache misses.
    pub cache_misses: u64,
    /// True when the last open found (and discarded) a torn WAL tail.
    pub recovered_torn_tail: bool,
}

/// One live table plus its manifest bookkeeping.
struct TableHandle {
    table: Arc<SsTable>,
    meta: TableMeta,
}

struct Inner {
    dir: PathBuf,
    opts: EngineOptions,
    wal: Wal,
    mem: MemTable,
    /// Live tables, newest first (mirrors the manifest order).
    tables: Vec<TableHandle>,
    manifest: Manifest,
    next_id: u64,
    flushes: u64,
    compactions: u64,
    recovered_torn_tail: bool,
    /// When set, flushes poke the maintenance worker instead of
    /// compacting inline.
    flush_signal: Option<Arc<Signal>>,
}

impl Inner {
    fn metas(&self) -> Vec<TableMeta> {
        self.tables.iter().map(|h| h.meta).collect()
    }
}

/// A durable [`KvStore`] rooted at a directory.
pub struct LsmEngine {
    inner: RwLock<Inner>,
    /// Serializes compactions (background worker vs forced) so at most
    /// one merge is in flight per engine.
    compact_lock: Mutex<()>,
}

impl std::fmt::Debug for LsmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("LsmEngine")
            .field("dir", &inner.dir)
            .field("tables", &inner.tables.len())
            .finish()
    }
}

impl LsmEngine {
    /// Opens (creating if necessary) an engine at `dir`.
    pub fn open(dir: impl Into<PathBuf>, opts: EngineOptions) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("creating engine dir {}", dir.display()), e))?;

        // One directory listing serves the manifest's corruption
        // heuristic and the debris sweep below.
        let on_disk = list_table_files(&dir)?;
        let (manifest, mstate) = Manifest::open(&dir, !on_disk.is_empty())?;

        let mut tables = Vec::with_capacity(mstate.tables.len());
        for meta in &mstate.tables {
            let table = SsTable::open_with_cache(table_path(&dir, meta.id), opts.cache.clone())?;
            tables.push(TableHandle { table: Arc::new(table), meta: *meta });
        }

        // Remove table files the manifest does not know about: debris
        // from a crash mid-flush (never registered) or mid-compaction
        // cleanup (already replaced).
        for (id, path) in &on_disk {
            if !mstate.tables.iter().any(|t| t.id == *id) {
                // pass-lint: allow(l8, reason="best-effort debris sweep; an unremovable orphan is re-swept on the next open and never read, because the manifest does not reference it")
                let _ = std::fs::remove_file(path);
            }
        }

        // Replay the WAL into a fresh memtable.
        let wal_path = dir.join(WAL_FILE);
        let recovery = wal::recover(&wal_path)?;
        let mut mem = MemTable::new();
        for payload in &recovery.records {
            let batch = WriteBatch::decode(payload).ok_or_else(|| {
                // A record with a valid CRC but an undecodable payload is
                // real corruption, not a torn tail.
                StorageError::corrupt(&wal_path, "valid-CRC record failed to decode")
            })?;
            apply_to_memtable(&mut mem, batch);
        }
        let wal = if wal_path.exists() {
            Wal::open_for_append(&wal_path, opts.sync, recovery.valid_len)?
        } else {
            Wal::create(&wal_path, opts.sync)?
        };

        Ok(LsmEngine {
            inner: RwLock::new(Inner {
                dir,
                opts,
                wal,
                mem,
                tables,
                manifest,
                next_id: mstate.next_id,
                flushes: 0,
                compactions: 0,
                recovered_torn_tail: recovery.torn_tail || mstate.recovered_torn_tail,
                flush_signal: None,
            }),
            compact_lock: Mutex::new(()),
        })
    }

    /// Opens with default options.
    pub fn open_default(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open(dir, EngineOptions::default())
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.read();
        let cache = inner.opts.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        EngineStats {
            memtable_bytes: inner.mem.approx_bytes(),
            memtable_entries: inner.mem.len(),
            num_tables: inner.tables.len(),
            table_entries: inner.tables.iter().map(|h| h.table.entry_count()).sum(),
            live_table_bytes: inner.tables.iter().map(|h| h.table.file_len()).sum(),
            flushes: inner.flushes,
            compactions: inner.compactions,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            recovered_torn_tail: inner.recovered_torn_tail,
        }
    }

    /// Forces a memtable flush (normally triggered by size).
    pub fn force_flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        flush_locked(&mut inner)
    }

    /// Forces a full compaction into one table, dropping tombstones
    /// (normally compaction is tiered and pin-gated; this is the
    /// explicit everything-now variant for tests and tools).
    pub fn force_compact(&self) -> Result<()> {
        let _serialize = self.compact_lock.lock();
        let mut inner = self.inner.write();
        compact_all_locked(&mut inner, None)
    }

    /// Attaches (or with `None` detaches) a maintenance worker's flush
    /// signal. While attached, flushes notify the worker instead of
    /// compacting inline.
    pub fn set_flush_signal(&self, signal: Option<Arc<Signal>>) {
        self.inner.write().flush_signal = signal;
    }

    /// Write backpressure: parks this writer (off-lock) until the
    /// maintenance worker drains the table backlog below the stall
    /// threshold. Bounded by a deadline so a dead or detached worker
    /// can never wedge ingest; a still-behind worker just re-stalls the
    /// writer at its next flush.
    fn stall_for_backlog(&self) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(1);
        loop {
            std::thread::sleep(std::time::Duration::from_millis(1));
            let inner = self.inner.read();
            let drained = inner.flush_signal.is_none()
                || inner.tables.len() < inner.opts.compaction.stall_tables;
            drop(inner);
            if drained || std::time::Instant::now() >= deadline {
                return;
            }
        }
    }

    /// Runs at most one tiered compaction if the policy picks one,
    /// returning whether a merge happened. `pin_floor` is the oldest
    /// version a live snapshot/subscription still pins: tombstones are
    /// only dropped when the picked run reaches the oldest table *and*
    /// every input was sealed at or below the floor.
    ///
    /// Lock order: takes the engine's compaction mutex for the whole
    /// call; takes the state write lock briefly to snapshot inputs and
    /// allocate the output id, releases it for the merge itself, then
    /// re-takes it to commit the manifest edit and install the swap.
    pub fn maybe_compact(&self, pin_floor: Option<u64>) -> Result<bool> {
        let _serialize = self.compact_lock.lock();

        // Phase 1 (locked): pick a run and snapshot its inputs.
        let (inputs, removed_ids, out_id, out_seal, drop_tombstones, dir, topts) = {
            let mut inner = self.inner.write();
            let infos: Vec<TableInfo> = inner
                .tables
                .iter()
                .map(|h| TableInfo {
                    id: h.meta.id,
                    bytes: h.table.file_len(),
                    seal_version: h.meta.seal_version,
                })
                .collect();
            let Some(pick) = inner.opts.compaction.pick(&infos) else {
                return Ok(false);
            };
            let run = match inner.tables.get(pick.range.clone()) {
                Some(run) if !run.is_empty() => run,
                _ => return Ok(false),
            };
            let inputs: Vec<Arc<SsTable>> = run.iter().map(|h| Arc::clone(&h.table)).collect();
            let removed_ids: Vec<u64> = run.iter().map(|h| h.meta.id).collect();
            let max_seal = run.iter().map(|h| h.meta.seal_version).max().unwrap_or(0);
            let drop_tombstones = pick.includes_oldest(inner.tables.len())
                && pin_floor.is_none_or(|floor| max_seal <= floor);
            let out_id = inner.next_id;
            inner.next_id += 1;
            (
                inputs,
                removed_ids,
                out_id,
                max_seal,
                drop_tombstones,
                inner.dir.clone(),
                inner.opts.table.clone(),
            )
        };

        // Phase 2 (unlocked): merge. Inputs are immutable files; writers
        // keep committing concurrently.
        let out_path = table_path(&dir, out_id);
        if let Err(e) = compaction::merge_tables(&out_path, &inputs, &topts, drop_tombstones) {
            // pass-lint: allow(l8, reason="cleanup on the error path must not mask the merge error being returned; a leftover half-written table is unregistered debris, swept at open")
            let _ = std::fs::remove_file(&out_path);
            return Err(e);
        }

        // Phase 3 (locked): commit the edition swap.
        let mut inner = self.inner.write();
        let Some(start) = position_of_run(&inner.tables, &removed_ids) else {
            // The run vanished (a forced full compaction raced us): the
            // output is unregistered debris, discard it.
            drop(inner);
            // pass-lint: allow(l8, reason="the compaction output was never registered in the manifest — failing to discard it leaves unread debris, swept at open")
            let _ = std::fs::remove_file(&out_path);
            return Ok(false);
        };
        let added = TableMeta { id: out_id, seal_version: out_seal };
        let out_table = Arc::new(SsTable::open_with_cache(&out_path, inner.opts.cache.clone())?);

        let mut metas = inner.metas();
        metas.splice(start..start + removed_ids.len(), std::iter::once(added));
        let next_id = inner.next_id;
        inner.manifest.append(
            &ManifestEdit::Compact { added, removed: removed_ids.clone() },
            &metas,
            next_id,
        )?;

        let old_paths: Vec<PathBuf> = inner
            .tables
            .get(start..start + removed_ids.len())
            .map(|run| run.iter().map(|h| h.table.path().to_path_buf()).collect())
            .unwrap_or_default();
        inner.tables.splice(
            start..start + removed_ids.len(),
            std::iter::once(TableHandle { table: out_table, meta: added }),
        );
        inner.compactions += 1;
        drop(inner);
        for old in old_paths {
            // pass-lint: allow(l8, reason="the manifest already committed the swap; an unremovable replaced table is orphaned debris, swept at open, never read")
            let _ = std::fs::remove_file(old);
        }
        Ok(true)
    }

    /// The engine directory.
    pub fn dir(&self) -> PathBuf {
        self.inner.read().dir.clone()
    }
}

impl KvStore for LsmEngine {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = self.inner.read();
        if let Some(hit) = inner.mem.get(key) {
            return Ok(hit.map(<[u8]>::to_vec));
        }
        for handle in &inner.tables {
            if let Some(hit) = handle.table.get(key)? {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    fn apply(&self, batch: WriteBatch) -> Result<()> {
        batch.validate()?;
        if batch.is_empty() {
            return Ok(());
        }
        let stall = {
            let mut inner = self.inner.write();
            inner.wal.append(&batch.encode())?;
            apply_to_memtable(&mut inner.mem, batch);
            if inner.mem.approx_bytes() >= inner.opts.memtable_bytes {
                flush_locked(&mut inner)?;
                inner.flush_signal.is_some()
                    && inner.tables.len() >= inner.opts.compaction.stall_tables
            } else {
                false
            }
        };
        if stall {
            self.stall_for_backlog();
        }
        Ok(())
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if end.is_some_and(|e| e <= start) {
            return Ok(Vec::new());
        }
        let inner = self.inner.read();
        let mut sources: Vec<Source> = Vec::with_capacity(inner.tables.len() + 1);
        let mem_entries: Vec<_> = inner
            .mem
            .range(start, end)
            .map(|(k, v)| Ok((k.to_vec(), v.map(<[u8]>::to_vec))))
            .collect();
        sources.push(Box::new(mem_entries.into_iter()));
        for handle in &inner.tables {
            let entries = handle.table.scan_range(start, end)?;
            sources.push(Box::new(entries.into_iter().map(Ok)));
        }
        let mut out = Vec::new();
        for item in MergeIter::new(sources) {
            let (k, v) = item?;
            if let Some(v) = v {
                out.push((k, v));
            }
        }
        Ok(out)
    }

    fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.mem.is_empty() {
            return inner.wal.sync();
        }
        flush_locked(&mut inner)
    }
}

fn apply_to_memtable(mem: &mut MemTable, batch: WriteBatch) {
    for op in batch.into_ops() {
        match op {
            crate::batch::Op::Put { key, value } => mem.put(key, value),
            crate::batch::Op::Delete { key } => mem.delete(key),
        }
    }
}

fn flush_locked(inner: &mut Inner) -> Result<()> {
    if inner.mem.is_empty() {
        return Ok(());
    }
    let id = inner.next_id;
    inner.next_id += 1;
    let path = table_path(&inner.dir, id);
    let mut builder =
        crate::sstable::TableBuilder::create(&path, inner.mem.len(), inner.opts.table.clone())?;
    for (key, value) in inner.mem.iter() {
        builder.add(key, value)?;
    }
    builder.finish()?;

    // Commit point: the manifest edit registers the (fsynced) table.
    let seal_version =
        inner.opts.seal_clock.as_ref().map_or(0, |clock| clock.load(Ordering::Acquire));
    let meta = TableMeta { id, seal_version };
    let mut metas = Vec::with_capacity(inner.tables.len() + 1);
    metas.push(meta);
    metas.extend(inner.tables.iter().map(|h| h.meta));
    let next_id = inner.next_id;
    inner.manifest.append(&ManifestEdit::Flush { table: meta }, &metas, next_id)?;

    let table = SsTable::open_with_cache(&path, inner.opts.cache.clone())?;
    inner.tables.insert(0, TableHandle { table: Arc::new(table), meta });
    inner.mem.clear();
    // The WAL's contents are now durable in the table; start a fresh log.
    inner.wal = Wal::create(inner.dir.join(WAL_FILE), inner.opts.sync)?;
    inner.flushes += 1;

    match &inner.flush_signal {
        // A maintenance worker owns compaction: wake it and return.
        Some(signal) => signal.notify(),
        // No worker: preserve the original inline full-merge behavior.
        None => {
            if inner.tables.len() >= inner.opts.compact_at {
                compact_all_locked(inner, None)?;
            }
        }
    }
    Ok(())
}

/// Full merge of every live table into one, under the state write lock.
/// `pin_floor` gates tombstone dropping exactly as in
/// [`LsmEngine::maybe_compact`]; `None` ⇒ nothing pinned, drop freely.
fn compact_all_locked(inner: &mut Inner, pin_floor: Option<u64>) -> Result<()> {
    if inner.tables.len() < 2 {
        return Ok(());
    }
    let id = inner.next_id;
    inner.next_id += 1;
    let path = table_path(&inner.dir, id);
    let inputs: Vec<Arc<SsTable>> = inner.tables.iter().map(|h| Arc::clone(&h.table)).collect();
    let removed: Vec<u64> = inner.tables.iter().map(|h| h.meta.id).collect();
    let max_seal = inner.tables.iter().map(|h| h.meta.seal_version).max().unwrap_or(0);
    let drop_tombstones = pin_floor.is_none_or(|floor| max_seal <= floor);
    compaction::merge_tables(&path, &inputs, &inner.opts.table, drop_tombstones)?;

    let added = TableMeta { id, seal_version: max_seal };
    let next_id = inner.next_id;
    // Commit point.
    inner.manifest.append(&ManifestEdit::Compact { added, removed }, &[added], next_id)?;

    let old_paths: Vec<PathBuf> =
        inner.tables.iter().map(|h| h.table.path().to_path_buf()).collect();
    let table = SsTable::open_with_cache(&path, inner.opts.cache.clone())?;
    inner.tables = vec![TableHandle { table: Arc::new(table), meta: added }];
    inner.compactions += 1;
    for old in old_paths {
        // pass-lint: allow(l8, reason="the manifest already committed the full compaction; an unremovable input table is orphaned debris, swept at open, never read")
        let _ = std::fs::remove_file(old);
    }
    Ok(())
}

/// Index of `ids` as a contiguous newest-first run in `tables`, `None`
/// when the run no longer exists as picked.
fn position_of_run(tables: &[TableHandle], ids: &[u64]) -> Option<usize> {
    let first = ids.first()?;
    let start = tables.iter().position(|h| h.meta.id == *first)?;
    let window = tables.get(start..start + ids.len())?;
    window.iter().zip(ids).all(|(h, id)| h.meta.id == *id).then_some(start)
}

fn table_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("sst-{id:010}.sst"))
}

fn parse_table_name(name: &str) -> Option<u64> {
    name.strip_prefix("sst-")?.strip_suffix(".sst")?.parse().ok()
}

/// Lists `(id, path)` of every table file in `dir`.
fn list_table_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| StorageError::io("listing engine dir", e))? {
        let entry = entry.map_err(|e| StorageError::io("listing engine dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = parse_table_name(name) {
            out.push((id, entry.path()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintenance::{spawn_engine_worker, MaintenanceOptions};
    use crate::tempdir::TempDir;

    fn small_opts() -> EngineOptions {
        EngineOptions {
            memtable_bytes: 8 << 10, // flush often so tests exercise tables
            compact_at: 4,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn put_get_delete_across_flush() {
        let dir = TempDir::new("lsm-basic");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.force_flush().unwrap();
        db.delete(b"a").unwrap();
        db.put(b"c", b"3").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None, "tombstone shadows flushed value");
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.get(b"c").unwrap(), Some(b"3".to_vec()));
    }

    #[test]
    fn reopen_recovers_wal_and_tables() {
        let dir = TempDir::new("lsm-reopen");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            db.put(b"flushed", b"on disk").unwrap();
            db.force_flush().unwrap();
            db.put(b"unflushed", b"in wal").unwrap();
            // Dropped without flush: the WAL is the only copy of `unflushed`.
        }
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert_eq!(db.get(b"flushed").unwrap(), Some(b"on disk".to_vec()));
        assert_eq!(db.get(b"unflushed").unwrap(), Some(b"in wal".to_vec()));
    }

    #[test]
    fn many_writes_trigger_flush_and_compaction() {
        let dir = TempDir::new("lsm-compact");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        for i in 0..2_000u32 {
            db.put(format!("key-{i:05}").as_bytes(), &[0u8; 64]).unwrap();
        }
        let stats = db.stats();
        assert!(stats.flushes > 0, "expected automatic flushes: {stats:?}");
        assert!(stats.compactions > 0, "expected automatic compaction: {stats:?}");
        for i in (0..2_000u32).step_by(97) {
            assert_eq!(db.get(format!("key-{i:05}").as_bytes()).unwrap(), Some(vec![0u8; 64]));
        }
    }

    #[test]
    fn compaction_drops_tombstones_without_resurrection() {
        let dir = TempDir::new("lsm-tomb");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        db.put(b"victim", b"v1").unwrap();
        db.force_flush().unwrap();
        db.delete(b"victim").unwrap();
        db.force_flush().unwrap();
        db.force_compact().unwrap();
        assert_eq!(db.get(b"victim").unwrap(), None);
        // Reopen: still gone (the old table holding v1 was deleted).
        drop(db);
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert_eq!(db.get(b"victim").unwrap(), None);
    }

    #[test]
    fn scan_merges_memtable_and_tables() {
        let dir = TempDir::new("lsm-scan");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        db.put(b"p/1", b"old").unwrap();
        db.put(b"p/3", b"t3").unwrap();
        db.force_flush().unwrap();
        db.put(b"p/1", b"new").unwrap(); // shadow in memtable
        db.put(b"p/2", b"t2").unwrap();
        db.delete(b"p/3").unwrap(); // tombstone in memtable
        db.put(b"q/1", b"other").unwrap();

        let got = db.scan_prefix(b"p/").unwrap();
        assert_eq!(
            got,
            vec![(b"p/1".to_vec(), b"new".to_vec()), (b"p/2".to_vec(), b"t2".to_vec()),]
        );
    }

    #[test]
    fn batch_atomicity_survives_crash_replay() {
        let dir = TempDir::new("lsm-atomic");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            let mut batch = WriteBatch::new();
            batch.put(b"pair/a".to_vec(), b"1".to_vec());
            batch.put(b"pair/b".to_vec(), b"2".to_vec());
            db.apply(batch).unwrap();
        }
        // Truncate the WAL inside the (single) batch record: the whole
        // batch must disappear, never half of it.
        let wal_path = dir.path().join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        for cut in 1..bytes.len() {
            std::fs::write(&wal_path, &bytes[..cut]).unwrap();
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            let a = db.get(b"pair/a").unwrap();
            let b = db.get(b"pair/b").unwrap();
            assert_eq!(a.is_some(), b.is_some(), "torn batch at cut {cut}: a={a:?} b={b:?}");
            drop(db);
            std::fs::write(&wal_path, &bytes).unwrap();
        }
    }

    #[test]
    fn crash_debris_tables_are_cleaned_up() {
        let dir = TempDir::new("lsm-debris");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            db.put(b"k", b"v").unwrap();
            db.force_flush().unwrap();
        }
        // Simulate a crash mid-flush: an orphan table not in the manifest.
        let orphan = dir.path().join("sst-0000009999.sst");
        std::fs::write(&orphan, b"garbage that is not a table").unwrap();
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert!(!orphan.exists(), "orphan removed on open");
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn empty_engine_reopens_cleanly() {
        let dir = TempDir::new("lsm-empty");
        {
            let _db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        }
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert_eq!(db.get(b"anything").unwrap(), None);
        assert_eq!(db.stats().num_tables, 0);
    }

    #[test]
    fn stats_report_recovered_torn_tail() {
        let dir = TempDir::new("lsm-torn-stat");
        {
            let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
            db.put(b"a", b"1").unwrap();
            db.put(b"b", b"2").unwrap();
        }
        let wal_path = dir.path().join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert!(db.stats().recovered_torn_tail);
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), None, "torn record discarded");
    }

    #[test]
    fn maybe_compact_is_a_no_op_when_healthy() {
        let dir = TempDir::new("lsm-nocompact");
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        db.put(b"k", b"v").unwrap();
        db.force_flush().unwrap();
        assert!(!db.maybe_compact(None).unwrap(), "one table needs no merge");
    }

    #[test]
    fn maybe_compact_merges_and_preserves_reads() {
        let dir = TempDir::new("lsm-tiered");
        let mut opts = small_opts();
        opts.compact_at = usize::MAX; // keep the inline path out of the way
        let db = LsmEngine::open(dir.path(), opts).unwrap();
        for round in 0..5u32 {
            for i in 0..200u32 {
                db.put(format!("key-{i:05}").as_bytes(), format!("r{round}").as_bytes()).unwrap();
            }
            db.force_flush().unwrap();
        }
        assert!(db.stats().num_tables >= 3);
        // Drain the picker like the worker would.
        while db.maybe_compact(None).unwrap() {}
        let stats = db.stats();
        assert!(stats.compactions > 0);
        assert!(stats.num_tables < 3, "merged down: {stats:?}");
        for i in 0..200u32 {
            assert_eq!(
                db.get(format!("key-{i:05}").as_bytes()).unwrap(),
                Some(b"r4".to_vec()),
                "newest version survives the merge"
            );
        }
        // Reopen: the manifest edition matches.
        drop(db);
        let db = LsmEngine::open(dir.path(), small_opts()).unwrap();
        assert_eq!(db.get(b"key-00007").unwrap(), Some(b"r4".to_vec()));
    }

    #[test]
    fn pin_floor_blocks_tombstone_drop_until_released() {
        let build = |dir: &TempDir, floor: Option<u64>| -> u64 {
            let clock = Arc::new(AtomicU64::new(0));
            let mut opts = small_opts();
            opts.compact_at = usize::MAX;
            opts.seal_clock = Some(Arc::clone(&clock));
            let db = LsmEngine::open(dir.path(), opts).unwrap();
            clock.store(5, Ordering::Release);
            db.put(b"victim", b"v1").unwrap();
            db.force_flush().unwrap();
            clock.store(9, Ordering::Release);
            db.delete(b"victim").unwrap();
            db.force_flush().unwrap();
            while db.maybe_compact(floor).unwrap() {}
            assert_eq!(db.get(b"victim").unwrap(), None, "shadowing holds either way");
            db.stats().table_entries
        };
        // A pin at version 7 predates the tombstone's seal (9): the
        // tombstone must survive the merge.
        let dir = TempDir::new("lsm-pin-held");
        assert_eq!(build(&dir, Some(7)), 1, "tombstone retained under the pin");
        // No pins: the tombstone (and the shadowed value) are reclaimed.
        let dir = TempDir::new("lsm-pin-free");
        assert_eq!(build(&dir, None), 0, "tombstone dropped once unpinned");
    }

    #[test]
    fn background_worker_compacts_behind_flushes() {
        let dir = TempDir::new("lsm-worker");
        let mut opts = small_opts();
        opts.compact_at = usize::MAX; // the worker owns compaction
        let db = Arc::new(LsmEngine::open(dir.path(), opts).unwrap());
        let handle = spawn_engine_worker(
            Arc::clone(&db),
            MaintenanceOptions { tick: std::time::Duration::from_millis(20), pin_floor: None },
        );
        for i in 0..3_000u32 {
            db.put(format!("key-{i:05}").as_bytes(), &[7u8; 64]).unwrap();
        }
        db.force_flush().unwrap();
        handle.wake();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            let stats = db.stats();
            if stats.compactions > 0 && stats.num_tables <= 4 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let stats = db.stats();
        assert!(stats.compactions > 0, "worker compacted: {stats:?}");
        assert_eq!(handle.errors(), 0, "no background errors: {:?}", handle.last_error());
        drop(handle); // clean shutdown + detach
        for i in (0..3_000u32).step_by(83) {
            assert_eq!(db.get(format!("key-{i:05}").as_bytes()).unwrap(), Some(vec![7u8; 64]));
        }
        // Detached: the inline path is back in charge on the next flush.
        assert!(db.inner.read().flush_signal.is_none());
    }

    #[test]
    fn cache_counters_surface_through_stats() {
        let dir = TempDir::new("lsm-cachestats");
        let mut opts = small_opts();
        opts.cache = Some(Arc::new(BlockCache::new(1 << 20)));
        let db = LsmEngine::open(dir.path(), opts).unwrap();
        db.put(b"hot", b"value").unwrap();
        db.force_flush().unwrap();
        for _ in 0..10 {
            assert_eq!(db.get(b"hot").unwrap(), Some(b"value".to_vec()));
        }
        let stats = db.stats();
        assert!(stats.cache_hits > 0, "{stats:?}");
        assert!(stats.live_table_bytes > 0, "{stats:?}");
    }
}
