//! Tiered compaction: the picker and the merge driver.
//!
//! The engine's tables form a recency-ordered sequence (index 0 is the
//! newest flush); every table may overlap every other, so reads consult
//! them newest-first and both read cost and space amplification grow
//! with the table count. Compaction rewrites a *contiguous run* of
//! tables into one, preserving the run's position in the sequence —
//! contiguity is what keeps newest-wins shadowing correct: merging
//! around a table that holds an intermediate version of a key would
//! resurrect it.
//!
//! The picker is size-tiered in the universal-compaction style:
//!
//! 1. **Space-amplification trigger** — when the bytes above the oldest
//!    table exceed `(max_space_amp - 1) × oldest`, everything merges
//!    into one table. This bounds live bytes at `max_space_amp ×`
//!    logical data once compaction settles.
//! 2. **Ratio runs** — a run grows while the next-older table is at
//!    most `size_ratio ×` the bytes accumulated so far, i.e. similarly
//!    sized tables merge with their peers instead of repeatedly
//!    rewriting one giant table (bounded write amplification). Runs
//!    shorter than `min_merge` don't fire; runs cap at `max_merge`.
//! 3. **Pressure** — above `max_live_tables` the cheapest contiguous
//!    window merges even when no ratio run exists, so read fan-out
//!    stays bounded under adversarial size distributions.
//!
//! Tombstones and shadowed versions are dropped by the merge only when
//! the caller says so: the run must include the oldest table (nothing
//! below could be resurrected) and every input must be sealed at or
//! below the pin floor (no live snapshot/subscription still reads
//! through it) — the engine makes both checks.

use crate::error::Result;
use crate::iter::{MergeIter, Source};
use crate::sstable::{SsTable, TableBuilder, TableOptions};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// Tuning knobs for the tiered picker.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Smallest ratio run worth merging.
    pub min_merge: usize,
    /// Largest run one merge rewrites.
    pub max_merge: usize,
    /// A run extends while the next-older table is ≤ `size_ratio ×` the
    /// run's accumulated bytes.
    pub size_ratio: f64,
    /// Above this live-table count the pressure trigger fires.
    pub max_live_tables: usize,
    /// Full-merge trigger: live bytes are allowed to reach
    /// `max_space_amp ×` the oldest table's bytes before everything is
    /// rewritten into one table.
    pub max_space_amp: f64,
    /// Write-stall threshold: with a maintenance worker attached, a
    /// writer whose flush leaves at least this many live tables pauses
    /// (briefly, off-lock) until the worker drains the backlog. Without
    /// backpressure a fast ingester on a starved host outruns the
    /// worker forever and reads degrade exactly as if compaction were
    /// off. Set to `usize::MAX` to disable stalling.
    pub stall_tables: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_merge: 3,
            max_merge: 8,
            size_ratio: 2.0,
            max_live_tables: 8,
            max_space_amp: 1.5,
            stall_tables: 24,
        }
    }
}

/// What the picker sees of one live table.
#[derive(Debug, Clone, Copy)]
pub struct TableInfo {
    /// Manifest id.
    pub id: u64,
    /// On-disk bytes.
    pub bytes: u64,
    /// Engine version the table was sealed at.
    pub seal_version: u64,
}

/// Why a pick fired (surfaced in logs/tests, not behavior-bearing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickReason {
    /// Space-amplification bound exceeded; full merge.
    SpaceAmp,
    /// A size-ratio run of peers.
    Tiered,
    /// Table count over `max_live_tables`; cheapest window.
    Pressure,
}

/// A chosen compaction: a contiguous newest-first index range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pick {
    /// Indices into the newest-first table list.
    pub range: Range<usize>,
    /// Which trigger fired.
    pub reason: PickReason,
}

impl Pick {
    /// True when the run reaches the oldest table — the precondition
    /// for dropping tombstones (nothing below could be resurrected).
    pub fn includes_oldest(&self, table_count: usize) -> bool {
        self.range.end == table_count
    }
}

impl CompactionPolicy {
    /// Picks the next run to merge, or `None` when the sequence is
    /// healthy. `tables` is newest-first.
    pub fn pick(&self, tables: &[TableInfo]) -> Option<Pick> {
        let n = tables.len();
        if n < 2 {
            return None;
        }
        let total: u64 = tables.iter().map(|t| t.bytes).sum();
        let oldest = tables.last().map_or(0, |t| t.bytes);
        // 1. Space amplification: everything above the oldest table is
        // (over-approximated) dead weight once it exceeds the budget.
        let above = total - oldest;
        if above as f64 > (self.max_space_amp - 1.0).max(0.0) * oldest as f64 && n >= 2 {
            return Some(Pick { range: 0..n, reason: PickReason::SpaceAmp });
        }
        // 2. Ratio runs: longest run wins, newest on ties.
        let mut best: Option<Range<usize>> = None;
        for start in 0..n {
            let mut acc = tables.get(start).map_or(0, |t| t.bytes);
            let mut end = start + 1;
            while end < n && end - start < self.max_merge {
                let next = tables.get(end).map_or(u64::MAX, |t| t.bytes);
                if next as f64 <= self.size_ratio * acc as f64 {
                    acc = acc.saturating_add(next);
                    end += 1;
                } else {
                    break;
                }
            }
            if end - start >= self.min_merge.max(2)
                && best.as_ref().is_none_or(|b| end - start > b.len())
            {
                best = Some(start..end);
            }
        }
        if let Some(range) = best {
            return Some(Pick { range, reason: PickReason::Tiered });
        }
        // 3. Pressure: merge the cheapest window to cap read fan-out.
        if n > self.max_live_tables {
            let w = self.min_merge.max(2).min(n);
            let mut best_start = 0usize;
            let mut best_bytes = u64::MAX;
            for start in 0..=(n - w) {
                let bytes: u64 = tables
                    .get(start..start + w)
                    .map_or(u64::MAX, |ts| ts.iter().map(|t| t.bytes).sum());
                if bytes < best_bytes {
                    best_bytes = bytes;
                    best_start = start;
                }
            }
            return Some(Pick { range: best_start..best_start + w, reason: PickReason::Pressure });
        }
        None
    }
}

/// Merges `inputs` (newest-first) into a new table at `out_path`,
/// deduplicating with newest-wins precedence. With `drop_tombstones`
/// the deletes themselves are elided — only sound when the caller
/// verified the run includes the oldest table and clears the pin floor.
/// Returns the entry count written. The output file is fsynced.
pub(crate) fn merge_tables(
    out_path: &Path,
    inputs: &[Arc<SsTable>],
    opts: &TableOptions,
    drop_tombstones: bool,
) -> Result<u64> {
    let expected: u64 = inputs.iter().map(|t| t.entry_count()).sum();
    let sources: Vec<Source> = inputs.iter().map(|t| Box::new(t.iter()) as Source).collect();
    let mut builder = TableBuilder::create(
        out_path,
        usize::try_from(expected).unwrap_or(usize::MAX),
        opts.clone(),
    )?;
    for entry in MergeIter::new(sources) {
        let (key, value) = entry?;
        if drop_tombstones && value.is_none() {
            continue;
        }
        builder.add(&key, value.as_deref())?;
    }
    let written = builder.entry_count();
    builder.finish()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u64, bytes: u64) -> TableInfo {
        TableInfo { id, bytes, seal_version: 0 }
    }

    #[test]
    fn healthy_sequences_pick_nothing() {
        let p = CompactionPolicy::default();
        assert_eq!(p.pick(&[]), None);
        assert_eq!(p.pick(&[info(1, 1000)]), None);
        // A small fresh flush over a settled big table: no run, no
        // space-amp breach, under the table cap.
        assert_eq!(p.pick(&[info(2, 100), info(1, 100_000)]), None);
    }

    #[test]
    fn similar_sized_peers_form_a_run() {
        let p = CompactionPolicy::default();
        let tables = [info(4, 90), info(3, 110), info(2, 100), info(1, 100_000)];
        let pick = p.pick(&tables).expect("ratio run");
        assert_eq!(pick.reason, PickReason::Tiered);
        assert_eq!(pick.range, 0..3, "the big old table stays out of the run");
        assert!(!pick.includes_oldest(tables.len()));
    }

    #[test]
    fn space_amp_triggers_full_merge() {
        let p = CompactionPolicy::default();
        // 60k of newer data over a 100k base: 0.6 > (1.5 - 1).
        let tables = [info(3, 30_000), info(2, 30_000), info(1, 100_000)];
        let pick = p.pick(&tables).expect("space amp");
        assert_eq!(pick.reason, PickReason::SpaceAmp);
        assert_eq!(pick.range, 0..3);
        assert!(pick.includes_oldest(tables.len()));
    }

    #[test]
    fn pressure_fires_above_the_table_cap() {
        let p = CompactionPolicy {
            min_merge: 3,
            max_merge: 4,
            size_ratio: 0.01, // no ratio run can form
            max_live_tables: 4,
            max_space_amp: 1000.0,
            ..CompactionPolicy::default()
        };
        // Exponentially growing sizes defeat the ratio rule; the cap
        // still forces a merge of the cheapest window.
        let tables: Vec<_> = (0..6).map(|i| info(6 - i, 1u64 << (4 * i))).collect();
        let pick = p.pick(&tables).expect("pressure");
        assert_eq!(pick.reason, PickReason::Pressure);
        assert_eq!(pick.range, 0..3, "cheapest window is the newest (smallest) tables");
    }

    #[test]
    fn runs_are_capped_at_max_merge() {
        // Disarm the space-amp trigger so the ratio path is what fires.
        let p =
            CompactionPolicy { max_merge: 4, max_space_amp: 1000.0, ..CompactionPolicy::default() };
        let tables: Vec<_> = (0..10).map(|i| info(10 - i, 100)).collect();
        let pick = p.pick(&tables).expect("run");
        assert!(pick.range.len() <= 4, "range {:?}", pick.range);
    }
}
