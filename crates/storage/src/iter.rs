//! K-way merge of sorted entry streams with newest-wins semantics.

use crate::error::Result;
use crate::sstable::Entry;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A sorted source of entries. Sources are ranked: index 0 is newest, and
/// on duplicate keys the newest source's entry wins.
pub type Source = Box<dyn Iterator<Item = Result<Entry>>>;

struct HeapItem {
    key: Vec<u8>,
    value: Option<Vec<u8>>,
    source: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.source == other.source
    }
}
impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key (then the
        // newest source) pops first.
        other.key.cmp(&self.key).then_with(|| other.source.cmp(&self.source))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges sorted sources, deduplicating keys with newest-wins precedence.
/// Tombstones are *preserved* in the output (`None` values); the caller
/// decides whether to drop them (full compactions do, reads must not).
pub struct MergeIter {
    sources: Vec<Source>,
    heap: BinaryHeap<HeapItem>,
    error: Option<crate::error::StorageError>,
}

impl MergeIter {
    /// Builds a merge over `sources` (index 0 = newest).
    pub fn new(mut sources: Vec<Source>) -> Self {
        let mut heap = BinaryHeap::new();
        let mut error = None;
        for (i, src) in sources.iter_mut().enumerate() {
            match src.next() {
                Some(Ok((key, value))) => heap.push(HeapItem { key, value, source: i }),
                Some(Err(e)) => {
                    error = Some(e);
                    break;
                }
                None => {}
            }
        }
        MergeIter { sources, heap, error }
    }

    fn advance(&mut self, source: usize) {
        let Some(src) = self.sources.get_mut(source) else { return };
        match src.next() {
            Some(Ok((key, value))) => self.heap.push(HeapItem { key, value, source }),
            Some(Err(e)) => self.error = Some(e),
            None => {}
        }
    }
}

impl Iterator for MergeIter {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.error.take() {
            self.heap.clear();
            return Some(Err(e));
        }
        let top = self.heap.pop()?;
        let key = top.key;
        let value = top.value;
        self.advance(top.source);
        // Discard older versions of the same key.
        while self.heap.peek().is_some_and(|peek| peek.key == key) {
            let Some(dup) = self.heap.pop() else { break };
            self.advance(dup.source);
            if self.error.is_some() {
                break;
            }
        }
        Some(Ok((key, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(entries: Vec<(&str, Option<&str>)>) -> Source {
        Box::new(
            entries
                .into_iter()
                .map(|(k, v)| Ok((k.as_bytes().to_vec(), v.map(|v| v.as_bytes().to_vec()))))
                .collect::<Vec<_>>()
                .into_iter(),
        )
    }

    fn collect(iter: MergeIter) -> Vec<(String, Option<String>)> {
        iter.map(|r| {
            let (k, v) = r.unwrap();
            (String::from_utf8(k).unwrap(), v.map(|v| String::from_utf8(v).unwrap()))
        })
        .collect()
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let m = MergeIter::new(vec![
            src(vec![("b", Some("1")), ("d", Some("2"))]),
            src(vec![("a", Some("3")), ("c", Some("4"))]),
        ]);
        let got = collect(m);
        let keys: Vec<_> = got.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn newest_source_wins_on_duplicates() {
        let m = MergeIter::new(vec![
            src(vec![("k", Some("new"))]), // source 0 = newest
            src(vec![("k", Some("old"))]),
            src(vec![("k", Some("older"))]),
        ]);
        assert_eq!(collect(m), vec![("k".to_owned(), Some("new".to_owned()))]);
    }

    #[test]
    fn tombstones_shadow_older_values_but_are_emitted() {
        let m = MergeIter::new(vec![src(vec![("k", None)]), src(vec![("k", Some("old"))])]);
        assert_eq!(collect(m), vec![("k".to_owned(), None)]);
    }

    #[test]
    fn empty_sources_are_fine() {
        let m = MergeIter::new(vec![src(vec![]), src(vec![("a", Some("1"))]), src(vec![])]);
        assert_eq!(collect(m), vec![("a".to_owned(), Some("1".to_owned()))]);
        let m = MergeIter::new(vec![]);
        assert_eq!(collect(m).len(), 0);
    }

    #[test]
    fn three_way_interleave_with_shadowing() {
        let m = MergeIter::new(vec![
            src(vec![("a", Some("a0")), ("c", None)]),
            src(vec![("a", Some("a1")), ("b", Some("b1")), ("c", Some("c1"))]),
            src(vec![("b", Some("b2")), ("d", Some("d2"))]),
        ]);
        assert_eq!(
            collect(m),
            vec![
                ("a".to_owned(), Some("a0".to_owned())),
                ("b".to_owned(), Some("b1".to_owned())),
                ("c".to_owned(), None),
                ("d".to_owned(), Some("d2".to_owned())),
            ]
        );
    }

    #[test]
    fn error_propagates_and_stops() {
        let bad: Source = Box::new(
            vec![
                Ok((b"a".to_vec(), Some(b"1".to_vec()))),
                Err(crate::error::StorageError::corrupt("x", "boom")),
            ]
            .into_iter(),
        );
        let m = MergeIter::new(vec![bad]);
        let results: Vec<_> = m.collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }
}
