//! Immutable sorted string tables.
//!
//! Layout:
//!
//! ```text
//! [block 0][block 1]…[block n-1][index][bloom][footer]
//! ```
//!
//! * **Block** — a run of entries (`varint klen, key, tag, [varint vlen,
//!   value]`; tag 0 = tombstone, 1 = value) followed by a CRC-32C of the
//!   run. Blocks are cut at [`TableOptions::block_bytes`].
//! * **Index** — `(first_key, offset, len)` per block, CRC-protected,
//!   loaded into memory when the table opens; point reads binary-search it
//!   and touch exactly one block.
//! * **Bloom** — a filter over all keys; negative lookups skip the table.
//! * **Footer** — fixed-width trailer with section offsets and a magic.

use crate::batch::{put_varint, take_u32_le, take_u64_le, take_varint};
use crate::bloom::BloomFilter;
use crate::cache::BlockCache;
use crate::crc::crc32c;
use crate::error::{Result, StorageError};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"PASSSST1";
const FOOTER_LEN: u64 = 8 + 8 + 4 + 8 + 8 + 4 + 8 + 8;

/// Tuning knobs for table construction.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Target uncompressed block payload size.
    pub block_bytes: usize,
    /// Bloom filter budget.
    pub bloom_bits_per_key: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions { block_bytes: 4096, bloom_bits_per_key: 10 }
    }
}

/// One decoded entry: key and live-value-or-tombstone.
pub type Entry = (Vec<u8>, Option<Vec<u8>>);

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Streams sorted entries into a new table file.
pub struct TableBuilder {
    writer: BufWriter<File>,
    path: PathBuf,
    opts: TableOptions,
    block: Vec<u8>,
    block_first_key: Option<Vec<u8>>,
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: BloomFilter,
    offset: u64,
    entry_count: u64,
    last_key: Option<Vec<u8>>,
}

impl TableBuilder {
    /// Creates a builder writing to `path`. `expected_entries` sizes the
    /// bloom filter.
    pub fn create(
        path: impl Into<PathBuf>,
        expected_entries: usize,
        opts: TableOptions,
    ) -> Result<Self> {
        let path = path.into();
        let file = File::create(&path)
            .map_err(|e| StorageError::io(format!("creating SSTable {}", path.display()), e))?;
        let bloom = BloomFilter::with_capacity(expected_entries, opts.bloom_bits_per_key);
        Ok(TableBuilder {
            writer: BufWriter::new(file),
            path,
            opts,
            block: Vec::new(),
            block_first_key: None,
            index: Vec::new(),
            bloom,
            offset: 0,
            entry_count: 0,
            last_key: None,
        })
    }

    /// Appends an entry. Keys must arrive in strictly increasing order.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        if let Some(last) = &self.last_key {
            if key <= last.as_slice() {
                return Err(StorageError::corrupt(
                    &self.path,
                    format!("keys out of order: {:?} after {:?}", key, last),
                ));
            }
        }
        self.last_key = Some(key.to_vec());
        if self.block_first_key.is_none() {
            self.block_first_key = Some(key.to_vec());
        }
        put_varint(&mut self.block, key.len() as u64);
        self.block.extend_from_slice(key);
        match value {
            None => self.block.push(0),
            Some(v) => {
                self.block.push(1);
                put_varint(&mut self.block, v.len() as u64);
                self.block.extend_from_slice(v);
            }
        }
        self.bloom.insert(key);
        self.entry_count += 1;
        if self.block.len() >= self.opts.block_bytes {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let crc = crc32c(&self.block);
        let len = self.block.len() as u64 + 4;
        let first = self.block_first_key.take().ok_or_else(|| {
            StorageError::corrupt(&self.path, "non-empty block without a first key")
        })?;
        self.writer
            .write_all(&self.block)
            .and_then(|()| self.writer.write_all(&crc.to_le_bytes()))
            .map_err(|e| StorageError::io("writing SSTable block", e))?;
        self.index.push((first, self.offset, len));
        self.offset += len;
        self.block.clear();
        Ok(())
    }

    /// Finalizes the file (index, bloom, footer, fsync).
    pub fn finish(mut self) -> Result<()> {
        self.finish_block()?;

        let mut index_buf = Vec::new();
        put_varint(&mut index_buf, self.index.len() as u64);
        for (first_key, offset, len) in &self.index {
            put_varint(&mut index_buf, first_key.len() as u64);
            index_buf.extend_from_slice(first_key);
            put_varint(&mut index_buf, *offset);
            put_varint(&mut index_buf, *len);
        }
        let index_off = self.offset;
        let index_crc = crc32c(&index_buf);
        self.writer
            .write_all(&index_buf)
            .map_err(|e| StorageError::io("writing SSTable index", e))?;

        let bloom_buf = self.bloom.encode();
        let bloom_off = index_off + index_buf.len() as u64;
        let bloom_crc = crc32c(&bloom_buf);
        self.writer
            .write_all(&bloom_buf)
            .map_err(|e| StorageError::io("writing SSTable bloom", e))?;

        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&(index_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&index_crc.to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&(bloom_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&bloom_crc.to_le_bytes());
        footer.extend_from_slice(&self.entry_count.to_le_bytes());
        footer.extend_from_slice(MAGIC);
        self.writer
            .write_all(&footer)
            .map_err(|e| StorageError::io("writing SSTable footer", e))?;
        self.writer.flush().map_err(|e| StorageError::io("flushing SSTable", e))?;
        self.writer.get_ref().sync_data().map_err(|e| StorageError::io("fsyncing SSTable", e))?;
        Ok(())
    }

    /// Entries added so far.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// An open, immutable table.
pub struct SsTable {
    path: PathBuf,
    file: Mutex<File>,
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: BloomFilter,
    entry_count: u64,
    data_len: u64,
    file_len: u64,
    /// Shared block cache for point reads; `None` ⇒ every read hits disk.
    cache: Option<Arc<BlockCache>>,
    /// Process-unique cache key component (fresh per open — see
    /// [`crate::cache`]).
    cache_id: u64,
}

impl std::fmt::Debug for SsTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsTable")
            .field("path", &self.path)
            .field("blocks", &self.index.len())
            .field("entries", &self.entry_count)
            .finish()
    }
}

impl SsTable {
    /// Opens and validates a table file with no block cache.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with_cache(path, None)
    }

    /// Opens and validates a table file; point reads and range scans go
    /// through `cache` when one is given.
    pub fn open_with_cache(
        path: impl Into<PathBuf>,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Self> {
        let path = path.into();
        let mut file = File::open(&path)
            .map_err(|e| StorageError::io(format!("opening SSTable {}", path.display()), e))?;
        let file_len = file.metadata().map_err(|e| StorageError::io("statting SSTable", e))?.len();
        if file_len < FOOTER_LEN {
            return Err(StorageError::corrupt(&path, "file shorter than footer"));
        }

        let mut footer = vec![0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(file_len - FOOTER_LEN))
            .and_then(|_| file.read_exact(&mut footer))
            .map_err(|e| StorageError::io("reading SSTable footer", e))?;
        if footer.get(FOOTER_LEN as usize - 8..) != Some(MAGIC.as_slice()) {
            return Err(StorageError::corrupt(&path, "bad magic"));
        }
        let truncated = || StorageError::corrupt(&path, "footer field out of range");
        let index_off = take_u64_le(&footer, 0).ok_or_else(truncated)?;
        let index_len = take_u64_le(&footer, 8).ok_or_else(truncated)?;
        let index_crc = take_u32_le(&footer, 16).ok_or_else(truncated)?;
        let bloom_off = take_u64_le(&footer, 20).ok_or_else(truncated)?;
        let bloom_len = take_u64_le(&footer, 28).ok_or_else(truncated)?;
        let bloom_crc = take_u32_le(&footer, 36).ok_or_else(truncated)?;
        let entry_count = take_u64_le(&footer, 40).ok_or_else(truncated)?;
        if index_off + index_len > file_len || bloom_off + bloom_len > file_len {
            return Err(StorageError::corrupt(&path, "footer offsets out of range"));
        }

        let mut index_buf = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_off))
            .and_then(|_| file.read_exact(&mut index_buf))
            .map_err(|e| StorageError::io("reading SSTable index", e))?;
        if crc32c(&index_buf) != index_crc {
            return Err(StorageError::ChecksumMismatch { path, offset: index_off });
        }
        let index = decode_index(&index_buf)
            .ok_or_else(|| StorageError::corrupt(&path, "malformed index"))?;

        let mut bloom_buf = vec![0u8; bloom_len as usize];
        file.seek(SeekFrom::Start(bloom_off))
            .and_then(|_| file.read_exact(&mut bloom_buf))
            .map_err(|e| StorageError::io("reading SSTable bloom", e))?;
        if crc32c(&bloom_buf) != bloom_crc {
            return Err(StorageError::ChecksumMismatch { path, offset: bloom_off });
        }
        let bloom = BloomFilter::decode(&bloom_buf)
            .ok_or_else(|| StorageError::corrupt(&path, "malformed bloom filter"))?;

        Ok(SsTable {
            path,
            file: Mutex::new(file),
            index,
            bloom,
            entry_count,
            data_len: index_off,
            file_len,
            cache,
            cache_id: crate::cache::next_table_id(),
        })
    }

    /// Total entries in the table (tombstones included).
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Bytes of data blocks (excludes index/bloom/footer).
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Total on-disk size of the table file.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Point lookup. Outer `Option`: key present in this table? Inner:
    /// live value vs tombstone.
    pub fn get(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>> {
        if self.index.is_empty() || !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // Last block whose first key <= key.
        let idx = self.index.partition_point(|(first, _, _)| first.as_slice() <= key);
        if idx == 0 {
            return Ok(None);
        }
        let entries = self.load_block(idx - 1)?;
        for (k, v) in entries.iter() {
            if k == key {
                return Ok(Some(v.clone()));
            }
        }
        Ok(None)
    }

    /// Reads block `i` through the cache. Misses decode from disk and
    /// populate; sequential readers ([`TableIter`]) use
    /// [`Self::read_block`] instead so full scans and compactions don't
    /// flush the hot set.
    fn load_block(&self, i: usize) -> Result<Arc<Vec<Entry>>> {
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.read_block(i)?));
        };
        let block_no = u32::try_from(i).unwrap_or(u32::MAX);
        if let Some(hit) = cache.get(self.cache_id, block_no) {
            return Ok(hit);
        }
        let entries = Arc::new(self.read_block(i)?);
        cache.insert(self.cache_id, block_no, Arc::clone(&entries));
        Ok(entries)
    }

    /// Reads and verifies block `i` from the file (no cache).
    fn read_block(&self, i: usize) -> Result<Vec<Entry>> {
        let &(_, offset, len) = self
            .index
            .get(i)
            .ok_or_else(|| StorageError::corrupt(&self.path, format!("block {i} out of range")))?;
        let mut buf = vec![0u8; len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))
                .and_then(|_| file.read_exact(&mut buf))
                .map_err(|e| StorageError::io("reading SSTable block", e))?;
        }
        if buf.len() < 4 {
            return Err(StorageError::corrupt(&self.path, "block shorter than CRC"));
        }
        let (payload, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = take_u32_le(crc_bytes, 0)
            .ok_or_else(|| StorageError::corrupt(&self.path, "block CRC trailer"))?;
        if crc32c(payload) != stored {
            return Err(StorageError::ChecksumMismatch { path: self.path.clone(), offset });
        }
        decode_block(payload).ok_or_else(|| StorageError::corrupt(&self.path, "malformed block"))
    }

    /// Streams every entry in key order.
    pub fn iter(self: &std::sync::Arc<Self>) -> TableIter {
        TableIter { table: std::sync::Arc::clone(self), block: 0, entries: Vec::new(), pos: 0 }
    }

    /// Collects entries with `start <= key < end` (`end = None` ⇒ unbounded).
    pub fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<Entry>> {
        if self.index.is_empty() {
            return Ok(Vec::new());
        }
        let first_block =
            self.index.partition_point(|(first, _, _)| first.as_slice() <= start).saturating_sub(1);
        let mut out = Vec::new();
        for (i, (block_first, _, _)) in self.index.iter().enumerate().skip(first_block) {
            if let Some(end) = end {
                if block_first.as_slice() >= end {
                    break;
                }
            }
            for (k, v) in self.load_block(i)?.iter() {
                if k.as_slice() < start {
                    continue;
                }
                if let Some(end) = end {
                    if k.as_slice() >= end {
                        return Ok(out);
                    }
                }
                out.push((k.clone(), v.clone()));
            }
        }
        Ok(out)
    }
}

/// Streaming iterator over a table's entries; yields `Err` once and stops
/// if a block fails verification mid-stream.
pub struct TableIter {
    table: std::sync::Arc<SsTable>,
    block: usize,
    entries: Vec<Entry>,
    pos: usize,
}

impl Iterator for TableIter {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(slot) = self.entries.get_mut(self.pos) {
                let entry = std::mem::take(slot);
                self.pos += 1;
                return Some(Ok(entry));
            }
            if self.block >= self.table.index.len() {
                return None;
            }
            match self.table.read_block(self.block) {
                Ok(entries) => {
                    self.block += 1;
                    self.entries = entries;
                    self.pos = 0;
                }
                Err(e) => {
                    self.block = self.table.index.len();
                    return Some(Err(e));
                }
            }
        }
    }
}

fn decode_index(buf: &[u8]) -> Option<Vec<(Vec<u8>, u64, u64)>> {
    let mut pos = 0usize;
    let count = take_varint(buf, &mut pos)? as usize;
    let mut index = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let klen = take_varint(buf, &mut pos)? as usize;
        let end = pos.checked_add(klen)?;
        let key = buf.get(pos..end)?.to_vec();
        pos = end;
        let offset = take_varint(buf, &mut pos)?;
        let len = take_varint(buf, &mut pos)?;
        index.push((key, offset, len));
    }
    (pos == buf.len()).then_some(index)
}

fn decode_block(buf: &[u8]) -> Option<Vec<Entry>> {
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < buf.len() {
        let klen = take_varint(buf, &mut pos)? as usize;
        let kend = pos.checked_add(klen)?;
        let key = buf.get(pos..kend)?.to_vec();
        pos = kend;
        let tag = *buf.get(pos)?;
        pos += 1;
        let value = match tag {
            0 => None,
            1 => {
                let vlen = take_varint(buf, &mut pos)? as usize;
                let vend = pos.checked_add(vlen)?;
                let v = buf.get(pos..vend)?.to_vec();
                pos = vend;
                Some(v)
            }
            _ => return None,
        };
        out.push((key, value));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use std::sync::Arc;

    fn build_table(dir: &TempDir, entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> Arc<SsTable> {
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, entries.len(), TableOptions::default()).unwrap();
        for (k, v) in entries {
            b.add(k, v.as_deref()).unwrap();
        }
        b.finish().unwrap();
        Arc::new(SsTable::open(&path).unwrap())
    }

    fn sample_entries(n: u32) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let key = format!("key-{i:06}").into_bytes();
                let value = if i % 7 == 0 { None } else { Some(vec![i as u8; 20]) };
                (key, value)
            })
            .collect()
    }

    #[test]
    fn point_lookups_hit_every_entry() {
        let dir = TempDir::new("sst-get");
        let entries = sample_entries(2_000);
        let table = build_table(&dir, &entries);
        assert_eq!(table.entry_count(), 2_000);
        for (k, v) in &entries {
            assert_eq!(
                table.get(k).unwrap(),
                Some(v.clone()),
                "key {:?}",
                String::from_utf8_lossy(k)
            );
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let dir = TempDir::new("sst-miss");
        let table = build_table(&dir, &sample_entries(100));
        assert_eq!(table.get(b"zzz").unwrap(), None);
        assert_eq!(table.get(b"").unwrap(), None);
        assert_eq!(table.get(b"key-000050x").unwrap(), None);
    }

    #[test]
    fn iter_returns_all_in_order() {
        let dir = TempDir::new("sst-iter");
        let entries = sample_entries(500);
        let table = build_table(&dir, &entries);
        let got: Vec<Entry> = table.iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, entries);
    }

    #[test]
    fn scan_range_respects_bounds() {
        let dir = TempDir::new("sst-scan");
        let entries = sample_entries(300);
        let table = build_table(&dir, &entries);
        let got = table.scan_range(b"key-000100", Some(b"key-000110")).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"key-000100".to_vec());
        assert_eq!(got[9].0, b"key-000109".to_vec());
        // Unbounded scan from a midpoint reaches the end.
        let tail = table.scan_range(b"key-000295", None).unwrap();
        assert_eq!(tail.len(), 5);
    }

    #[test]
    fn out_of_order_keys_rejected() {
        let dir = TempDir::new("sst-order");
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, 2, TableOptions::default()).unwrap();
        b.add(b"b", Some(b"1")).unwrap();
        assert!(b.add(b"a", Some(b"2")).is_err());
        assert!(b.add(b"b", Some(b"2")).is_err(), "duplicates rejected too");
    }

    #[test]
    fn corrupted_block_detected_on_read() {
        let dir = TempDir::new("sst-corrupt");
        let entries = sample_entries(200);
        let table = build_table(&dir, &entries);
        let path = table.path().to_path_buf();
        drop(table);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xff; // inside the first data block
        std::fs::write(&path, &bytes).unwrap();
        let table = SsTable::open(&path).unwrap(); // footer/index still fine
        let err = table.get(b"key-000001").unwrap_err();
        assert!(matches!(err, StorageError::ChecksumMismatch { .. }));
    }

    #[test]
    fn corrupted_footer_detected_on_open() {
        let dir = TempDir::new("sst-footer");
        let table = build_table(&dir, &sample_entries(10));
        let path = table.path().to_path_buf();
        drop(table);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(SsTable::open(&path).is_err());
    }

    #[test]
    fn empty_table_is_valid() {
        let dir = TempDir::new("sst-empty");
        let table = build_table(&dir, &[]);
        assert_eq!(table.entry_count(), 0);
        assert_eq!(table.get(b"x").unwrap(), None);
        assert!(table.iter().next().is_none());
    }

    #[test]
    fn cached_reads_hit_after_first_touch() {
        let dir = TempDir::new("sst-cache");
        let entries = sample_entries(500);
        let path = dir.path().join("t.sst");
        let mut b = TableBuilder::create(&path, entries.len(), TableOptions::default()).unwrap();
        for (k, v) in &entries {
            b.add(k, v.as_deref()).unwrap();
        }
        b.finish().unwrap();
        let cache = Arc::new(crate::cache::BlockCache::new(1 << 20));
        let table = SsTable::open_with_cache(&path, Some(Arc::clone(&cache))).unwrap();

        for (k, v) in &entries {
            assert_eq!(table.get(k).unwrap(), Some(v.clone()));
        }
        let cold = cache.stats();
        assert!(cold.misses > 0);
        for (k, v) in &entries {
            assert_eq!(table.get(k).unwrap(), Some(v.clone()));
        }
        let warm = cache.stats();
        assert!(warm.hits >= cold.misses, "second pass served from cache: {warm:?}");
        assert_eq!(warm.misses, cold.misses, "no new disk reads on the warm pass");
    }

    #[test]
    fn multi_block_tables_index_correctly() {
        let dir = TempDir::new("sst-blocks");
        // Values big enough to force many blocks at the 4 KiB default.
        let entries: Vec<_> =
            (0..100u32).map(|i| (format!("k{i:04}").into_bytes(), Some(vec![7u8; 512]))).collect();
        let table = build_table(&dir, &entries);
        assert!(table.index.len() > 5, "expected many blocks, got {}", table.index.len());
        for (k, v) in &entries {
            assert_eq!(table.get(k).unwrap(), Some(v.clone()));
        }
    }
}
