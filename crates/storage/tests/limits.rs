//! Size-limit and boundary behaviour of both engines.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_storage::tempdir::TempDir;
use pass_storage::{
    EngineOptions, KvStore, LsmEngine, MemEngine, StorageError, WriteBatch, MAX_KEY_LEN,
};

fn engines() -> (MemEngine, LsmEngine, TempDir) {
    let dir = TempDir::new("limits");
    let lsm = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();
    (MemEngine::new(), lsm, dir)
}

#[test]
fn max_key_len_is_inclusive() {
    let (mem, lsm, _dir) = engines();
    let key = vec![7u8; MAX_KEY_LEN];
    for db in [&mem as &dyn KvStore, &lsm] {
        db.put(&key, b"v").unwrap();
        assert_eq!(db.get(&key).unwrap(), Some(b"v".to_vec()));
    }
    let too_long = vec![7u8; MAX_KEY_LEN + 1];
    for db in [&mem as &dyn KvStore, &lsm] {
        assert!(matches!(db.put(&too_long, b"v"), Err(StorageError::OversizeEntry { .. })));
    }
}

#[test]
fn large_values_survive_flush_and_reopen() {
    let dir = TempDir::new("limits-large");
    let value = vec![0xabu8; 2 << 20]; // 2 MiB
    {
        let db = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();
        db.put(b"big", &value).unwrap();
        db.force_flush().unwrap();
        assert_eq!(db.get(b"big").unwrap(), Some(value.clone()));
    }
    let db = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();
    assert_eq!(db.get(b"big").unwrap(), Some(value));
}

#[test]
fn empty_value_is_distinct_from_absent() {
    let (mem, lsm, _dir) = engines();
    for db in [&mem as &dyn KvStore, &lsm] {
        db.put(b"empty", b"").unwrap();
        assert_eq!(db.get(b"empty").unwrap(), Some(Vec::new()));
        db.delete(b"empty").unwrap();
        assert_eq!(db.get(b"empty").unwrap(), None);
    }
}

#[test]
fn binary_keys_with_every_byte_value() {
    let (mem, lsm, _dir) = engines();
    let keys: Vec<Vec<u8>> = (0u8..=255).map(|b| vec![b, 255 - b, b]).collect();
    for db in [&mem as &dyn KvStore, &lsm] {
        let mut batch = WriteBatch::new();
        for k in &keys {
            batch.put(k.clone(), k.clone());
        }
        db.apply(batch).unwrap();
        for k in &keys {
            assert_eq!(db.get(k).unwrap().as_ref(), Some(k));
        }
        // Full-range scan returns them sorted.
        let all = db.scan_range(b"", None).unwrap();
        assert_eq!(all.len(), keys.len());
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }
}

#[test]
fn empty_batch_is_a_noop() {
    let (mem, lsm, _dir) = engines();
    for db in [&mem as &dyn KvStore, &lsm] {
        db.apply(WriteBatch::new()).unwrap();
        assert!(db.scan_range(b"", None).unwrap().is_empty());
    }
}
