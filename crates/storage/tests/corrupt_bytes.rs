//! Regression tests for the L1 hardening: corrupt bytes found while
//! recovering — in the cross-shard intent log, the manifest, or an
//! SSTable footer — must surface as `StorageError`s, never as panics.
//! Each test feeds a recovery path bytes that used to trip an
//! `unwrap`/`expect`/slice-index and asserts the open *returns*.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pass_storage::tempdir::TempDir;
use pass_storage::wal::{SyncPolicy, Wal};
use pass_storage::{EngineOptions, KvStore, LsmEngine, ShardRouter, ShardedStore};
use std::path::Path;
use std::sync::Arc;

fn byte_router(shards: usize) -> ShardRouter {
    Box::new(move |key: &[u8]| key.first().copied().unwrap_or(0) as usize % shards)
}

fn open_sharded(dir: &Path, shards: usize) -> pass_storage::Result<ShardedStore> {
    let mut engines: Vec<Arc<dyn KvStore>> = Vec::new();
    for i in 0..shards {
        engines.push(Arc::new(LsmEngine::open(
            dir.join(format!("shard-{i:02}")),
            EngineOptions::default(),
        )?));
    }
    ShardedStore::open(
        engines,
        byte_router(shards),
        Some(dir.join("xcommit.log")),
        SyncPolicy::OnWrite,
    )
}

/// A checksummed-but-undecodable intent record is corruption past the
/// commit point: recovery must report it, not panic in the decoder.
#[test]
fn valid_crc_garbage_intent_record_is_an_error_not_a_panic() {
    let dir = TempDir::new("corrupt-intent");
    // Frame garbage as a perfectly valid WAL record (length + CRC both
    // fine), so recovery reaches the batch decoder with junk bytes.
    let mut wal = Wal::create(dir.path().join("xcommit.log"), SyncPolicy::OnWrite).unwrap();
    wal.append(&[0xde, 0xad, 0xbe, 0xef, 0x99]).unwrap();
    drop(wal);

    let err = open_sharded(dir.path(), 2).expect_err("garbage intent must fail the open");
    let msg = err.to_string();
    assert!(msg.contains("intent"), "error names the intent log: {msg}");
}

/// A torn intent header (half a length prefix) is the ordinary crash
/// artifact: recovery discards it and the open succeeds.
#[test]
fn torn_intent_header_recovers_cleanly() {
    let dir = TempDir::new("torn-intent-header");
    std::fs::write(dir.path().join("xcommit.log"), [42u8, 0, 0]).unwrap();
    let store = open_sharded(dir.path(), 2).expect("torn header is a discarded tail");
    assert_eq!(store.get(&[0]).unwrap(), None);
}

/// A manifest log truncated below any decodable record, in a directory
/// that demonstrably held tables, is destroyed metadata: the open must
/// error, not silently start a fresh (empty) edition over live data.
#[test]
fn truncated_manifest_is_an_error_not_a_panic() {
    let dir = TempDir::new("corrupt-manifest");
    {
        let db = LsmEngine::open(dir.path().to_path_buf(), EngineOptions::default()).unwrap();
        db.put(b"k", b"v").unwrap();
        db.flush().unwrap(); // seal a table so the directory isn't empty
    }
    // Truncate the manifest log below its first frame header.
    std::fs::write(dir.path().join("MANIFEST.log"), [7u8, 0, 0]).unwrap();
    let err = LsmEngine::open(dir.path().to_path_buf(), EngineOptions::default())
        .expect_err("destroyed manifest must fail the open");
    let msg = err.to_string();
    assert!(msg.to_lowercase().contains("manifest") || msg.contains("corrupt"), "{msg}");
}

/// A pre-manifest-log `MANIFEST` too short to hold its own header must
/// fail the legacy bootstrap, not panic in the decoder.
#[test]
fn truncated_legacy_manifest_is_an_error_not_a_panic() {
    let dir = TempDir::new("corrupt-legacy-manifest");
    std::fs::create_dir_all(dir.path()).unwrap();
    std::fs::write(dir.path().join("MANIFEST"), [7u8, 0, 0]).unwrap();
    let err = LsmEngine::open(dir.path().to_path_buf(), EngineOptions::default())
        .expect_err("short legacy manifest must fail the open");
    let msg = err.to_string();
    assert!(msg.to_lowercase().contains("manifest") || msg.contains("corrupt"), "{msg}");
}

/// An SSTable whose footer bytes are garbage must fail `open` with a
/// corruption error instead of panicking in the footer reader.
#[test]
fn garbage_sstable_footer_is_an_error_not_a_panic() {
    let dir = TempDir::new("corrupt-footer");
    let path = dir.path().join("t.sst");
    std::fs::write(&path, vec![0xabu8; 16]).unwrap();
    assert!(
        pass_storage::sstable::SsTable::open(&path).is_err(),
        "garbage footer must be rejected"
    );
}
