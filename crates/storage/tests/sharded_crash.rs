//! Crash-injection tests for cross-shard commits at the storage layer:
//! a writer killed between the per-shard WAL appends must leave a store
//! that recovers to the whole commit (durable intent → roll forward) or
//! to none of it (torn intent) — never to a torn half.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_storage::tempdir::TempDir;
use pass_storage::{
    EngineOptions, KvStore, LsmEngine, ShardRouter, ShardedStore, StorageError, SyncPolicy,
    WriteBatch,
};
use proptest::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Routes by the first key byte — deterministic and easy to span.
fn byte_router(shards: usize) -> ShardRouter {
    Box::new(move |key: &[u8]| key.first().copied().unwrap_or(0) as usize % shards)
}

/// A shard engine that can be killed: once dead, applies fail as if the
/// process died before this shard's WAL append.
struct DyingShard {
    inner: LsmEngine,
    dead: AtomicBool,
}

impl DyingShard {
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }
}

impl KvStore for DyingShard {
    fn get(&self, key: &[u8]) -> pass_storage::Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }
    fn apply(&self, batch: WriteBatch) -> pass_storage::Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(StorageError::io(
                "injected crash before shard WAL append",
                std::io::Error::other("killed"),
            ));
        }
        self.inner.apply(batch)
    }
    fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> pass_storage::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan_range(start, end)
    }
    fn flush(&self) -> pass_storage::Result<()> {
        self.inner.flush()
    }
}

fn open_lsm(dir: &Path, i: usize) -> LsmEngine {
    LsmEngine::open(dir.join(format!("shard-{i:02}")), EngineOptions::default()).unwrap()
}

/// Store where shard `victim` dies on command and the rest stay healthy.
fn store_with_victim(dir: &Path, shards: usize, victim: usize) -> (ShardedStore, Arc<DyingShard>) {
    let dying = Arc::new(DyingShard { inner: open_lsm(dir, victim), dead: AtomicBool::new(false) });
    let engines: Vec<Arc<dyn KvStore>> = (0..shards)
        .map(|i| {
            if i == victim {
                Arc::clone(&dying) as Arc<dyn KvStore>
            } else {
                Arc::new(open_lsm(dir, i)) as Arc<dyn KvStore>
            }
        })
        .collect();
    let store = ShardedStore::open(
        engines,
        byte_router(shards),
        Some(dir.join("xcommit.log")),
        SyncPolicy::OnWrite,
    )
    .unwrap();
    (store, dying)
}

fn healthy_store(dir: &Path, shards: usize) -> ShardedStore {
    let engines: Vec<Arc<dyn KvStore>> =
        (0..shards).map(|i| Arc::new(open_lsm(dir, i)) as Arc<dyn KvStore>).collect();
    ShardedStore::open(
        engines,
        byte_router(shards),
        Some(dir.join("xcommit.log")),
        SyncPolicy::OnWrite,
    )
    .unwrap()
}

fn spanning_batch(shards: usize, tag: u8) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for s in 0..shards as u8 {
        batch.put(vec![s, tag], vec![b'v', s, tag]);
    }
    batch
}

#[test]
fn crash_between_shard_appends_recovers_the_whole_commit() {
    let dir = TempDir::new("xcrash-forward");
    for victim in 0..3 {
        let tag = 10 + victim as u8;
        let (store, dying) = store_with_victim(dir.path(), 3, victim);
        dying.kill();
        store.apply(spanning_batch(3, tag)).expect_err("victim shard dies before its WAL append");
        drop((store, dying));

        // Reopening replays the durable intent into every shard.
        let store = healthy_store(dir.path(), 3);
        for s in 0..3u8 {
            assert_eq!(
                store.get(&[s, tag]).unwrap(),
                Some(vec![b'v', s, tag]),
                "victim {victim}: shard {s} recovered its half of the commit"
            );
        }
        drop(store);
    }
}

#[test]
fn torn_intent_leaves_no_trace_of_the_commit() {
    let dir = TempDir::new("xcrash-torn");
    // Die on shard 0 — the first sub-batch applied — so the intent is
    // the only trace of the commit anywhere on disk.
    let (store, dying) = store_with_victim(dir.path(), 3, 0);
    dying.kill();
    store.apply(spanning_batch(3, 42)).expect_err("first shard dies");
    drop((store, dying));

    // Tear the intent record; the commit point was never reached.
    let xlog = dir.path().join("xcommit.log");
    let bytes = std::fs::read(&xlog).unwrap();
    assert!(bytes.len() > 9);
    std::fs::write(&xlog, &bytes[..bytes.len() - 1]).unwrap();

    let store = healthy_store(dir.path(), 3);
    for s in 0..3u8 {
        assert_eq!(store.get(&[s, 42]).unwrap(), None, "torn intent must not half-apply");
    }
    // Recovery discarded the torn log.
    assert_eq!(std::fs::metadata(&xlog).unwrap().len(), 0);
}

#[test]
fn recovery_is_idempotent_across_repeated_opens() {
    let dir = TempDir::new("xcrash-idem");
    let (store, dying) = store_with_victim(dir.path(), 2, 1);
    dying.kill();
    store.apply(spanning_batch(2, 7)).expect_err("shard 1 dies");
    drop((store, dying));

    // First reopen rolls forward; later reopens find a clean log and
    // must not double-apply or error.
    for round in 0..3 {
        let store = healthy_store(dir.path(), 2);
        for s in 0..2u8 {
            assert_eq!(store.get(&[s, 7]).unwrap(), Some(vec![b'v', s, 7]), "round {round}");
        }
        drop(store);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any cross-shard batch killed at any victim shard recovers to the
    /// complete batch — last-write-wins per key, like a live apply.
    #[test]
    fn prop_killed_cross_shard_batches_roll_forward(
        ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..6), proptest::collection::vec(any::<u8>(), 0..8)),
            2..24,
        ),
        victim in 0usize..3,
    ) {
        let dir = TempDir::new("xcrash-prop");
        let mut batch = WriteBatch::new();
        let mut expect: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
        for (key, value) in ops {
            batch.put(key.clone(), value.clone());
            expect.insert(key, value);
        }
        let (store, dying) = store_with_victim(dir.path(), 3, victim);
        dying.kill();
        // Single-shard batches skip the intent log and die outright —
        // only spanning batches exercise roll-forward. Both outcomes
        // must still be all-or-nothing.
        let spans = expect.keys().map(|k| k[0] as usize % 3).collect::<std::collections::BTreeSet<_>>();
        let failed = store.apply(batch).is_err();
        drop((store, dying));

        let store = healthy_store(dir.path(), 3);
        // A failed apply still commits iff the intent reached disk: only
        // spanning batches write one, and only a dying victim fails.
        let committed = !failed || (spans.len() > 1 && spans.contains(&victim));
        if committed {
            for (key, value) in &expect {
                prop_assert_eq!(store.get(key).unwrap(), Some(value.clone()));
            }
        }
        // All-or-nothing: a spanning batch is either fully present or
        // fully absent after recovery.
        if spans.len() > 1 {
            let present: Vec<bool> =
                expect.keys().map(|k| store.get(k).unwrap().is_some()).collect();
            prop_assert!(present.iter().all(|p| *p) || present.iter().all(|p| !*p));
        }
    }
}
