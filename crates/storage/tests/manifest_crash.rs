//! Crash-injection tests for the manifest edit log: whatever byte the
//! process dies on, reopening the directory must yield either the old
//! or the new edition of the table set — never a mix, never a panic,
//! and never silent garbage.
//!
//! The torn-tail cases simulate the ordinary crash artifact (an append
//! that never completed); the bad-CRC and destroyed-log cases simulate
//! corruption past the commit point, which must *fail* the open rather
//! than quietly dropping a committed edit (that would unregister live
//! tables and let the debris sweep delete real data).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pass_storage::crc::crc32c;
use pass_storage::tempdir::TempDir;
use pass_storage::{EngineOptions, KvStore, LsmEngine};
use std::path::Path;

const MANIFEST_LOG: &str = "MANIFEST.log";

fn small_opts() -> EngineOptions {
    EngineOptions { memtable_bytes: 2 << 10, compact_at: 3, ..EngineOptions::default() }
}

/// Runs a workload that leaves a manifest with a checkpoint snapshot,
/// several flush edits, and at least one compact edit. Returns the
/// final round number each key was written in.
fn build_workload(dir: &Path) -> u64 {
    let db = LsmEngine::open(dir.to_path_buf(), small_opts()).unwrap();
    let rounds = 4u64;
    for round in 0..rounds {
        for key in 0..120u64 {
            db.put(format!("key-{key:04}").as_bytes(), format!("{key}:{round}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
    }
    assert!(db.stats().compactions > 0, "workload must exercise compaction");
    rounds - 1
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Truncating the manifest at *every* byte offset simulates a crash at
/// every possible point of an append. Each prefix must either reopen
/// as a consistent edition (all readable values are real historical
/// values, no byte salad) or fail the open cleanly.
#[test]
fn every_prefix_cut_reopens_a_consistent_edition_or_fails_cleanly() {
    let pristine = TempDir::new("manifest-cut-pristine");
    let last_round = build_workload(pristine.path());
    let manifest_len =
        std::fs::metadata(pristine.path().join(MANIFEST_LOG)).unwrap().len() as usize;
    assert!(manifest_len > 16, "workload produced a real manifest");

    let mut opened = 0usize;
    let mut refused = 0usize;
    for cut in 0..=manifest_len {
        let work = TempDir::new(&format!("manifest-cut-{cut}"));
        copy_dir(pristine.path(), work.path());
        let log = work.path().join(MANIFEST_LOG);
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..cut]).unwrap();

        match LsmEngine::open(work.path().to_path_buf(), small_opts()) {
            Ok(db) => {
                opened += 1;
                for key in 0..120u64 {
                    let name = format!("key-{key:04}");
                    if let Some(value) = db.get(name.as_bytes()).unwrap() {
                        let text = String::from_utf8(value).expect("value is utf8, not garbage");
                        let (k, round) = text.split_once(':').expect("value keeps its shape");
                        assert_eq!(k.parse::<u64>().unwrap(), key, "value belongs to its key");
                        assert!(round.parse::<u64>().unwrap() <= last_round);
                    }
                }
            }
            Err(_) => refused += 1,
        }
    }
    // The full-length log and at least the checkpoint prefix must open;
    // cuts below the first complete frame must refuse (tables exist).
    assert!(opened > 0, "some prefixes reopen");
    assert!(refused > 0, "sub-frame prefixes refuse rather than sweep live tables");

    // The untouched directory still holds every final value.
    let db = LsmEngine::open(pristine.path().to_path_buf(), small_opts()).unwrap();
    for key in 0..120u64 {
        let got = db.get(format!("key-{key:04}").as_bytes()).unwrap().unwrap();
        assert_eq!(got, format!("{key}:{last_round}").into_bytes());
    }
}

/// A complete frame whose CRC does not match is corruption past the
/// commit point: the open must fail loudly instead of replaying a
/// partial history and deleting "unreferenced" tables.
#[test]
fn complete_frame_with_garbage_crc_fails_the_open() {
    let dir = TempDir::new("manifest-badcrc");
    build_workload(dir.path());
    let log = dir.path().join(MANIFEST_LOG);
    let mut bytes = std::fs::read(&log).unwrap();
    // Flip one payload byte inside the first frame; its stored CRC no
    // longer matches, and the frame is complete (nothing is torn).
    bytes[10] ^= 0xff;
    std::fs::write(&log, &bytes).unwrap();

    let err = LsmEngine::open(dir.path().to_path_buf(), small_opts())
        .expect_err("checksum mismatch must fail the open");
    let msg = err.to_string().to_lowercase();
    assert!(msg.contains("checksum") || msg.contains("corrupt"), "{msg}");

    // The sstable files survived the refused open: nothing was swept.
    let ssts = std::fs::read_dir(dir.path())
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".sst"))
        .count();
    assert!(ssts > 0, "refusing the open must not delete tables");
}

/// A crash after compaction wrote (and fsynced) its output table but
/// before the manifest edit committed leaves an orphan file with an
/// unreferenced id. Reopen must land on the *old* edition: the orphan
/// is swept, every key still reads, and the id space stays collision
/// free for future flushes.
#[test]
fn orphan_table_from_a_pre_commit_crash_is_swept_and_ids_stay_unique() {
    let dir = TempDir::new("manifest-orphan");
    let last_round = build_workload(dir.path());

    // Fabricate the orphan: a real, valid sstable file under an id the
    // manifest has never heard of (as if the merge output was written
    // but its Compact edit never became durable).
    let some_sst = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "sst"))
        .expect("workload left tables");
    let orphan = dir.path().join("sst-0000000099.sst");
    std::fs::copy(&some_sst, &orphan).unwrap();

    let db = LsmEngine::open(dir.path().to_path_buf(), small_opts()).unwrap();
    assert!(!orphan.exists(), "unreferenced table is debris and is swept");
    for key in 0..120u64 {
        let got = db.get(format!("key-{key:04}").as_bytes()).unwrap().unwrap();
        assert_eq!(got, format!("{key}:{last_round}").into_bytes(), "old edition intact");
    }

    // New flushes must not collide with any id ever seen on disk.
    db.put(b"after-crash", b"ok").unwrap();
    db.flush().unwrap();
    drop(db);
    let db = LsmEngine::open(dir.path().to_path_buf(), small_opts()).unwrap();
    assert_eq!(db.get(b"after-crash").unwrap().unwrap(), b"ok");
}

/// A pre-manifest-log directory (legacy single-record `MANIFEST`) must
/// bootstrap into the edit log on open with all data readable, and the
/// bootstrapped directory must keep round-tripping afterwards.
#[test]
fn legacy_manifest_directory_bootstraps_and_round_trips() {
    let dir = TempDir::new("manifest-legacy-roundtrip");
    let last_round = build_workload(dir.path());

    // Demote the directory to the legacy layout: list the live table
    // ids in a single checksummed record, drop the edit log. Ids are
    // < 128 so each varint is its own byte.
    let mut ids: Vec<u64> = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            let id = name.strip_prefix("sst-")?.strip_suffix(".sst")?;
            id.parse::<u64>().ok()
        })
        .collect();
    ids.sort_unstable();
    let mut payload = vec![ids.len() as u8];
    payload.extend(ids.iter().map(|&id| {
        assert!(id < 128, "test assumes single-byte varints");
        id as u8
    }));
    let mut record = (payload.len() as u32).to_le_bytes().to_vec();
    record.extend_from_slice(&crc32c(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    std::fs::write(dir.path().join("MANIFEST"), &record).unwrap();
    std::fs::remove_file(dir.path().join(MANIFEST_LOG)).unwrap();

    let db = LsmEngine::open(dir.path().to_path_buf(), small_opts()).unwrap();
    assert!(!dir.path().join("MANIFEST").exists(), "legacy file replaced by the log");
    assert!(dir.path().join(MANIFEST_LOG).exists());
    for key in 0..120u64 {
        let got = db.get(format!("key-{key:04}").as_bytes()).unwrap().unwrap();
        assert_eq!(got, format!("{key}:{last_round}").into_bytes());
    }

    // And the converted directory keeps working: write, crash-free
    // close, reopen.
    db.put(b"post-bootstrap", b"yes").unwrap();
    db.flush().unwrap();
    drop(db);
    let db = LsmEngine::open(dir.path().to_path_buf(), small_opts()).unwrap();
    assert_eq!(db.get(b"post-bootstrap").unwrap().unwrap(), b"yes");
}
