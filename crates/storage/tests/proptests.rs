//! Property tests: the LSM engine must be observationally equivalent to a
//! plain `BTreeMap` under any operation sequence, including across
//! flushes, compactions, reopens, and torn-WAL crashes.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_storage::tempdir::TempDir;
use pass_storage::{EngineOptions, KvStore, LsmEngine, MemEngine, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Action {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Batch(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    Flush,
    Compact,
    Reopen,
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // Small keyspace so operations collide and shadowing is exercised.
    (0u8..32).prop_map(|i| format!("key-{i:02}").into_bytes())
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (arb_key(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Action::Put(k, v)),
        2 => arb_key().prop_map(Action::Delete),
        1 => proptest::collection::vec(
            (arb_key(), proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16))),
            1..5
        ).prop_map(Action::Batch),
        1 => Just(Action::Flush),
        1 => Just(Action::Compact),
        1 => Just(Action::Reopen),
    ]
}

fn tiny_opts() -> EngineOptions {
    EngineOptions {
        memtable_bytes: 2 << 10, // flush constantly
        compact_at: 3,
        ..EngineOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lsm_matches_btreemap_model(actions in proptest::collection::vec(arb_action(), 1..60)) {
        let dir = TempDir::new("prop-lsm");
        let mut db = LsmEngine::open(dir.path(), tiny_opts()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for action in &actions {
            match action {
                Action::Put(k, v) => {
                    db.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Action::Delete(k) => {
                    db.delete(k).unwrap();
                    model.remove(k);
                }
                Action::Batch(ops) => {
                    let mut batch = WriteBatch::new();
                    for (k, v) in ops {
                        match v {
                            Some(v) => {
                                batch.put(k.clone(), v.clone());
                                model.insert(k.clone(), v.clone());
                            }
                            None => {
                                batch.delete(k.clone());
                                model.remove(k);
                            }
                        }
                    }
                    db.apply(batch).unwrap();
                }
                Action::Flush => db.force_flush().unwrap(),
                Action::Compact => db.force_compact().unwrap(),
                Action::Reopen => {
                    drop(db);
                    db = LsmEngine::open(dir.path(), tiny_opts()).unwrap();
                }
            }
            // Full-state equivalence after every step.
            let scanned: BTreeMap<Vec<u8>, Vec<u8>> =
                db.scan_range(b"", None).unwrap().into_iter().collect();
            prop_assert_eq!(&scanned, &model);
        }
        // Point reads agree too.
        for (k, v) in &model {
            let got = db.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    #[test]
    fn mem_engine_matches_btreemap_model(actions in proptest::collection::vec(arb_action(), 1..60)) {
        let db = MemEngine::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for action in &actions {
            match action {
                Action::Put(k, v) => {
                    db.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Action::Delete(k) => {
                    db.delete(k).unwrap();
                    model.remove(k);
                }
                Action::Batch(ops) => {
                    let mut batch = WriteBatch::new();
                    for (k, v) in ops {
                        match v {
                            Some(v) => {
                                batch.put(k.clone(), v.clone());
                                model.insert(k.clone(), v.clone());
                            }
                            None => {
                                batch.delete(k.clone());
                                model.remove(k);
                            }
                        }
                    }
                    db.apply(batch).unwrap();
                }
                Action::Flush | Action::Compact | Action::Reopen => {}
            }
        }
        let scanned: BTreeMap<Vec<u8>, Vec<u8>> =
            db.scan_range(b"", None).unwrap().into_iter().collect();
        prop_assert_eq!(scanned, model);
    }

    #[test]
    fn recovery_after_torn_wal_is_a_batch_prefix(
        batches in proptest::collection::vec(
            proptest::collection::vec((arb_key(), proptest::collection::vec(any::<u8>(), 1..16)), 1..4),
            1..8
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = TempDir::new("prop-torn");
        // Build prefix states: state[i] = model after first i batches.
        let mut states: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = vec![BTreeMap::new()];
        {
            let db = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();
            for ops in &batches {
                let mut batch = WriteBatch::new();
                let mut next = states.last().unwrap().clone();
                for (k, v) in ops {
                    batch.put(k.clone(), v.clone());
                    next.insert(k.clone(), v.clone());
                }
                db.apply(batch).unwrap();
                states.push(next);
            }
            // Dropped without flush: everything lives in the WAL.
        }
        let wal_path = dir.path().join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        let db = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();
        let recovered: BTreeMap<Vec<u8>, Vec<u8>> =
            db.scan_range(b"", None).unwrap().into_iter().collect();
        // The recovered state must be exactly one of the prefix states:
        // batches are atomic and applied in order.
        prop_assert!(
            states.iter().any(|s| s == &recovered),
            "recovered state is not a batch prefix: {recovered:?}"
        );
    }

    #[test]
    fn scan_range_agrees_with_model_on_random_bounds(
        entries in proptest::collection::btree_map(arb_key(), proptest::collection::vec(any::<u8>(), 0..8), 0..30),
        start in arb_key(),
        end in proptest::option::of(arb_key()),
    ) {
        let db = MemEngine::new();
        for (k, v) in &entries {
            db.put(k, v).unwrap();
        }
        let got = db.scan_range(&start, end.as_deref()).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .filter(|(k, _)| k.as_slice() >= start.as_slice())
            .filter(|(k, _)| end.as_ref().is_none_or(|e| k.as_slice() < e.as_slice()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
