//! Crash-injection: a multi-thousand-op `WriteBatch` must be
//! all-or-nothing across WAL replay (ISSUE-3 satellite).
//!
//! The group-commit ingest path funnels an entire stream of tuple sets
//! into one `WriteBatch`, so its crash-atomicity domain is now thousands
//! of operations wide. Truncating the WAL at positions throughout the
//! batch record simulates a crash mid-append; on every replay either the
//! whole batch is visible or none of it is — never a prefix.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use pass_storage::tempdir::TempDir;
use pass_storage::{EngineOptions, KvStore, LsmEngine, WriteBatch};

/// Matches the engine's (private) WAL file name.
const WAL_FILE: &str = "wal.log";
const OPS: usize = 4_096;

fn key(i: usize) -> Vec<u8> {
    format!("batch/{i:05}").into_bytes()
}

#[test]
fn multi_thousand_op_batch_is_all_or_nothing_across_replay() {
    let dir = TempDir::new("crash-atomic-4k");
    {
        let db = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();
        // An earlier, separately-committed key: its record precedes the
        // big batch in the WAL, so cuts inside the big batch must still
        // replay it.
        db.put(b"pre/sentinel", b"committed-before").unwrap();
        // A key the batch deletes, so replay exercises both op kinds.
        db.put(b"pre/doomed", b"overwritten-by-batch").unwrap();
        let mut batch = WriteBatch::new();
        for i in 0..OPS {
            batch.put(key(i), format!("value-{i}").into_bytes());
        }
        batch.delete(b"pre/doomed".to_vec());
        db.apply(batch).unwrap();
    }

    let wal_path = dir.path().join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    assert!(bytes.len() > OPS * 16, "the batch record should dominate the WAL");

    // Cutting at every byte would mean ~100k replays of a 4096-op batch;
    // sample ~200 positions spread across the file, always including the
    // final byte (the sharpest torn tail).
    let step = (bytes.len() / 199).max(1);
    let cuts: Vec<usize> = (1..bytes.len()).step_by(step).chain([bytes.len() - 1]).collect();
    for cut in cuts {
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();
        let db = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();

        let visible = db.scan_prefix(b"batch/").unwrap().len();
        assert!(
            visible == 0 || visible == OPS,
            "torn WAL at cut {cut}: {visible}/{OPS} batch ops visible — a prefix leaked"
        );
        let doomed = db.get(b"pre/doomed").unwrap();
        if visible == OPS {
            assert_eq!(doomed, None, "cut {cut}: batch visible but its delete is not");
        }
        // If the cut is past the sentinel's own (earlier) record, the
        // sentinel must have survived regardless of the big batch's fate.
        if db.get(b"pre/sentinel").unwrap().is_some() {
            assert_eq!(db.get(b"pre/sentinel").unwrap().unwrap(), b"committed-before");
        }

        drop(db);
        std::fs::write(&wal_path, &bytes).unwrap();
    }

    // Sanity: the untruncated WAL replays the full batch.
    let db = LsmEngine::open(dir.path(), EngineOptions::default()).unwrap();
    assert_eq!(db.scan_prefix(b"batch/").unwrap().len(), OPS);
    assert_eq!(db.get(b"pre/doomed").unwrap(), None);
}
