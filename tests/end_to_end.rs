//! Workspace-level integration: the full story from sensor readings to
//! distributed provenance queries, crossing every crate boundary.

use pass::core::{ClosureStrategy, Pass, PassConfig};
use pass::distrib::runner::{build_arch, build_corpus, run_workload, ArchKind, WorkloadSpec};
use pass::index::{Direction, TraverseOpts};
use pass::model::{keys, SiteId, Timestamp, TupleSetId};
use pass::sensor::gen::rng_for;
use pass::sensor::pipeline::{self, LineageShape};
use pass::sensor::{medical, traffic, workload};
use pass::storage::tempdir::TempDir;

/// Sensor generators → local PASS → pipeline → §III queries → crash →
/// recovery, on the durable engine.
#[test]
fn sensor_to_disk_to_queries_to_recovery() {
    let dir = TempDir::new("e2e");
    let leaf;
    {
        let pass = Pass::open(PassConfig::disk(SiteId(5), dir.path())).unwrap();

        // Capture a traffic corpus.
        let specs = traffic::generate(
            &traffic::TrafficConfig { sensors: 4, seed: 77, ..Default::default() },
            Timestamp::ZERO,
            5,
        );
        let mut roots = Vec::new();
        for spec in &specs {
            roots.push(pass.capture(spec.attrs.clone(), spec.readings.clone(), spec.at).unwrap());
        }

        // Layer a braided lineage DAG over it via the pipeline builder.
        let levels = pipeline::build_lineage(
            &roots,
            LineageShape { depth: 3, width: 6, fanin: 2 },
            Timestamp::from_secs(100),
            |parents, tool, attrs, readings, at| pass.derive(parents, tool, attrs, readings, at),
        )
        .unwrap();
        leaf = levels[3][0];

        // The full §III mixed workload parses and runs.
        let vocab = workload::Vocabulary {
            ids: pass.ids(),
            regions: vec!["london".into()],
            patients: vec![],
            operators: vec![],
            tools: vec!["stage".into()],
            time_span: (Timestamp::ZERO, Timestamp::from_secs(120)),
        };
        let mut rng = rng_for(9, "e2e");
        for spec in workload::mixed(&vocab, &mut rng, 6) {
            pass.query_text(&spec.text).unwrap_or_else(|e| panic!("{}: {e}", spec.text));
        }

        // Closure through the braided DAG, all four strategies equal.
        let baseline: Vec<TupleSetId> = {
            let mut ids: Vec<_> = pass
                .lineage(leaf, Direction::Ancestors, TraverseOpts::unbounded())
                .unwrap()
                .iter()
                .map(|r| r.id)
                .collect();
            ids.sort();
            ids
        };
        // Fanin-2 braid: a leaf reaches windows of 2, 3, then 4 nodes
        // down the levels.
        assert!(baseline.len() >= 9, "deep braided closure, got {}", baseline.len());
        pass.flush().unwrap();
        drop(pass);

        for strategy in
            [ClosureStrategy::NaiveJoin, ClosureStrategy::Memo, ClosureStrategy::Interval]
        {
            let pass =
                Pass::open(PassConfig::disk(SiteId(5), dir.path()).with_closure(strategy)).unwrap();
            let mut ids: Vec<_> = pass
                .lineage(leaf, Direction::Ancestors, TraverseOpts::unbounded())
                .unwrap()
                .iter()
                .map(|r| r.id)
                .collect();
            ids.sort();
            assert_eq!(ids, baseline, "{strategy:?} diverges after reopen");
        }
    }

    // Crash-recover: truncate the WAL tail, reopen, audit.
    let wal = dir.path().join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    if bytes.len() > 10 {
        std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();
    }
    let pass = Pass::open(PassConfig::disk(SiteId(5), dir.path())).unwrap();
    assert!(pass.verify_consistency().unwrap().is_consistent());
    assert!(pass.contains(leaf), "flushed state survives the torn tail");
}

/// The medical generator feeds the EMT queries end to end.
#[test]
fn emt_queries_over_generated_vitals() {
    let pass = Pass::open_memory(SiteId(2));
    let specs = medical::generate(
        &medical::MedicalConfig { patients: 6, emts: 2, seed: 5, ..Default::default() },
        Timestamp::ZERO,
        3,
    );
    for spec in &specs {
        pass.capture(spec.attrs.clone(), spec.readings.clone(), spec.at).unwrap();
    }
    let by_patient = pass.query_text(r#"FIND WHERE patient = "patient-002""#).unwrap();
    assert_eq!(by_patient.records.len(), 3, "three windows per patient");
    let by_emt = pass.query_text(r#"FIND WHERE operator = "emt-1""#).unwrap();
    assert_eq!(by_emt.records.len(), 9, "three patients × three windows");
    for record in &by_emt.records {
        assert_eq!(record.attributes.get_str(keys::DOMAIN), Some("medical"));
    }
}

/// The six architectures agree with local ground truth on the standard
/// workload (smoke version of the E5 experiment).
#[test]
fn architectures_match_ground_truth_smoke() {
    let spec = WorkloadSpec {
        clusters: 2,
        per_cluster: 2,
        windows_per_site: 2,
        queries: 4,
        lineage_ops: 2,
        ..WorkloadSpec::default()
    };
    let corpus = build_corpus(&spec);
    for kind in ArchKind::all_default() {
        let mut arch = build_arch(kind, spec.topology(), spec.seed);
        let report = run_workload(arch.as_mut(), &corpus, &spec);
        assert!(report.quality.recall > 0.9, "{} recall {}", report.name, report.quality.recall);
        assert!(
            report.quality.precision > 0.99,
            "{} precision {}",
            report.name,
            report.quality.precision
        );
    }
}
