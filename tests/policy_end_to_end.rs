//! Workspace-level integration of the §V privacy agenda: real sensor
//! workloads flow through a guarded PASS, get aggregated for release,
//! queried under policy, redacted in lineage, and fully audited — with
//! the audit trail archived back into a PASS of its own.

use pass::core::Pass;
use pass::index::{Direction, TraverseOpts};
use pass::model::{keys, Attributes, Reading, SensorId, SiteId, Timestamp, ToolDescriptor};
use pass::policy::{
    Action, Effect, GuardedPass, NumericLadder, PolicyEngine, PolicyLabel, Principal, QuasiSpec,
    Rule, Sensitivity,
};
use pass::query::{CmpOp, Predicate};
use pass::sensor::medical::{self, MedicalConfig};

fn hipaa_engine() -> PolicyEngine {
    PolicyEngine::deny_by_default()
        .with_rule(Rule::allow("clinician-full").for_role("clinician").on([
            Action::ReadData,
            Action::ReadProvenance,
            Action::ReadLineage,
        ]))
        .with_rule(Rule::allow("public-read").when(Predicate::Cmp(
            pass::policy::label::ATTR_SENSITIVITY.into(),
            CmpOp::Le,
            Sensitivity::Public.rank().into(),
        )))
}

fn clinician() -> Principal {
    Principal::new("emt-1")
        .with_role("clinician")
        .with_clearance(Sensitivity::Private)
        .with_category("phi")
}

/// EMT corpus (pass-sensor) → guarded ingest → policy-filtered queries →
/// k-anonymous release → redacted lineage → audited everything.
#[test]
fn emt_corpus_under_policy_full_cycle() {
    let ward = GuardedPass::new(Pass::open_memory(SiteId(3)), hipaa_engine());
    let emt = clinician();
    let phi = PolicyLabel::new(Sensitivity::Private).with_category("phi");

    // Ingest the §III-C medical workload under PHI labels.
    let specs = medical::generate(
        &MedicalConfig { patients: 8, seed: 5, ..Default::default() },
        Timestamp::ZERO,
        3,
    );
    let mut charts = Vec::new();
    for spec in &specs {
        let id = ward
            .capture(&emt, phi.clone(), spec.attrs.clone(), spec.readings.clone(), spec.at)
            .expect("guarded capture");
        charts.push(id);
    }
    assert_eq!(charts.len(), 24);

    // Policy-filtered query: clinician sees all, outsider none.
    let q = r#"FIND WHERE domain = "medical""#;
    let (vis, withheld) = ward.query_text(&emt, q).unwrap();
    assert_eq!((vis.len(), withheld), (24, 0));
    let outsider = Principal::new("journalist");
    let (vis, withheld) = ward.query_text(&outsider, q).unwrap();
    assert_eq!((vis.len(), withheld), (0, 24));

    // Per-patient summaries (derived, sticky-labelled).
    let mut summaries = Vec::new();
    for (i, &chart) in charts.iter().enumerate() {
        let readings = ward.get_data(&emt, chart).unwrap().unwrap();
        let hr = readings.iter().filter_map(|r| r.field("hr_bpm")?.as_float()).sum::<f64>()
            / readings.len() as f64;
        let summary = ward
            .derive(
                &emt,
                PolicyLabel::public(), // attempted downgrade — must not stick
                &[chart],
                &ToolDescriptor::new("summarize", "1.0"),
                Attributes::new().with(keys::DOMAIN, "medical").with(keys::TYPE, "summary"),
                vec![Reading::new(SensorId(500 + i as u64), Timestamp(i as u64))
                    .with("heart_rate", hr)
                    .with("age", 20.0 + (i * 7 % 55) as f64)
                    .with("zone", (i % 3) as f64)],
                Timestamp::from_secs(4_000 + i as u64),
            )
            .expect("derive");
        // Sticky: the summary is still PHI despite the public request.
        let rec = ward.get_record(&emt, summary).unwrap();
        assert_eq!(PolicyLabel::of_record(&rec).sensitivity, Sensitivity::Private);
        summaries.push(summary);
    }

    // Sanctioned k-anonymous release over the summaries.
    let spec = QuasiSpec::new(
        vec![
            NumericLadder::new("age", vec![10.0, 25.0]).unwrap(),
            NumericLadder::new("zone", vec![3.0]).unwrap(),
        ],
        "heart_rate",
    )
    .unwrap();
    let (stats, anon) = ward
        .aggregate(
            &emt,
            &summaries,
            4,
            &spec,
            0.10,
            PolicyLabel::public(),
            Attributes::new().with(keys::DOMAIN, "medical").with(keys::TYPE, "ward_stats"),
            Timestamp::from_secs(9_000),
        )
        .expect("aggregate");
    assert!(anon.groups.iter().all(|g| g.count >= 4));
    assert!(anon.risk() <= 0.25 + 1e-9);

    // The outsider can read the release and its provenance names every
    // source, but lineage contents stay redacted.
    let rec = ward.get_record(&outsider, stats).expect("public release");
    assert_eq!(rec.ancestry.len(), summaries.len());
    assert_eq!(rec.ancestry[0].tool.name, "k-anonymize");
    let view = ward
        .lineage(&outsider, stats, Direction::Ancestors, TraverseOpts::unbounded())
        .expect("redacted lineage");
    assert_eq!(view.visible.len(), 1, "only the release itself is visible");
    assert_eq!(view.redacted_count, summaries.len() + charts.len());

    // The clinician sees the full two-generation lineage.
    let full = ward
        .lineage(&emt, stats, Direction::Ancestors, TraverseOpts::unbounded())
        .expect("full lineage");
    assert_eq!(full.redacted_count, 0);
    assert_eq!(full.visible.len(), 1 + summaries.len() + charts.len());

    // Audit completeness: every read decision above is in the trail, and
    // the trail archives into a PASS with provenance.
    let audit = ward.audit();
    assert!(audit.denials().iter().all(|e| e.effect == Effect::Deny));
    assert!(audit.by_principal("journalist").len() >= 25);
    let archive = Pass::open_memory(SiteId(99));
    let trail_id = archive
        .capture(
            Attributes::new().with(keys::DOMAIN, "audit"),
            audit.export_readings(),
            Timestamp::from_secs(10_000),
        )
        .unwrap();
    let stored = archive.get_data(trail_id).unwrap().unwrap();
    assert_eq!(stored.len(), audit.len());
    // The archived trail is queryable like any sensor data.
    let hits = archive.query_text(r#"FIND WHERE domain = "audit""#).unwrap();
    assert_eq!(hits.ids(), vec![trail_id]);
}

/// The mandatory layer holds across crate boundaries: no rule
/// combination can leak an undominated record through any read path.
#[test]
fn mandatory_layer_is_airtight_across_read_paths() {
    let engine = PolicyEngine::allow_by_default().with_rule(Rule::allow("everything")); // maximally permissive rules
    let ward = GuardedPass::new(Pass::open_memory(SiteId(1)), engine);
    let emt = clinician();
    let phi = PolicyLabel::new(Sensitivity::Private).with_category("phi");
    let id = ward
        .capture(
            &emt,
            phi,
            Attributes::new().with(keys::DOMAIN, "medical"),
            vec![Reading::new(SensorId(1), Timestamp(1)).with("hr", 80.0)],
            Timestamp(1),
        )
        .unwrap();

    let outsider = Principal::new("x"); // public clearance
    assert!(ward.get_record(&outsider, id).is_err());
    assert!(ward.get_data(&outsider, id).is_err());
    assert!(ward.lineage(&outsider, id, Direction::Ancestors, TraverseOpts::unbounded()).is_err());
    let (vis, withheld) = ward.query_text(&outsider, r#"FIND WHERE domain = "medical""#).unwrap();
    assert_eq!((vis.len(), withheld), (0, 1));

    // Partial clearance is still insufficient: level without category …
    let level_only = Principal::new("y").with_clearance(Sensitivity::Private);
    assert!(ward.get_data(&level_only, id).is_err());
    // … and category without level.
    let cat_only = Principal::new("z").with_category("phi");
    assert!(ward.get_data(&cat_only, id).is_err());
}
