//! `invariants.toml` loading.
//!
//! The offline dependency set has no `toml`/`serde` TOML support, so
//! this module parses the small subset the config actually uses:
//! `[table.sub]` headers, `key = "string"`, and `key = ["a", "b"]`
//! (single- or multi-line). Anything else is a hard error — a config
//! the linter cannot read must fail the build, not silently check
//! nothing.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed value: the config only ever holds strings and string lists.
#[derive(Debug, Clone)]
pub enum Value {
    Str(String),
    List(Vec<String>),
}

/// One rule's configuration as loaded from `invariants.toml`.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Glob patterns (relative to the lint root) this rule applies to.
    pub files: Vec<String>,
    /// Identifiers the rule denies (L2/L4) — meaning is per rule.
    pub deny: Vec<String>,
    /// Identifiers that trigger the rule (L5) or name the guarded
    /// field (L3, single entry).
    pub triggers: Vec<String>,
    /// Function names exempt from the rule (L3's sanctioned helpers).
    pub allow_in: Vec<String>,
    /// Required doc-comment marker (L5).
    pub marker: Option<String>,
    /// Lock-domain specs (L7): `"name:pattern[@glob]"` entries.
    pub domains: Vec<String>,
    /// Declared lock-domain acquisition order (L7) — the
    /// machine-readable form of the L5 prose notes.
    pub order: Vec<String>,
    /// Domains safe to re-acquire while held because an internal order
    /// exists (L7) — e.g. shard commit locks, taken ascending.
    pub nestable: Vec<String>,
}

/// `[callgraph]`: the corpus and resolution knobs for the
/// interprocedural rules (L6/L7).
#[derive(Debug, Clone)]
pub struct CallgraphConfig {
    /// Glob patterns selecting the call-graph corpus. Defaults to
    /// `["**"]`; the real workspace narrows it to `crates/*/src/**` so
    /// fixtures and tooling never join the graph.
    pub files: Vec<String>,
    /// Method/function names too generic for name-based resolution
    /// (`get`, `insert`, `clone`, …) — calls to them resolve to nothing.
    pub ignore_calls: Vec<String>,
}

impl Default for CallgraphConfig {
    fn default() -> Self {
        CallgraphConfig { files: vec!["**".to_string()], ignore_calls: Vec::new() }
    }
}

/// The full config: rule id (`l1`…`l8`) → its settings, plus the
/// call-graph corpus definition.
#[derive(Debug, Default)]
pub struct Config {
    pub rules: BTreeMap<String, RuleConfig>,
    pub callgraph: CallgraphConfig,
}

/// A config-file problem, with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariants.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the config source. Unknown keys are errors: a typo like
    /// `fils = [...]` must not silently disable a rule.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let raw = parse_toml_subset(src)?;
        let mut config = Config::default();
        for ((table, key), (value, line)) in raw {
            let err = |message: String| ConfigError { line, message };
            if table == "callgraph" {
                match (key.as_str(), value) {
                    ("files", Value::List(v)) => config.callgraph.files = v,
                    ("ignore_calls", Value::List(v)) => config.callgraph.ignore_calls = v,
                    (other, _) => {
                        return Err(err(format!(
                            "unknown or mistyped key `{other}` in [callgraph]"
                        )))
                    }
                }
                continue;
            }
            let Some(rule_id) = table.strip_prefix("rules.") else {
                return Err(ConfigError {
                    line,
                    message: format!(
                        "unexpected table [{table}] — expected [rules.*] or [callgraph]"
                    ),
                });
            };
            let rule = config.rules.entry(rule_id.to_string()).or_default();
            match (key.as_str(), value) {
                ("files", Value::List(v)) => rule.files = v,
                ("deny", Value::List(v)) => rule.deny = v,
                ("triggers", Value::List(v)) => rule.triggers = v,
                ("allow_in", Value::List(v)) => rule.allow_in = v,
                ("marker", Value::Str(s)) => rule.marker = Some(s),
                ("domains", Value::List(v)) => rule.domains = v,
                ("order", Value::List(v)) => rule.order = v,
                ("nestable", Value::List(v)) => rule.nestable = v,
                (other, _) => {
                    return Err(err(format!("unknown or mistyped key `{other}` in [{table}]")))
                }
            }
        }
        for (id, rule) in &config.rules {
            if rule.files.is_empty() {
                return Err(ConfigError {
                    line: 0,
                    message: format!("[rules.{id}] has no `files` patterns"),
                });
            }
        }
        Ok(config)
    }
}

type RawConfig = BTreeMap<(String, String), (Value, usize)>;

fn parse_toml_subset(src: &str) -> Result<RawConfig, ConfigError> {
    let mut out = RawConfig::new();
    let mut table = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw_line)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            table = header.trim().to_string();
            continue;
        }
        let Some((key, rest)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = key.trim().to_string();
        let mut rest = rest.trim().to_string();
        let value = if rest.starts_with('[') {
            // Gather a possibly multi-line array until the closing `]`.
            while !rest.contains(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(ConfigError { line: lineno, message: "unterminated array".into() });
                };
                rest.push(' ');
                rest.push_str(strip_comment(cont).trim());
            }
            let inner = rest
                .trim()
                .strip_prefix('[')
                .and_then(|r| r.trim_end().strip_suffix(']'))
                .ok_or_else(|| ConfigError { line: lineno, message: "malformed array".into() })?;
            let mut items = Vec::new();
            for piece in inner.split(',') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue; // trailing comma
                }
                items.push(unquote(piece, lineno)?);
            }
            Value::List(items)
        } else {
            Value::Str(unquote(&rest, lineno)?)
        };
        if table.is_empty() {
            return Err(ConfigError { line: lineno, message: "key outside any [table]".into() });
        }
        out.insert((table.clone(), key), (value, lineno));
    }
    Ok(out)
}

/// Strips a `#` comment, respecting (basic, non-escaped) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(piece: &str, lineno: usize) -> Result<String, ConfigError> {
    piece.strip_prefix('"').and_then(|p| p.strip_suffix('"')).map(str::to_string).ok_or_else(|| {
        ConfigError { line: lineno, message: format!("expected a quoted string, got `{piece}`") }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = Config::parse(
            r#"
# comment
[rules.l1]
files = ["crates/storage/src/*.rs", "crates/core/src/shard.rs"]

[rules.l5]
files = [
    "crates/core/src/pass.rs",  # inline comment
]
triggers = ["lock_one"]
marker = "Lock order"
"#,
        )
        .unwrap();
        assert_eq!(cfg.rules["l1"].files.len(), 2);
        assert_eq!(cfg.rules["l5"].marker.as_deref(), Some("Lock order"));
    }

    #[test]
    fn rejects_unknown_keys_and_empty_files() {
        assert!(Config::parse("[rules.l1]\nfils = [\"x\"]").is_err());
        assert!(Config::parse("[rules.l1]\nderp = \"x\"").is_err());
        assert!(Config::parse("[rules.l1]\ndeny = [\"x\"]").is_err(), "files required");
        assert!(Config::parse("[other]\nfiles = [\"x\"]").is_err(), "tables live under rules.*");
    }

    #[test]
    fn parses_callgraph_and_l7_keys() {
        let cfg = Config::parse(
            "[callgraph]\nfiles = [\"crates/*/src/**\"]\nignore_calls = [\"get\", \"insert\"]\n\n[rules.l7]\nfiles = [\"crates/**\"]\ndomains = [\"state:state.read@crates/core/src/pass.rs\"]\norder = [\"shard_commit\", \"state\"]\nnestable = [\"shard_commit\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.callgraph.files, vec!["crates/*/src/**"]);
        assert_eq!(cfg.callgraph.ignore_calls.len(), 2);
        assert_eq!(cfg.rules["l7"].domains.len(), 1);
        assert_eq!(cfg.rules["l7"].order, vec!["shard_commit", "state"]);
        assert_eq!(cfg.rules["l7"].nestable, vec!["shard_commit"]);
        assert!(Config::parse("[callgraph]\nfils = [\"x\"]").is_err());
    }
}
