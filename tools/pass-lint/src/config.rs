//! `invariants.toml` loading.
//!
//! The offline dependency set has no `toml`/`serde` TOML support, so
//! this module parses the small subset the config actually uses:
//! `[table.sub]` headers, `key = "string"`, and `key = ["a", "b"]`
//! (single- or multi-line). Anything else is a hard error — a config
//! the linter cannot read must fail the build, not silently check
//! nothing.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed value: the config only ever holds strings and string lists.
#[derive(Debug, Clone)]
pub enum Value {
    Str(String),
    List(Vec<String>),
}

/// One rule's configuration as loaded from `invariants.toml`.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Glob patterns (relative to the lint root) this rule applies to.
    pub files: Vec<String>,
    /// Identifiers the rule denies (L2/L4) — meaning is per rule.
    pub deny: Vec<String>,
    /// Identifiers that trigger the rule (L5) or name the guarded
    /// field (L3, single entry).
    pub triggers: Vec<String>,
    /// Function names exempt from the rule (L3's sanctioned helpers).
    pub allow_in: Vec<String>,
    /// Required doc-comment marker (L5).
    pub marker: Option<String>,
}

/// The full config: rule id (`l1`…`l5`) → its settings.
#[derive(Debug, Default)]
pub struct Config {
    pub rules: BTreeMap<String, RuleConfig>,
}

/// A config-file problem, with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariants.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the config source. Unknown keys are errors: a typo like
    /// `fils = [...]` must not silently disable a rule.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let raw = parse_toml_subset(src)?;
        let mut config = Config::default();
        for ((table, key), (value, line)) in raw {
            let Some(rule_id) = table.strip_prefix("rules.") else {
                return Err(ConfigError {
                    line,
                    message: format!("unexpected table [{table}] — rules live under [rules.*]"),
                });
            };
            let rule = config.rules.entry(rule_id.to_string()).or_default();
            let err = |message: String| ConfigError { line, message };
            match (key.as_str(), value) {
                ("files", Value::List(v)) => rule.files = v,
                ("deny", Value::List(v)) => rule.deny = v,
                ("triggers", Value::List(v)) => rule.triggers = v,
                ("allow_in", Value::List(v)) => rule.allow_in = v,
                ("marker", Value::Str(s)) => rule.marker = Some(s),
                (other, _) => {
                    return Err(err(format!("unknown or mistyped key `{other}` in [{table}]")))
                }
            }
        }
        for (id, rule) in &config.rules {
            if rule.files.is_empty() {
                return Err(ConfigError {
                    line: 0,
                    message: format!("[rules.{id}] has no `files` patterns"),
                });
            }
        }
        Ok(config)
    }
}

type RawConfig = BTreeMap<(String, String), (Value, usize)>;

fn parse_toml_subset(src: &str) -> Result<RawConfig, ConfigError> {
    let mut out = RawConfig::new();
    let mut table = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw_line)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            table = header.trim().to_string();
            continue;
        }
        let Some((key, rest)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = key.trim().to_string();
        let mut rest = rest.trim().to_string();
        let value = if rest.starts_with('[') {
            // Gather a possibly multi-line array until the closing `]`.
            while !rest.contains(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(ConfigError { line: lineno, message: "unterminated array".into() });
                };
                rest.push(' ');
                rest.push_str(strip_comment(cont).trim());
            }
            let inner = rest
                .trim()
                .strip_prefix('[')
                .and_then(|r| r.trim_end().strip_suffix(']'))
                .ok_or_else(|| ConfigError { line: lineno, message: "malformed array".into() })?;
            let mut items = Vec::new();
            for piece in inner.split(',') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue; // trailing comma
                }
                items.push(unquote(piece, lineno)?);
            }
            Value::List(items)
        } else {
            Value::Str(unquote(&rest, lineno)?)
        };
        if table.is_empty() {
            return Err(ConfigError { line: lineno, message: "key outside any [table]".into() });
        }
        out.insert((table.clone(), key), (value, lineno));
    }
    Ok(out)
}

/// Strips a `#` comment, respecting (basic, non-escaped) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(piece: &str, lineno: usize) -> Result<String, ConfigError> {
    piece.strip_prefix('"').and_then(|p| p.strip_suffix('"')).map(str::to_string).ok_or_else(|| {
        ConfigError { line: lineno, message: format!("expected a quoted string, got `{piece}`") }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = Config::parse(
            r#"
# comment
[rules.l1]
files = ["crates/storage/src/*.rs", "crates/core/src/shard.rs"]

[rules.l5]
files = [
    "crates/core/src/pass.rs",  # inline comment
]
triggers = ["lock_one"]
marker = "Lock order"
"#,
        )
        .unwrap();
        assert_eq!(cfg.rules["l1"].files.len(), 2);
        assert_eq!(cfg.rules["l5"].marker.as_deref(), Some("Lock order"));
    }

    #[test]
    fn rejects_unknown_keys_and_empty_files() {
        assert!(Config::parse("[rules.l1]\nfils = [\"x\"]").is_err());
        assert!(Config::parse("[rules.l1]\nderp = \"x\"").is_err());
        assert!(Config::parse("[rules.l1]\ndeny = [\"x\"]").is_err(), "files required");
        assert!(Config::parse("[other]\nfiles = [\"x\"]").is_err(), "tables live under rules.*");
    }
}
