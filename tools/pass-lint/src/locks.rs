//! L7: the held-while-acquiring graph over named lock domains.
//!
//! `invariants.toml` names each lock **domain** with a site pattern
//! (`domains = ["state:state.read@crates/core/src/pass.rs", ...]`);
//! this module finds every acquisition site, estimates how long its
//! guard is held (the *extent*), and records an edge `A → B` whenever a
//! `B` acquisition — directly, or transitively through resolved calls —
//! happens inside an `A` extent. Two checks run on the edges:
//!
//! * **declared order**: the `order = [...]` list (the machine-readable
//!   form of the L5 prose notes) ranks the domains; any edge going
//!   backwards is a finding at the acquiring site;
//! * **cycles**: any cycle in the domain graph is a finding carrying
//!   the full witness path (file:line per hop).
//!
//! Guard-extent model (the part worth knowing when a finding looks
//! surprising): an acquisition bound by `let name = ...;` is held until
//! `drop(name)` or the end of its enclosing block; `let _ = ...` drops
//! immediately; an acquisition used as a temporary (`x.lock().get(..)`)
//! is held to the end of its statement. `.unwrap()`, `.expect(..)`, and
//! `.unwrap_or_else(..)` chains preserve the guard (std `Mutex`
//! poison-recovery); any other chained call makes it a temporary.

use crate::callgraph::{FnRef, Workspace};
use crate::config::RuleConfig;
use crate::lexer::TokKind;
use crate::parse::{enclosing_block_end, is_ident, is_punct, matching, statement_end};
use crate::rules::{glob_match, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// How a domain's acquisition sites are recognized.
#[derive(Debug, PartialEq)]
enum Pattern {
    /// `recv.method` → `<recv> . <method> (`; `*.method` matches any
    /// receiver (still requires the leading `.`).
    Method { recv: Option<String>, method: String },
    /// Bare `name` → a call `name(` (method or free), excluding the
    /// `fn name(` definition site.
    Call { name: String },
}

/// One `"name:pattern[@glob]"` entry from `domains = [...]`.
#[derive(Debug)]
struct DomainSpec {
    name: String,
    pattern: Pattern,
    file_glob: Option<String>,
}

fn parse_spec(entry: &str) -> Result<DomainSpec, String> {
    let (name, rest) = entry
        .split_once(':')
        .ok_or_else(|| format!("domain spec `{entry}` has no `name:pattern`"))?;
    let (pat, glob) = match rest.split_once('@') {
        Some((p, g)) => (p, Some(g.to_string())),
        None => (rest, None),
    };
    let pattern = match pat.rsplit_once('.') {
        Some(("*", method)) => Pattern::Method { recv: None, method: method.to_string() },
        Some((recv, method)) => {
            Pattern::Method { recv: Some(recv.to_string()), method: method.to_string() }
        }
        None => Pattern::Call { name: pat.to_string() },
    };
    if name.is_empty() || pat.is_empty() {
        return Err(format!("domain spec `{entry}` has an empty name or pattern"));
    }
    Ok(DomainSpec { name: name.to_string(), pattern, file_glob: glob })
}

/// One acquisition site with its estimated guard extent (token range in
/// the owning file, inclusive).
#[derive(Debug)]
struct Acquisition {
    domain: usize,
    line: u32,
    /// Token index of the matched method/call identifier.
    site: usize,
    /// Last token index at which the guard is (estimated) still held.
    extent_end: usize,
}

/// An observed `from`-held-while-acquiring-`to` edge, with the witness
/// for diagnostics. One representative edge is kept per (from, to).
#[derive(Debug)]
struct Edge {
    from: usize,
    to: usize,
    /// Where the inner acquisition (or the call leading to it) happens.
    file: String,
    line: u32,
    /// Line where the outer guard was taken (same file).
    held_line: u32,
    /// `Some("via `Engine::apply` → ...")` for call-mediated edges.
    via: Option<String>,
}

/// Runs the L7 analysis over the workspace.
pub fn check_l7(rule: &RuleConfig, ws: &Workspace<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut specs = Vec::new();
    for entry in &rule.domains {
        match parse_spec(entry) {
            Ok(s) => specs.push(s),
            Err(message) => findings.push(Finding {
                rule: "l7".into(),
                file: "invariants.toml".into(),
                line: 0,
                message,
            }),
        }
    }
    if specs.is_empty() {
        return findings;
    }
    let domain_names: Vec<&str> = {
        let mut seen = Vec::new();
        for s in &specs {
            if !seen.contains(&s.name.as_str()) {
                seen.push(s.name.as_str());
            }
        }
        seen
    };
    let domain_of = |name: &str| domain_names.iter().position(|n| *n == name);

    // Pass 1: acquisition sites per function.
    let mut acqs: BTreeMap<FnRef, Vec<Acquisition>> = BTreeMap::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        let in_scope: Vec<&DomainSpec> = specs
            .iter()
            .filter(|s| s.file_glob.as_deref().is_none_or(|g| glob_match(g, file.path)))
            .collect();
        if in_scope.is_empty() {
            continue;
        }
        for (fn_idx, f) in file.syms.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let found = find_acquisitions(file, f.body_open, f.end_idx, &in_scope, &domain_of);
            if !found.is_empty() {
                acqs.insert((file_idx, fn_idx), found);
            }
        }
    }

    // Pass 2: transitive domain closure per function, with one witness
    // step per (fn, domain) for path reconstruction.
    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Reach {
        Direct(u32),
        Via(FnRef),
    }
    let mut trans: BTreeMap<FnRef, BTreeMap<usize, Reach>> = BTreeMap::new();
    for (&fnref, list) in &acqs {
        let entry = trans.entry(fnref).or_default();
        for a in list {
            entry.entry(a.domain).or_insert(Reach::Direct(a.line));
        }
    }
    loop {
        let mut grew = false;
        for (file_idx, file) in ws.files.iter().enumerate() {
            for (fn_idx, f) in file.syms.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let mut add: Vec<(usize, Reach)> = Vec::new();
                for call in &file.syms.calls[fn_idx] {
                    for callee in ws.resolve(file_idx, &call.callee) {
                        if callee == (file_idx, fn_idx) {
                            continue;
                        }
                        if let Some(doms) = trans.get(&callee) {
                            let have = trans.get(&(file_idx, fn_idx));
                            for &d in doms.keys() {
                                if !have.is_some_and(|h| h.contains_key(&d)) {
                                    add.push((d, Reach::Via(callee)));
                                }
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    let entry = trans.entry((file_idx, fn_idx)).or_default();
                    for (d, r) in add {
                        if entry.insert(d, r).is_none() {
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Witness text for "calling `g` eventually acquires `d`".
    let describe = |start: FnRef, d: usize| -> String {
        let mut path = vec![start];
        let mut cur = start;
        let mut hops = 0;
        loop {
            match trans.get(&cur).and_then(|m| m.get(&d)) {
                Some(Reach::Via(next)) if hops < 16 => {
                    path.push(*next);
                    cur = *next;
                    hops += 1;
                }
                _ => break,
            }
        }
        let chain: Vec<String> = path.iter().map(|&r| format!("`{}`", ws.display(r))).collect();
        let (f, l) = ws.site(cur);
        format!("via {} ({f}:{l})", chain.join(" -> "))
    };

    // Pass 3: edges — direct nesting plus call-mediated acquisition
    // inside each guard extent.
    let mut edges: BTreeMap<(usize, usize), Edge> = BTreeMap::new();
    let mut add_edge = |e: Edge| {
        edges.entry((e.from, e.to)).or_insert(e);
    };
    for (&(file_idx, fn_idx), list) in &acqs {
        let file = &ws.files[file_idx];
        for a in list {
            for b in list {
                if b.site > a.site && b.site <= a.extent_end {
                    add_edge(Edge {
                        from: a.domain,
                        to: b.domain,
                        file: file.path.to_string(),
                        line: b.line,
                        held_line: a.line,
                        via: None,
                    });
                }
            }
            for call in &file.syms.calls[fn_idx] {
                if call.tok_idx <= a.site || call.tok_idx > a.extent_end {
                    continue;
                }
                for callee in ws.resolve(file_idx, &call.callee) {
                    // A call resolving to the enclosing function itself is
                    // (almost always) a same-name method on another type,
                    // not recursion — skip it, as the closure pass does.
                    if callee == (file_idx, fn_idx) {
                        continue;
                    }
                    if let Some(doms) = trans.get(&callee) {
                        for &d in doms.keys() {
                            add_edge(Edge {
                                from: a.domain,
                                to: d,
                                file: file.path.to_string(),
                                line: call.line,
                                held_line: a.line,
                                via: Some(describe(callee, d)),
                            });
                        }
                    }
                }
            }
        }
    }

    // Check 1: declared order.
    let rank = |d: usize| rule.order.iter().position(|n| n == domain_names[d]);
    let nestable = |d: usize| rule.nestable.iter().any(|n| n == domain_names[d]);
    for e in edges.values() {
        if e.from == e.to {
            if !nestable(e.from) {
                findings.push(Finding {
                    rule: "l7".into(),
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "lock domain `{}` acquired again while already held (since line {}){} — non-reentrant; list it under `nestable` only if an internal order makes this safe",
                        domain_names[e.from],
                        e.held_line,
                        e.via.as_deref().map(|v| format!(" {v}")).unwrap_or_default(),
                    ),
                });
            }
            continue;
        }
        if let (Some(rf), Some(rt)) = (rank(e.from), rank(e.to)) {
            if rf > rt {
                findings.push(Finding {
                    rule: "l7".into(),
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "lock domain `{}` acquired while holding `{}` (held since line {}){} — violates the declared order in invariants.toml",
                        domain_names[e.to],
                        domain_names[e.from],
                        e.held_line,
                        e.via.as_deref().map(|v| format!(" {v}")).unwrap_or_default(),
                    ),
                });
            }
        }
    }

    // Check 2: cycles, with the full witness path.
    findings.extend(find_cycles(&edges, &domain_names));
    findings
}

/// DFS cycle search over the domain edge graph; self-edges were already
/// reported (or sanctioned) by the order check, so only proper cycles
/// (length ≥ 2) are hunted here.
fn find_cycles(edges: &BTreeMap<(usize, usize), Edge>, names: &[&str]) -> Vec<Finding> {
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(from, to) in edges.keys() {
        if from != to {
            adj.entry(from).or_default().push(to);
        }
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
    let nodes: Vec<usize> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS from `start`, looking for a path back to `start`.
        let mut stack = vec![(start, vec![start])];
        let mut visited = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(&node).into_iter().flatten() {
                if next == start {
                    let members: BTreeSet<usize> = path.iter().copied().collect();
                    if reported.insert(members) {
                        let mut cycle = path.clone();
                        cycle.push(start);
                        let mut hops = Vec::new();
                        for w in cycle.windows(2) {
                            let e = &edges[&(w[0], w[1])];
                            hops.push(format!(
                                "`{}` -> `{}` ({}:{})",
                                names[w[0]], names[w[1]], e.file, e.line
                            ));
                        }
                        let first = &edges[&(cycle[0], cycle[1])];
                        findings.push(Finding {
                            rule: "l7".into(),
                            file: first.file.clone(),
                            line: first.line,
                            message: format!(
                                "lock-order cycle: {} — a scheduler interleaving can deadlock here",
                                hops.join(", ")
                            ),
                        });
                    }
                    continue;
                }
                if visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}

/// Chained calls that keep the expression a guard.
const GUARD_CHAIN: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Finds acquisition sites in one function body and estimates each
/// guard's extent.
fn find_acquisitions(
    file: &crate::callgraph::WsFile<'_>,
    body_open: usize,
    body_end: usize,
    specs: &[&DomainSpec],
    domain_of: &dyn Fn(&str) -> Option<usize>,
) -> Vec<Acquisition> {
    let tokens = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in body_open + 1..body_end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || !is_punct(tokens, i + 1, "(") {
            continue;
        }
        for spec in specs {
            let hit = match &spec.pattern {
                Pattern::Method { recv, method } => {
                    t.text == *method
                        && i >= 1
                        && is_punct(tokens, i - 1, ".")
                        && recv.as_deref().is_none_or(|r| i >= 2 && is_ident(tokens, i - 2, r))
                }
                Pattern::Call { name } => {
                    t.text == *name && !(i >= 1 && is_ident(tokens, i - 1, "fn"))
                }
            };
            if !hit {
                continue;
            }
            let Some(domain) = domain_of(&spec.name) else { continue };
            let extent_end = guard_extent(file, i, body_end);
            out.push(Acquisition { domain, line: t.line, site: i, extent_end });
            break; // one domain per site — first spec wins
        }
    }
    out
}

/// Estimates how far the guard produced at call-ident `site` is held.
fn guard_extent(file: &crate::callgraph::WsFile<'_>, site: usize, body_end: usize) -> usize {
    let tokens = &file.lexed.tokens;
    // End of the acquisition expression: the call's closing paren, then
    // across any guard-preserving chain.
    let mut close = match matching(tokens, site + 1, "(", ")") {
        Some(c) => c,
        None => return statement_end(tokens, site).min(body_end),
    };
    while is_punct(tokens, close + 1, ".")
        && tokens
            .get(close + 2)
            .is_some_and(|t| t.kind == TokKind::Ident && GUARD_CHAIN.contains(&t.text.as_str()))
        && is_punct(tokens, close + 3, "(")
    {
        match matching(tokens, close + 3, "(", ")") {
            Some(c) => close = c,
            None => break,
        }
    }
    // `let <name> = <acq>;` binds the guard; anything else is a
    // temporary held to the end of its statement.
    if is_punct(tokens, close + 1, ";") {
        if let Some(name) = binding_name(tokens, site) {
            if name == "_" {
                return close + 1; // dropped immediately
            }
            // Held until `drop(name)` or the enclosing block closes.
            let block_end =
                enclosing_block_end(&file.syms.braces, site, tokens.len()).min(body_end);
            for j in close + 1..block_end {
                if is_ident(tokens, j, "drop")
                    && is_punct(tokens, j + 1, "(")
                    && is_ident(tokens, j + 2, &name)
                    && is_punct(tokens, j + 3, ")")
                {
                    return j;
                }
            }
            return block_end;
        }
    }
    statement_end(tokens, close + 1).min(body_end)
}

/// The `let` pattern name binding the statement containing `site`, when
/// the statement is a simple `let [mut] name = ...`.
fn binding_name(tokens: &[crate::lexer::Tok], site: usize) -> Option<String> {
    // Scan back to the statement start without crossing it.
    let mut j = site;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return None;
        }
        if t.kind == TokKind::Ident && t.text == "let" {
            let mut k = j + 1;
            if is_ident(tokens, k, "mut") {
                k += 1;
            }
            let name = tokens.get(k)?;
            if name.kind == TokKind::Ident && is_punct(tokens, k + 1, "=")
                || (name.text == "_" && is_punct(tokens, k + 1, "="))
            {
                return Some(name.text.clone());
            }
            // `let name: Type = ...` — accept a typed binding too.
            if name.kind == TokKind::Ident && is_punct(tokens, k + 1, ":") {
                return Some(name.text.clone());
            }
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;
    use crate::lexer::lex;
    use std::path::Path;

    fn run_l7(sources: &[(&str, &str)], domains: &[&str], order: &[&str]) -> Vec<Finding> {
        let lexed: Vec<(String, crate::lexer::Lexed)> =
            sources.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
        let ws = Workspace::build(
            Path::new("/nonexistent-for-test"),
            lexed.iter().map(|(p, l)| (p.as_str(), l)),
            &[],
        );
        let rule = RuleConfig {
            domains: domains.iter().map(|s| s.to_string()).collect(),
            order: order.iter().map(|s| s.to_string()).collect(),
            ..RuleConfig::default()
        };
        check_l7(&rule, &ws)
    }

    #[test]
    fn ab_ba_cycle_is_found_with_witness() {
        let findings = run_l7(
            &[(
                "x.rs",
                "fn one(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); drop(b); drop(a); }\n\
                 fn two(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); drop(a); drop(b); }",
            )],
            &["alpha:alpha.lock", "beta:beta.lock"],
            &[],
        );
        assert!(
            findings.iter().any(|f| f.message.contains("lock-order cycle")
                && f.message.contains("`alpha` -> `beta`")
                && f.message.contains("`beta` -> `alpha`")),
            "{findings:?}"
        );
    }

    #[test]
    fn declared_order_violation_via_call() {
        let findings = run_l7(
            &[
                ("a.rs", "fn outer(&self) { let g = self.beta.lock(); helper(); drop(g); }"),
                ("b.rs", "fn helper() { let a = self.alpha.lock(); drop(a); }"),
            ],
            &["alpha:alpha.lock", "beta:beta.lock"],
            &["alpha", "beta"],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("via `helper`"), "{findings:?}");
        assert!(findings[0].message.contains("violates the declared order"));
    }

    #[test]
    fn dropped_guard_ends_the_extent() {
        let findings = run_l7(
            &[(
                "x.rs",
                "fn f(&self) { let b = self.beta.lock(); drop(b); let a = self.alpha.lock(); drop(a); }",
            )],
            &["alpha:alpha.lock", "beta:beta.lock"],
            &["alpha", "beta"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn temporary_guard_extent_is_one_statement() {
        // The temporary ends at the `;` — the later alpha acquisition is
        // not "inside" it.
        let findings = run_l7(
            &[(
                "x.rs",
                "fn f(&self) { self.beta.lock().touch(); let a = self.alpha.lock(); drop(a); }",
            )],
            &["alpha:alpha.lock", "beta:beta.lock"],
            &["alpha", "beta"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn clone_chain_is_a_temporary_not_a_binding() {
        // `let s = self.beta.lock().clone();` does not hold beta past the
        // statement, so beta-then-alpha here is clean.
        let findings = run_l7(
            &[(
                "x.rs",
                "fn f(&self) { let s = self.beta.lock().clone(); let a = self.alpha.lock(); drop(a); }",
            )],
            &["alpha:alpha.lock", "beta:beta.lock"],
            &["alpha", "beta"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn poison_recovery_chain_preserves_the_guard() {
        let findings = run_l7(
            &[(
                "x.rs",
                "fn f(&self) { let b = self.beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner); let a = self.alpha.lock(); drop(a); drop(b); }",
            )],
            &["alpha:alpha.lock", "beta:beta.lock"],
            &["alpha", "beta"],
        );
        assert_eq!(findings.len(), 1, "beta is still held across alpha: {findings:?}");
    }

    #[test]
    fn block_scoped_guard_ends_at_the_block() {
        let findings = run_l7(
            &[(
                "x.rs",
                "fn f(&self) { let x = { let b = self.beta.lock(); 1 }; let a = self.alpha.lock(); drop(a); }",
            )],
            &["alpha:alpha.lock", "beta:beta.lock"],
            &["alpha", "beta"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn nestable_allows_self_edges() {
        let src = "fn f(&self) { let a = self.lock_many(ids); self.lock_one(i); drop(a); }";
        let with = {
            let lexed = [("x.rs".to_string(), lex(src))];
            let ws = Workspace::build(
                Path::new("/nonexistent-for-test"),
                lexed.iter().map(|(p, l)| (p.as_str(), l)),
                &[],
            );
            let rule = RuleConfig {
                domains: vec!["shard:lock_many".into(), "shard:lock_one".into()],
                nestable: vec!["shard".into()],
                ..RuleConfig::default()
            };
            check_l7(&rule, &ws)
        };
        assert!(with.is_empty(), "{with:?}");
        let without = run_l7(&[("x.rs", src)], &["shard:lock_many", "shard:lock_one"], &[]);
        assert_eq!(without.len(), 1, "{without:?}");
        assert!(without[0].message.contains("acquired again while already held"));
    }
}
