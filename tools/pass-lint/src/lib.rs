//! # pass-lint — the PASS workspace invariant checker
//!
//! CI-enforced rules the compiler cannot express, driven by the
//! repo-root `invariants.toml`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `l1` | no `unwrap`/`expect`/slice-index panics in crash-safety modules |
//! | `l2` | no fsync/blocking-I/O/bulk-encode calls in the `publish_order` section |
//! | `l3` | shard locks only via the ascending-order helpers |
//! | `l4` | no wall-clock reads in simulator/virtual-clock code |
//! | `l5` | commit-path functions document their lock-ordering position |
//! | `l6` | nothing *reachable* from the `publish_order` section fsyncs (interprocedural L2) |
//! | `l7` | the held-while-acquiring graph over lock domains is acyclic and ordered |
//! | `l8` | crash-path modules never silently drop I/O errors |
//!
//! L1–L5 and L8 are lexical, per-file. L6 and L7 run over a whole-
//! workspace call graph ([`callgraph`], [`locks`]) built from the same
//! zero-dependency token stream — see those modules for the (documented)
//! approximations.
//!
//! Deny-by-default: a matched pattern is a finding unless the line (or
//! the line above) carries `// pass-lint: allow(<rule>, reason="...")`.
//! Honored waivers are counted and printed so the waiver population is
//! itself reviewable in CI logs, and `--audit-waivers` turns waivers
//! that no longer suppress anything into findings of their own.
//!
//! Run as `cargo run -p pass-lint -- --workspace` from the repo root;
//! `--json`/`--sarif` emit machine-readable reports ([`sarif`]); see
//! `tools/pass-lint/tests/ui/` for per-rule fixtures.

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod rules;
pub mod sarif;

use config::Config;
use rules::{glob_match, Finding};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Everything one linting run produced.
#[derive(Debug, Default)]
pub struct RunReport {
    pub files_checked: usize,
    pub findings: Vec<Finding>,
    /// `(file, rule, line)` for every honored waiver.
    pub waivers: Vec<(String, String, u32)>,
}

impl RunReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run-level switches beyond the config file.
#[derive(Debug, Default)]
pub struct RunOptions {
    /// Turn waivers that suppress nothing into `stale-waiver` findings.
    pub audit_waivers: bool,
}

/// Lints every `.rs` file under `root` (skipping `target/` and
/// hidden directories) against `config`.
///
/// Phases: lex everything once; build the call-graph [`callgraph::Workspace`]
/// from the files in `[callgraph] files` scope; run the per-file rules;
/// run the workspace rules (L6/L7); then apply waivers *globally* — a
/// waiver comment suppresses per-file and workspace findings alike when
/// it names the rule and sits on the finding line or the line above.
pub fn run(root: &Path, config: &Config, options: &RunOptions) -> std::io::Result<RunReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut lexed_files: Vec<(String, lexer::Lexed)> = Vec::with_capacity(files.len());
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(root.join(rel))?;
        lexed_files.push((rel_str, lexer::lex(&src)));
    }

    let corpus = lexed_files
        .iter()
        .filter(|(p, _)| config.callgraph.files.iter().any(|g| glob_match(g, p)))
        .map(|(p, l)| (p.as_str(), l));
    let ws = callgraph::Workspace::build(root, corpus, &config.callgraph.ignore_calls);

    let mut report = RunReport { files_checked: lexed_files.len(), ..RunReport::default() };
    let mut raw: Vec<Finding> = Vec::new();
    let mut waivers_by_file: BTreeMap<&str, Vec<rules::Waiver>> = BTreeMap::new();
    for (rel, lexed) in &lexed_files {
        // Files outside every rule's scope contribute neither findings
        // nor waivers — fixture trees and tooling stay inert.
        let in_scope = config.rules.values().any(|r| r.files.iter().any(|g| glob_match(g, rel)));
        if !in_scope {
            continue;
        }
        let syms = parse::parse_file(lexed);
        let (waivers, waiver_findings) = rules::parse_waivers(&lexed.comments, rel);
        // Malformed / reason-less waivers are findings in their own
        // right and are never themselves waivable.
        report.findings.extend(waiver_findings);
        if !waivers.is_empty() {
            waivers_by_file.insert(rel, waivers);
        }
        raw.extend(rules::check_file(config, rel, lexed, &syms));
    }
    if let Some(rule) = config.rules.get("l6") {
        raw.extend(callgraph::check_l6(rule, &ws));
    }
    if let Some(rule) = config.rules.get("l7") {
        raw.extend(locks::check_l7(rule, &ws));
    }

    // Global waiver application. `used` keys honored waiver comments so
    // the stale audit can flag the rest.
    let mut used: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for f in raw {
        let hit = waivers_by_file.get(f.file.as_str()).and_then(|ws| {
            ws.iter().find(|w| {
                w.rule == f.rule && w.reason_ok && (w.line == f.line || w.line + 1 == f.line)
            })
        });
        match hit {
            Some(w) => {
                if used.insert((f.file.clone(), w.line, f.rule.clone())) {
                    report.waivers.push((f.file.clone(), f.rule.clone(), w.line));
                }
            }
            None => report.findings.push(f),
        }
    }
    if options.audit_waivers {
        for (file, waivers) in &waivers_by_file {
            for w in waivers {
                if w.reason_ok && !used.contains(&(file.to_string(), w.line, w.rule.clone())) {
                    report.findings.push(Finding {
                        rule: "stale-waiver".into(),
                        file: file.to_string(),
                        line: w.line,
                        message: format!(
                            "waiver for `{}` no longer suppresses any finding — remove it",
                            w.rule
                        ),
                    });
                }
            }
        }
    }
    report.findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    report.waivers.sort();
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
