//! # pass-lint — the PASS workspace invariant checker
//!
//! CI-enforced rules the compiler cannot express, driven by the
//! repo-root `invariants.toml`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `l1` | no `unwrap`/`expect`/slice-index panics in crash-safety modules |
//! | `l2` | no fsync/blocking-I/O/bulk-encode calls in the `publish_order` section |
//! | `l3` | shard locks only via the ascending-order helpers |
//! | `l4` | no wall-clock reads in simulator/virtual-clock code |
//! | `l5` | commit-path functions document their lock-ordering position |
//!
//! Deny-by-default: a matched pattern is a finding unless the line (or
//! the line above) carries `// pass-lint: allow(<rule>, reason="...")`.
//! Honored waivers are counted and printed so the waiver population is
//! itself reviewable in CI logs.
//!
//! Run as `cargo run -p pass-lint -- --workspace` from the repo root;
//! see `tools/pass-lint/tests/ui/` for per-rule fixtures.

pub mod config;
pub mod lexer;
pub mod rules;

use config::Config;
use rules::{FileReport, Finding};
use std::path::{Path, PathBuf};

/// Everything one linting run produced.
#[derive(Debug, Default)]
pub struct RunReport {
    pub files_checked: usize,
    pub findings: Vec<Finding>,
    /// `(file, rule, line)` for every honored waiver.
    pub waivers: Vec<(String, String, u32)>,
}

impl RunReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every `.rs` file under `root` (skipping `target/` and
/// hidden directories) against `config`.
pub fn run(root: &Path, config: &Config) -> std::io::Result<RunReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = RunReport { files_checked: files.len(), ..RunReport::default() };
    for rel in files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(root.join(&rel))?;
        let lexed = lexer::lex(&src);
        let FileReport { findings, waivers_honored } = rules::check_file(config, &rel_str, &lexed);
        report.findings.extend(findings);
        report
            .waivers
            .extend(waivers_honored.into_iter().map(|(rule, line)| (rel_str.clone(), rule, line)));
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
