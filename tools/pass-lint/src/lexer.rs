//! A small Rust lexer — just enough token structure for the rules in
//! [`crate::rules`]. The offline dependency set has no `syn`, so the
//! linter works on a token stream instead of an AST: every rule here is
//! expressible as patterns over identifiers, punctuation, and comment
//! placement, which the lexer preserves faithfully (including line
//! numbers, doc comments, and the ordinary comments that carry
//! `pass-lint: allow(...)` waivers).
//!
//! Deliberately unsupported: macro expansion (rules see macro *input*
//! tokens, which is what a reviewer sees too) and exotic literals
//! beyond what the workspace uses.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `publish_order`, …).
    Ident,
    /// `'a` — kept distinct so `'` disambiguation stays local.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String/char/byte literal (content dropped; rules never look inside).
    Literal,
    /// Single punctuation character (`{`, `[`, `.`, `#`, …).
    Punct,
    /// `///`, `//!`, `/** */`, `/*! */` — the text is the doc content.
    DocComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A non-doc comment (candidate waiver carrier).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    /// Text after the comment marker, untrimmed.
    pub text: String,
}

/// The output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unknown bytes
/// become single-character punctuation, which at worst makes a rule
/// miss — the linter must not crash on the code it polices.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                ch if ch.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.char_or_lifetime(line),
                ch if ch.is_alphabetic() || ch == '_' => self.ident(line),
                ch if ch.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `//`
        let doc_outer = self.peek(0) == Some('/') && self.peek(1) != Some('/');
        let doc_inner = self.peek(0) == Some('!');
        if doc_outer || doc_inner {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if doc_outer || doc_inner {
            self.push(TokKind::DocComment, text, line);
        } else {
            self.out.comments.push(Comment { line, text });
        }
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `/*`
        let doc = matches!(self.peek(0), Some('*' | '!')) && self.peek(1) != Some('/');
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                continue;
            }
            if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                continue;
            }
            text.push(c);
            self.bump();
        }
        if doc {
            self.push(TokKind::DocComment, text, line);
        } else {
            self.out.comments.push(Comment { line, text });
        }
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw
    /// identifiers `r#ident`. Returns false when `r`/`b` is just the
    /// start of an ordinary identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let first = self.peek(0);
        let mut look = 1usize;
        if first == Some('b') && self.peek(1) == Some('r') {
            look = 2;
        }
        // Count `#`s after the prefix.
        let mut hashes = 0usize;
        while self.peek(look + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(look + hashes) {
            Some('"') => {}
            Some('\'') if first == Some('b') && look == 1 && hashes == 0 => {
                // b'x' byte literal.
                self.bump(); // b
                self.char_literal(line);
                return true;
            }
            Some(c) if first == Some('r') && look == 1 && hashes == 1 && is_ident_char(c) => {
                // Raw identifier r#ident.
                self.bump();
                self.bump();
                self.ident(line);
                return true;
            }
            _ => return false,
        }
        // Raw (byte) string: consume prefix, hashes, opening quote.
        for _ in 0..look + hashes + 1 {
            self.bump();
        }
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(h) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, String::new(), line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` followed by non-quote = lifetime; otherwise char literal.
        let is_lifetime = match (self.peek(1), self.peek(2)) {
            (Some(c), Some('\'')) if c != '\\' => false, // 'x'
            (Some(c), _) if c.is_alphabetic() || c == '_' => true,
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if !is_ident_char(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_literal(line);
        }
    }

    fn char_literal(&mut self, line: u32) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_char(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for all workspace literals (hex, suffixes, floats
            // — though `1.x()` method calls stop at the dot correctly
            // because we only continue past `.` when a digit follows).
            let cont =
                is_ident_char(c) || (c == '.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !cont {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Number, text, line);
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_lines() {
        let l = lex("fn main() {\n  x.unwrap();\n}");
        let unwrap = l.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn comments_are_separated_from_doc_comments() {
        let l = lex("/// doc\n// pass-lint: allow(l1, reason=\"x\")\nfn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("pass-lint"));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::DocComment && t.text.contains("doc")));
    }

    #[test]
    fn strings_hide_their_content() {
        assert_eq!(idents("let s = \"unwrap() [0] // not code\";"), vec!["let", "s"]);
        assert_eq!(idents(r##"let s = r#"unwrap()"#;"##), vec!["let", "s"]);
        assert_eq!(idents("let b = b\"expect\";"), vec!["let", "b"]);
    }

    #[test]
    fn lifetimes_do_not_eat_the_line() {
        let toks = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(toks.contains(&"trim".to_string()));
    }

    #[test]
    fn char_literals_and_raw_idents() {
        assert_eq!(idents("let c = 'x'; let r#fn = 1;"), vec!["let", "c", "let", "fn"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
    }
}
