//! Parsing layer on top of [`crate::lexer`]: function items (with their
//! `impl` type and attached doc comment), call sites, and the block
//! structure the lock analysis needs. Same zero-dependency discipline
//! as the lexer — no `syn`, no rustc: a token-pattern parser that
//! extracts exactly the structure rules L1–L8 consume.
//!
//! Known approximations (shared with [`crate::callgraph`]):
//! * method calls are recorded by *name* only — no receiver types, so
//!   `x.apply(..)` later resolves to every workspace `fn apply`;
//! * trait objects and closures called through variables (`f()`) do not
//!   resolve at all;
//! * macro bodies contribute their input tokens, not their expansion.

use crate::lexer::{Tok, TokKind};

/// A function item with a body, as found in one file's token stream.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// The `Type` of the enclosing `impl Type` / `impl Trait for Type`
    /// block, when there is one — used for `Type::name` diagnostics.
    pub impl_type: Option<String>,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token range `[fn_idx, body_close]`, inclusive.
    pub end_idx: usize,
    /// Concatenated doc-comment text attached above the item.
    pub doc: String,
    /// Inside a `#[cfg(test)]` region or `#[test]` function.
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` when the impl type is known, else `name`.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `callee(...)` or `.callee(...)` site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    /// Token index of the callee identifier.
    pub tok_idx: usize,
    pub line: u32,
}

/// Everything the interprocedural rules need from one file.
#[derive(Debug, Default)]
pub struct FileSyms {
    pub fns: Vec<FnItem>,
    /// Call sites per function, parallel to `fns`.
    pub calls: Vec<Vec<CallSite>>,
    /// All `{`/`}` pairs, as `(open_idx, close_idx)` sorted by open.
    pub braces: Vec<(usize, usize)>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 10] =
    ["if", "match", "while", "for", "return", "loop", "fn", "let", "in", "move"];

/// Asserts panic deliberately; rules skip their argument tokens.
pub const ASSERT_MACROS: [&str; 6] =
    ["assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// Parses one lexed file into its symbol structure.
pub fn parse_file(lexed: &crate::lexer::Lexed) -> FileSyms {
    let tokens = &lexed.tokens;
    let test = test_regions(tokens);
    let impls = impl_extents(tokens);
    let mut syms = FileSyms { braces: brace_pairs(tokens), ..FileSyms::default() };
    for f in function_extents(tokens) {
        let impl_type = impls
            .iter()
            .filter(|(open, close, _)| f.fn_idx > *open && f.end_idx <= *close)
            .min_by_key(|(open, close, _)| close - open)
            .map(|(_, _, ty)| ty.clone());
        let in_test = in_regions(&test, f.fn_idx);
        let calls = call_sites(tokens, f.body_open, f.end_idx);
        syms.fns.push(FnItem { impl_type, in_test, ..f });
        syms.calls.push(calls);
    }
    syms
}

/// Finds every `fn` item with a body and its attached doc comment.
pub fn function_extents(tokens: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, "fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn` inside a type like `fn(` — not an item
        }
        // Body: the first `{` before any `;` (no body = trait method).
        let mut j = i + 2;
        let mut open = None;
        while let Some(t) = tokens.get(j) {
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    open = Some(j);
                    break;
                }
                if t.text == ";" {
                    break;
                }
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching(tokens, open, "{", "}").unwrap_or(tokens.len().saturating_sub(1));
        out.push(FnItem {
            name: name_tok.text.clone(),
            impl_type: None,
            line: tokens[i].line,
            fn_idx: i,
            body_open: open,
            end_idx: close,
            doc: attached_doc(tokens, i),
            in_test: false,
        });
    }
    out
}

/// `impl` block extents with their self type: `(open_idx, close_idx, Type)`.
fn impl_extents(tokens: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, "impl") {
            continue;
        }
        let Some(open) = find_punct_from(tokens, i, "{") else { continue };
        let Some(close) = matching(tokens, open, "{", "}") else { continue };
        // Self type: the first identifier after `for` (trait impls), or
        // the first identifier at angle-depth 0 (inherent impls).
        let header = &tokens[i + 1..open];
        let for_pos = header.iter().position(|t| t.kind == TokKind::Ident && t.text == "for");
        let scan = match for_pos {
            Some(p) => &header[p + 1..],
            None => header,
        };
        let mut angle = 0i32;
        let mut ty = None;
        for t in scan {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle -= 1,
                (TokKind::Ident, "where") if angle <= 0 => break,
                (TokKind::Ident, "dyn" | "mut" | "const") => {}
                (TokKind::Ident, _) if angle <= 0 => {
                    ty = Some(t.text.clone());
                    break;
                }
                _ => {}
            }
        }
        if let Some(ty) = ty {
            out.push((open, close, ty));
        }
    }
    out
}

/// Call sites in `(from, to]`: identifiers directly followed by `(`,
/// excluding control-flow keywords, macro invocations (`name!`), and
/// `fn` definitions.
fn call_sites(tokens: &[Tok], from: usize, to: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in from + 1..=to.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
            || !is_punct(tokens, i + 1, "(")
        {
            continue;
        }
        if i > 0 && is_ident(tokens, i - 1, "fn") {
            continue; // nested item definition
        }
        out.push(CallSite { callee: t.text.clone(), tok_idx: i, line: t.line });
    }
    out
}

/// All `{`/`}` pairs in the stream, sorted by opening index.
pub fn brace_pairs(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    out.push((open, i));
                }
            }
            _ => {}
        }
    }
    out.sort_unstable();
    out
}

/// The closing index of the innermost block containing `idx`, or
/// `tokens_len - 1` when `idx` sits outside every block.
pub fn enclosing_block_end(braces: &[(usize, usize)], idx: usize, tokens_len: usize) -> usize {
    braces
        .iter()
        .filter(|&&(open, close)| idx > open && idx < close)
        .min_by_key(|&&(open, close)| close - open)
        .map(|&(_, close)| close)
        .unwrap_or(tokens_len.saturating_sub(1))
}

/// Token-index ranges under `#[cfg(test)]` items or `#[test]` functions:
/// test code asserts by panicking, so the panic rules skip it.
pub fn test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[") {
            let is_cfg_test = is_ident(tokens, i + 2, "cfg")
                && is_punct(tokens, i + 3, "(")
                && (i + 4..i + 8).any(|j| is_ident(tokens, j, "test"));
            let is_test_attr = is_ident(tokens, i + 2, "test") && is_punct(tokens, i + 3, "]");
            if is_cfg_test || is_test_attr {
                // Skip to the end of the attribute, then of the item body.
                let attr_end = matching(tokens, i + 1, "[", "]").unwrap_or(i + 1);
                if let Some(open) = find_punct_from(tokens, attr_end, "{") {
                    let close =
                        matching(tokens, open, "{", "}").unwrap_or(tokens.len().saturating_sub(1));
                    regions.push((i, close));
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

pub fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| idx >= a && idx <= b)
}

/// Walks back from the `fn` keyword over visibility/qualifier tokens and
/// attributes, collecting contiguous doc comments.
fn attached_doc(tokens: &[Tok], fn_idx: usize) -> String {
    const QUALIFIERS: [&str; 8] =
        ["pub", "crate", "super", "self", "in", "unsafe", "async", "const"];
    let mut i = fn_idx;
    let mut docs: Vec<&str> = Vec::new();
    while i > 0 {
        let prev = &tokens[i - 1];
        match prev.kind {
            TokKind::Ident if QUALIFIERS.contains(&prev.text.as_str()) => i -= 1,
            TokKind::Punct if prev.text == ")" || prev.text == "(" => i -= 1, // pub(crate)
            TokKind::Punct if prev.text == "]" => {
                // Attribute: scan back to its `#[`.
                let mut depth = 1;
                let mut j = i - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].text.as_str() {
                        "]" if tokens[j].kind == TokKind::Punct => depth += 1,
                        "[" if tokens[j].kind == TokKind::Punct => depth -= 1,
                        _ => {}
                    }
                }
                i = j.saturating_sub(1); // the `#`
            }
            TokKind::DocComment => {
                docs.push(&prev.text);
                i -= 1;
            }
            _ => break,
        }
    }
    docs.reverse();
    docs.join("\n")
}

// ---- token helpers -------------------------------------------------------

pub fn is_ident(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

pub fn is_punct(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Index of the matching closer for the opener at `open_idx`.
pub fn matching(tokens: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

pub fn find_punct_from(tokens: &[Tok], from: usize, text: &str) -> Option<usize> {
    (from..tokens.len()).find(|&i| is_punct(tokens, i, text))
}

/// The end of the statement containing `from`: the first `;` at or
/// below the starting nesting depth, or the index where the enclosing
/// block closes. Used for temporary-guard extents.
pub fn statement_end(tokens: &[Tok], from: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            ";" if depth <= 0 => return i,
            _ => {}
        }
        if depth < 0 {
            return i;
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_extents_and_docs() {
        let lexed = lex(
            "/// Does a thing.\n/// Lock order: none.\n#[inline]\npub(crate) fn f() { body(); }\nfn g() {}",
        );
        let fns = function_extents(&lexed.tokens);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "f");
        assert!(fns[0].doc.contains("Lock order"));
        assert_eq!(fns[1].name, "g");
        assert!(fns[1].doc.is_empty());
    }

    #[test]
    fn impl_types_attach_to_methods() {
        let lexed = lex(
            "impl Engine { fn go(&self) { helper(); } }\nimpl KvStore for Routed<T> { fn apply(&self) {} }\nfn free() {}",
        );
        let syms = parse_file(&lexed);
        assert_eq!(syms.fns[0].display(), "Engine::go");
        assert_eq!(syms.fns[1].display(), "Routed::apply");
        assert_eq!(syms.fns[2].display(), "free");
    }

    #[test]
    fn call_sites_skip_keywords_and_macros() {
        let lexed =
            lex("fn f() { if cond(x) { vec![1]; g(); h.method(y); assert!(t(z)); return (1); } }");
        let syms = parse_file(&lexed);
        let names: Vec<&str> = syms.calls[0].iter().map(|c| c.callee.as_str()).collect();
        // `vec!` is a macro, `if`/`return` are keywords; `assert` is an
        // ident followed by `!` so it never looks like a call, but its
        // argument `t(z)` does.
        assert_eq!(names, vec!["cond", "g", "method", "t"]);
    }

    #[test]
    fn statement_end_respects_nesting() {
        let lexed = lex("fn f() { let a = g(h(); i()); j(); }");
        // `;` inside the g(...) parens is at depth > 0 — the statement
        // ends at the `;` after the outer `)`.
        let g_idx = lexed.tokens.iter().position(|t| t.text == "g").unwrap();
        let end = statement_end(&lexed.tokens, g_idx);
        let j_idx = lexed.tokens.iter().position(|t| t.text == "j").unwrap();
        assert!(end < j_idx);
        assert_eq!(lexed.tokens[end].text, ";");
    }

    #[test]
    fn block_structure() {
        let lexed = lex("fn f() { { inner(); } tail(); }");
        let braces = brace_pairs(&lexed.tokens);
        assert_eq!(braces.len(), 2);
        let inner_idx = lexed.tokens.iter().position(|t| t.text == "inner").unwrap();
        let end = enclosing_block_end(&braces, inner_idx, lexed.tokens.len());
        let tail_idx = lexed.tokens.iter().position(|t| t.text == "tail").unwrap();
        assert!(end < tail_idx, "inner block closes before tail()");
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let lexed = lex("fn live() { x.f(); }\n#[cfg(test)]\nmod tests { fn t() { y.f(); } }");
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let syms = parse_file(&lexed);
        assert!(!syms.fns[0].in_test);
        assert!(syms.fns[1].in_test);
    }
}
