//! The PASS invariant rules, evaluated over [`crate::lexer`] token
//! streams. Rule ids are stable (`l1`…`l5`) — they appear in waiver
//! comments and CI output:
//!
//! * **l1** — no `unwrap`/`expect`/slice-index panics in crash-safety
//!   modules. Recovery code must surface corrupt bytes as errors.
//! * **l2** — no fsync/blocking-I/O/bulk-encode calls inside the
//!   `publish_order` critical section; it serializes every committer.
//! * **l3** — shard commit locks are taken only via the ascending-order
//!   helpers; ad-hoc indexing into the lock array risks deadlock.
//! * **l4** — no wall-clock reads (`Instant::now`, `SystemTime::now`)
//!   in simulator/virtual-clock code.
//! * **l5** — every function on the commit path documents its
//!   lock-ordering position (a `Lock order` doc-comment marker).
//!
//! Waivers: `// pass-lint: allow(<rule>, reason="...")` on the finding
//! line or the line above. Waivers without a reason are themselves
//! findings; honored waivers are counted and reported.

use crate::config::{Config, RuleConfig};
use crate::lexer::{Comment, Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    /// Lint-root-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    /// `(rule, line)` of each honored waiver.
    pub waivers_honored: Vec<(String, u32)>,
}

/// A parsed `pass-lint: allow(rule, reason="…")` comment.
#[derive(Debug)]
struct Waiver {
    rule: String,
    line: u32,
    reason_ok: bool,
}

/// Matches `path` (with `/` separators) against a glob supporting `*`
/// (within a segment) and `**` (any number of segments).
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn segs(s: &str) -> Vec<&str> {
        s.split('/').filter(|p| !p.is_empty()).collect()
    }
    fn seg_match(pat: &str, seg: &str) -> bool {
        // Segment-level `*` wildcard matching.
        let (mut pi, mut si) = (0usize, 0usize);
        let (p, s): (Vec<char>, Vec<char>) = (pat.chars().collect(), seg.chars().collect());
        let (mut star, mut mark) = (None, 0usize);
        while si < s.len() {
            if pi < p.len() && (p[pi] == s[si]) {
                pi += 1;
                si += 1;
            } else if pi < p.len() && p[pi] == '*' {
                star = Some(pi);
                mark = si;
                pi += 1;
            } else if let Some(sp) = star {
                pi = sp + 1;
                mark += 1;
                si = mark;
            } else {
                return false;
            }
        }
        while pi < p.len() && p[pi] == '*' {
            pi += 1;
        }
        pi == p.len()
    }
    fn rec(pat: &[&str], path: &[&str]) -> bool {
        match (pat.first(), path.first()) {
            (None, None) => true,
            (Some(&"**"), _) => rec(&pat[1..], path) || (!path.is_empty() && rec(pat, &path[1..])),
            (Some(p), Some(s)) => seg_match(p, s) && rec(&pat[1..], &path[1..]),
            _ => false,
        }
    }
    rec(&segs(pattern), &segs(path))
}

/// Lints one file against every rule whose globs match `rel_path`.
pub fn check_file(config: &Config, rel_path: &str, lexed: &Lexed) -> FileReport {
    let mut report = FileReport::default();
    // A file outside every rule's scope is fully inert — its waiver
    // comments are not validated either (they waive nothing), which
    // keeps e.g. the linter's own ui fixtures out of a workspace run.
    if !config.rules.values().any(|r| r.files.iter().any(|g| glob_match(g, rel_path))) {
        return report;
    }
    let (waivers, waiver_findings) = parse_waivers(&lexed.comments, rel_path);
    report.findings.extend(waiver_findings);
    let skip = test_regions(&lexed.tokens);
    let fns = function_extents(&lexed.tokens);

    let mut raw: Vec<Finding> = Vec::new();
    for (rule_id, rule) in &config.rules {
        if !rule.files.iter().any(|g| glob_match(g, rel_path)) {
            continue;
        }
        let findings = match rule_id.as_str() {
            "l1" => check_l1(rel_path, lexed, &skip),
            "l2" => check_l2(rel_path, lexed, rule, &fns),
            "l3" => check_l3(rel_path, lexed, rule, &fns),
            "l4" => check_l4(rel_path, lexed, rule, &skip),
            "l5" => check_l5(rel_path, lexed, rule, &fns, &skip),
            other => vec![Finding {
                rule: other.to_string(),
                file: rel_path.to_string(),
                line: 0,
                message: format!("unknown rule `{other}` in invariants.toml"),
            }],
        };
        raw.extend(findings);
    }

    // Apply waivers: a finding is waived by a matching-rule waiver on
    // its own line or the line directly above.
    let mut honored: BTreeSet<(String, u32)> = BTreeSet::new();
    for finding in raw {
        let waived = waivers.iter().find(|w| {
            w.rule == finding.rule
                && w.reason_ok
                && (w.line == finding.line || w.line + 1 == finding.line)
        });
        match waived {
            Some(w) => {
                honored.insert((w.rule.clone(), w.line));
            }
            None => report.findings.push(finding),
        }
    }
    report.waivers_honored = honored.into_iter().collect();
    report.findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    report
}

fn parse_waivers(comments: &[Comment], file: &str) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("pass-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')).map(|inner| {
            let rule = inner.split(',').next().unwrap_or("").trim().to_string();
            let reason_ok = inner
                .split_once("reason=")
                .map(|(_, r)| r.trim().len() > 2 && r.trim().starts_with('"'))
                .unwrap_or(false);
            (rule, reason_ok)
        });
        match parsed {
            Some((rule, reason_ok)) if !rule.is_empty() => {
                if !reason_ok {
                    findings.push(Finding {
                        rule: rule.clone(),
                        file: file.to_string(),
                        line: c.line,
                        message: "waiver without a reason=\"...\" — explain or remove it"
                            .to_string(),
                    });
                }
                waivers.push(Waiver { rule, line: c.line, reason_ok });
            }
            _ => findings.push(Finding {
                rule: "waiver".to_string(),
                file: file.to_string(),
                line: c.line,
                message: format!(
                    "malformed pass-lint comment `{}` — expected `pass-lint: allow(<rule>, reason=\"...\")`",
                    c.text.trim()
                ),
            }),
        }
    }
    (waivers, findings)
}

/// Token-index ranges under `#[cfg(test)]` items or `#[test]` functions:
/// test code asserts by panicking, so l1/l4 skip it.
fn test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[") {
            let is_cfg_test = is_ident(tokens, i + 2, "cfg")
                && is_punct(tokens, i + 3, "(")
                && (i + 4..i + 8).any(|j| is_ident(tokens, j, "test"));
            let is_test_attr = is_ident(tokens, i + 2, "test") && is_punct(tokens, i + 3, "]");
            if is_cfg_test || is_test_attr {
                // Skip to the end of the attribute, then of the item body.
                let attr_end = matching(tokens, i + 1, "[", "]").unwrap_or(i + 1);
                if let Some(open) = find_punct_from(tokens, attr_end, "{") {
                    let close = matching(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
                    regions.push((i, close));
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| idx >= a && idx <= b)
}

/// A function's extent in the token stream.
#[derive(Debug)]
pub struct FnExtent {
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range `[fn_idx, body_close]`, inclusive.
    pub end_idx: usize,
    /// Concatenated doc-comment text attached above the item.
    pub doc: String,
}

/// Finds every `fn` item with a body and its attached doc comment.
pub fn function_extents(tokens: &[Tok]) -> Vec<FnExtent> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, "fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn` inside a type like `fn(` — not an item
        }
        // Body: the first `{` before any `;` (no body = trait method).
        let mut j = i + 2;
        let mut open = None;
        while let Some(t) = tokens.get(j) {
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    open = Some(j);
                    break;
                }
                if t.text == ";" {
                    break;
                }
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
        out.push(FnExtent {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            fn_idx: i,
            end_idx: close,
            doc: attached_doc(tokens, i),
        });
    }
    out
}

/// Walks back from the `fn` keyword over visibility/qualifier tokens and
/// attributes, collecting contiguous doc comments.
fn attached_doc(tokens: &[Tok], fn_idx: usize) -> String {
    const QUALIFIERS: [&str; 8] =
        ["pub", "crate", "super", "self", "in", "unsafe", "async", "const"];
    let mut i = fn_idx;
    let mut docs: Vec<&str> = Vec::new();
    while i > 0 {
        let prev = &tokens[i - 1];
        match prev.kind {
            TokKind::Ident if QUALIFIERS.contains(&prev.text.as_str()) => i -= 1,
            TokKind::Punct if prev.text == ")" || prev.text == "(" => i -= 1, // pub(crate)
            TokKind::Punct if prev.text == "]" => {
                // Attribute: scan back to its `#[`.
                let mut depth = 1;
                let mut j = i - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].text.as_str() {
                        "]" if tokens[j].kind == TokKind::Punct => depth += 1,
                        "[" if tokens[j].kind == TokKind::Punct => depth -= 1,
                        _ => {}
                    }
                }
                i = j.saturating_sub(1); // the `#`
            }
            TokKind::DocComment => {
                docs.push(&prev.text);
                i -= 1;
            }
            _ => break,
        }
    }
    docs.reverse();
    docs.join("\n")
}

// ---- L1: no panics in crash-safety modules -------------------------------

const ASSERT_MACROS: [&str; 6] =
    ["assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne"];

fn check_l1(file: &str, lexed: &Lexed, skip: &[(usize, usize)]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    let mut assert_until: Option<usize> = None;
    let mut i = 0;
    while i < tokens.len() {
        if in_regions(skip, i) {
            i += 1;
            continue;
        }
        // Asserts are *deliberate* panics; indexing inside them is the
        // assertion itself, not an accidental crash path.
        if assert_until.is_some_and(|end| i <= end) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && ASSERT_MACROS.contains(&t.text.as_str())
            && is_punct(tokens, i + 1, "!")
        {
            if let Some(open) = find_punct_from(tokens, i + 1, "(") {
                assert_until = matching(tokens, open, "(", ")");
            }
        }
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && is_punct(tokens, i - 1, ".")
            && is_punct(tokens, i + 1, "(")
        {
            findings.push(Finding {
                rule: "l1".into(),
                file: file.into(),
                line: t.line,
                message: format!(
                    "`.{}()` in a crash-safety module — corrupt bytes must surface as errors, not panics",
                    t.text
                ),
            });
        }
        // Slice/map indexing: `expr[...]` — `[` directly after an
        // identifier, `)`, or `]`. Types (`<[`), arrays (`= [`),
        // attributes (`#[`) and macro brackets (`vec![`) don't match.
        if t.kind == TokKind::Punct && t.text == "[" && i > 0 {
            let prev = &tokens[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !is_keyword_before_bracket(&prev.text),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if indexes {
                findings.push(Finding {
                    rule: "l1".into(),
                    file: file.into(),
                    line: t.line,
                    message: "slice/collection indexing in a crash-safety module — use `.get()` and return an error".into(),
                });
            }
        }
        i += 1;
    }
    findings
}

/// Idents that legitimately precede `[` without indexing.
fn is_keyword_before_bracket(text: &str) -> bool {
    matches!(text, "mut" | "dyn" | "return" | "in" | "as" | "break" | "else" | "match" | "if")
}

// ---- L2: the publish_order section stays short ---------------------------

fn check_l2(file: &str, lexed: &Lexed, rule: &RuleConfig, fns: &[FnExtent]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_ident(tokens, i, "publish_order")
            || !is_punct(tokens, i + 1, ".")
            || !is_ident(tokens, i + 2, "lock")
        {
            i += 1;
            continue;
        }
        // An unterminated section is reported at the end of its function,
        // not hunted through the rest of the file.
        let fn_end = fns
            .iter()
            .rfind(|f| i >= f.fn_idx && i <= f.end_idx)
            .map_or(tokens.len() - 1, |f| f.end_idx);
        // Guard name: `let <name> = ... publish_order.lock()`.
        let guard = (0..i)
            .rev()
            .take(8)
            .find(|&j| is_ident(tokens, j, "let"))
            .and_then(|j| tokens.get(j + 1))
            .map(|t| t.text.clone());
        let Some(guard) = guard else {
            findings.push(Finding {
                rule: "l2".into(),
                file: file.into(),
                line: tokens[i].line,
                message: "publish_order guard must be bound with `let` so its scope is explicit"
                    .into(),
            });
            i += 3;
            continue;
        };
        // Section extent: from the lock to `drop(<guard>)`.
        let mut j = i + 3;
        let mut closed = false;
        while j <= fn_end {
            if is_ident(tokens, j, "drop")
                && is_punct(tokens, j + 1, "(")
                && is_ident(tokens, j + 2, &guard)
            {
                closed = true;
                break;
            }
            let t = &tokens[j];
            if t.kind == TokKind::Ident && rule.deny.iter().any(|d| d == &t.text) {
                findings.push(Finding {
                    rule: "l2".into(),
                    file: file.into(),
                    line: t.line,
                    message: format!(
                        "`{}` inside the publish_order critical section — it serializes every committer; hoist the work outside",
                        t.text
                    ),
                });
            }
            j += 1;
        }
        if !closed {
            findings.push(Finding {
                rule: "l2".into(),
                file: file.into(),
                line: tokens[i].line,
                message: format!(
                    "publish_order section never reaches `drop({guard})` — end it explicitly"
                ),
            });
        }
        i = j + 1;
    }
    findings
}

// ---- L3: shard locks only via the ascending-order helpers ----------------

fn check_l3(file: &str, lexed: &Lexed, rule: &RuleConfig, fns: &[FnExtent]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let field = rule.triggers.first().map(String::as_str).unwrap_or("locks");
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, field) || !is_punct(tokens, i + 1, "[") {
            continue;
        }
        let owner = fns.iter().rfind(|f| i >= f.fn_idx && i <= f.end_idx);
        let sanctioned = owner.is_some_and(|f| rule.allow_in.iter().any(|a| a == &f.name));
        if !sanctioned {
            findings.push(Finding {
                rule: "l3".into(),
                file: file.into(),
                line: tokens[i].line,
                message: format!(
                    "direct `{field}[...]` access outside {:?} — shard locks must be taken through the ascending-order helpers",
                    rule.allow_in
                ),
            });
        }
    }
    findings
}

// ---- L4: no wall clock in virtual-time code ------------------------------

fn check_l4(file: &str, lexed: &Lexed, rule: &RuleConfig, skip: &[(usize, usize)]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        if in_regions(skip, i) {
            continue;
        }
        // Match `Type::method` against deny entries like "Instant::now".
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_path = is_punct(tokens, i + 1, ":")
            && is_punct(tokens, i + 2, ":")
            && tokens.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident);
        if !is_path {
            continue;
        }
        let path = format!("{}::{}", t.text, tokens[i + 3].text);
        if rule.deny.iter().any(|d| d == &path) {
            findings.push(Finding {
                rule: "l4".into(),
                file: file.into(),
                line: t.line,
                message: format!(
                    "`{path}` in virtual-clock code — simulated components must read the simulator's clock"
                ),
            });
        }
    }
    findings
}

// ---- L5: commit-path functions document their lock order -----------------

fn check_l5(
    file: &str,
    lexed: &Lexed,
    rule: &RuleConfig,
    fns: &[FnExtent],
    skip: &[(usize, usize)],
) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let marker = rule.marker.as_deref().unwrap_or("Lock order");
    let mut findings = Vec::new();
    for f in fns {
        if in_regions(skip, f.fn_idx) {
            continue;
        }
        let triggered = (f.fn_idx..=f.end_idx).any(|i| {
            tokens
                .get(i)
                .is_some_and(|t| t.kind == TokKind::Ident && rule.triggers.contains(&t.text))
        });
        if triggered && !f.doc.contains(marker) {
            findings.push(Finding {
                rule: "l5".into(),
                file: file.into(),
                line: f.line,
                message: format!(
                    "`{}` touches the commit path but its doc comment has no `{marker}` note — state which locks it takes, in which position",
                    f.name
                ),
            });
        }
    }
    findings
}

// ---- token helpers -------------------------------------------------------

fn is_ident(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn is_punct(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Index of the matching closer for the opener at `open_idx`.
fn matching(tokens: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

fn find_punct_from(tokens: &[Tok], from: usize, text: &str) -> Option<usize> {
    (from..tokens.len()).find(|&i| is_punct(tokens, i, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globs() {
        assert!(glob_match("crates/storage/src/*.rs", "crates/storage/src/wal.rs"));
        assert!(!glob_match("crates/storage/src/*.rs", "crates/storage/src/sub/x.rs"));
        assert!(glob_match("crates/**/*.rs", "crates/core/src/pass.rs"));
        assert!(glob_match("**/sim.rs", "crates/net/src/sim.rs"));
        assert!(!glob_match("crates/net/src/sim.rs", "crates/net/src/time.rs"));
    }

    #[test]
    fn fn_extents_and_docs() {
        let lexed = crate::lexer::lex(
            "/// Does a thing.\n/// Lock order: none.\n#[inline]\npub(crate) fn f() { body(); }\nfn g() {}",
        );
        let fns = function_extents(&lexed.tokens);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "f");
        assert!(fns[0].doc.contains("Lock order"));
        assert_eq!(fns[1].name, "g");
        assert!(fns[1].doc.is_empty());
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let lexed = crate::lexer::lex(
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }",
        );
        let findings = check_l1("f.rs", &lexed, &test_regions(&lexed.tokens));
        assert_eq!(findings.len(), 1, "only the live unwrap is flagged: {findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn asserts_do_not_count_as_indexing() {
        let lexed =
            crate::lexer::lex("fn f(w: &[u8]) { debug_assert!(w[0] < w[1]); let x = w[0]; }");
        let findings = check_l1("f.rs", &lexed, &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }
}
