//! The per-file PASS invariant rules, evaluated over [`crate::lexer`]
//! token streams and the [`crate::parse`] symbol layer. Rule ids are
//! stable — they appear in waiver comments and CI output:
//!
//! * **l1** — no `unwrap`/`expect`/slice-index panics in crash-safety
//!   modules. Recovery code must surface corrupt bytes as errors.
//! * **l2** — no fsync/blocking-I/O/bulk-encode calls inside the
//!   `publish_order` critical section; it serializes every committer.
//! * **l3** — shard commit locks are taken only via the ascending-order
//!   helpers; ad-hoc indexing into the lock array risks deadlock.
//! * **l4** — no wall-clock reads (`Instant::now`, `SystemTime::now`)
//!   in simulator/virtual-clock code.
//! * **l5** — every function on the commit path documents its
//!   lock-ordering position (a `Lock order` doc-comment marker).
//! * **l8** — crash-path modules must not silently drop I/O errors:
//!   `let _ = ...`, `.ok()` / `.unwrap_or*()` on a `Result`-returning
//!   I/O call, and short-write-prone bare `write(..)?` are findings.
//!
//! The interprocedural rules live elsewhere: **l6** (publish-order
//! reachability) in [`crate::callgraph`], **l7** (lock-order graph) in
//! [`crate::locks`]. Waiver syntax is shared by all rules:
//! `// pass-lint: allow(<rule>, reason="...")` on the finding line or
//! the line above. Waivers without a reason are themselves findings;
//! honored waivers are counted and reported, and `--audit-waivers`
//! turns waivers that suppress nothing into `stale-waiver` findings.

use crate::config::{Config, RuleConfig};
use crate::lexer::{Comment, Lexed, Tok, TokKind};
use crate::parse::{
    find_punct_from, in_regions, is_ident, is_punct, matching, statement_end, FileSyms, FnItem,
    ASSERT_MACROS,
};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    /// Lint-root-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A parsed `pass-lint: allow(rule, reason="…")` comment.
#[derive(Debug)]
pub struct Waiver {
    pub rule: String,
    pub line: u32,
    pub reason_ok: bool,
}

/// Matches `path` (with `/` separators) against a glob supporting `*`
/// (within a segment) and `**` (any number of segments).
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn segs(s: &str) -> Vec<&str> {
        s.split('/').filter(|p| !p.is_empty()).collect()
    }
    fn seg_match(pat: &str, seg: &str) -> bool {
        // Segment-level `*` wildcard matching.
        let (mut pi, mut si) = (0usize, 0usize);
        let (p, s): (Vec<char>, Vec<char>) = (pat.chars().collect(), seg.chars().collect());
        let (mut star, mut mark) = (None, 0usize);
        while si < s.len() {
            if pi < p.len() && (p[pi] == s[si]) {
                pi += 1;
                si += 1;
            } else if pi < p.len() && p[pi] == '*' {
                star = Some(pi);
                mark = si;
                pi += 1;
            } else if let Some(sp) = star {
                pi = sp + 1;
                mark += 1;
                si = mark;
            } else {
                return false;
            }
        }
        while pi < p.len() && p[pi] == '*' {
            pi += 1;
        }
        pi == p.len()
    }
    fn rec(pat: &[&str], path: &[&str]) -> bool {
        match (pat.first(), path.first()) {
            (None, None) => true,
            (Some(&"**"), _) => rec(&pat[1..], path) || (!path.is_empty() && rec(pat, &path[1..])),
            (Some(p), Some(s)) => seg_match(p, s) && rec(&pat[1..], &path[1..]),
            _ => false,
        }
    }
    rec(&segs(pattern), &segs(path))
}

/// Runs every *per-file* rule whose globs match `rel_path`, returning
/// raw (un-waived) findings. Waiver application happens in
/// [`crate::run`], once, over per-file and workspace findings alike.
pub fn check_file(config: &Config, rel_path: &str, lexed: &Lexed, syms: &FileSyms) -> Vec<Finding> {
    let skip = crate::parse::test_regions(&lexed.tokens);
    let mut raw: Vec<Finding> = Vec::new();
    for (rule_id, rule) in &config.rules {
        if !rule.files.iter().any(|g| glob_match(g, rel_path)) {
            continue;
        }
        let findings = match rule_id.as_str() {
            "l1" => check_l1(rel_path, lexed, &skip),
            "l2" => check_l2(rel_path, lexed, rule, &syms.fns),
            "l3" => check_l3(rel_path, lexed, rule, &syms.fns),
            "l4" => check_l4(rel_path, lexed, rule, &skip),
            "l5" => check_l5(rel_path, lexed, rule, &syms.fns, &skip),
            "l8" => check_l8(rel_path, lexed, rule, &skip),
            // Workspace-level rules: handled once per run, not per file.
            "l6" | "l7" => Vec::new(),
            other => vec![Finding {
                rule: other.to_string(),
                file: rel_path.to_string(),
                line: 0,
                message: format!("unknown rule `{other}` in invariants.toml"),
            }],
        };
        raw.extend(findings);
    }
    raw
}

/// Extracts waiver comments. Malformed or reason-less waivers come back
/// as findings (they are never themselves waivable).
pub fn parse_waivers(comments: &[Comment], file: &str) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("pass-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')).map(|inner| {
            let rule = inner.split(',').next().unwrap_or("").trim().to_string();
            let reason_ok = inner
                .split_once("reason=")
                .map(|(_, r)| r.trim().len() > 2 && r.trim().starts_with('"'))
                .unwrap_or(false);
            (rule, reason_ok)
        });
        match parsed {
            Some((rule, reason_ok)) if !rule.is_empty() => {
                if !reason_ok {
                    findings.push(Finding {
                        rule: rule.clone(),
                        file: file.to_string(),
                        line: c.line,
                        message: "waiver without a reason=\"...\" — explain or remove it"
                            .to_string(),
                    });
                }
                waivers.push(Waiver { rule, line: c.line, reason_ok });
            }
            _ => findings.push(Finding {
                rule: "waiver".to_string(),
                file: file.to_string(),
                line: c.line,
                message: format!(
                    "malformed pass-lint comment `{}` — expected `pass-lint: allow(<rule>, reason=\"...\")`",
                    c.text.trim()
                ),
            }),
        }
    }
    (waivers, findings)
}

// ---- L1: no panics in crash-safety modules -------------------------------

fn check_l1(file: &str, lexed: &Lexed, skip: &[(usize, usize)]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    let mut assert_until: Option<usize> = None;
    let mut i = 0;
    while i < tokens.len() {
        if in_regions(skip, i) {
            i += 1;
            continue;
        }
        // Asserts are *deliberate* panics; indexing inside them is the
        // assertion itself, not an accidental crash path.
        if assert_until.is_some_and(|end| i <= end) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && ASSERT_MACROS.contains(&t.text.as_str())
            && is_punct(tokens, i + 1, "!")
        {
            if let Some(open) = find_punct_from(tokens, i + 1, "(") {
                assert_until = matching(tokens, open, "(", ")");
            }
        }
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && is_punct(tokens, i - 1, ".")
            && is_punct(tokens, i + 1, "(")
        {
            findings.push(Finding {
                rule: "l1".into(),
                file: file.into(),
                line: t.line,
                message: format!(
                    "`.{}()` in a crash-safety module — corrupt bytes must surface as errors, not panics",
                    t.text
                ),
            });
        }
        // Slice/map indexing: `expr[...]` — `[` directly after an
        // identifier, `)`, or `]`. Types (`<[`), arrays (`= [`),
        // attributes (`#[`) and macro brackets (`vec![`) don't match.
        if t.kind == TokKind::Punct && t.text == "[" && i > 0 {
            let prev = &tokens[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !is_keyword_before_bracket(&prev.text),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if indexes {
                findings.push(Finding {
                    rule: "l1".into(),
                    file: file.into(),
                    line: t.line,
                    message: "slice/collection indexing in a crash-safety module — use `.get()` and return an error".into(),
                });
            }
        }
        i += 1;
    }
    findings
}

/// Idents that legitimately precede `[` without indexing.
fn is_keyword_before_bracket(text: &str) -> bool {
    matches!(text, "mut" | "dyn" | "return" | "in" | "as" | "break" | "else" | "match" | "if")
}

// ---- L2: the publish_order section stays short ---------------------------

/// Finds each `publish_order.lock()` critical section in the token
/// stream: `(lock site index, guard name, section end index)`. The end
/// is the matching `drop(<guard>)`, or the end of the owning function
/// when the section is never explicitly closed (`closed = false`).
/// Shared by the lexical L2 and the interprocedural L6.
pub fn publish_sections(tokens: &[Tok], fns: &[FnItem]) -> Vec<PublishSection> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_ident(tokens, i, "publish_order")
            || !is_punct(tokens, i + 1, ".")
            || !is_ident(tokens, i + 2, "lock")
        {
            i += 1;
            continue;
        }
        // An unterminated section is capped at the end of its function,
        // not hunted through the rest of the file.
        let owner = fns.iter().rfind(|f| i >= f.fn_idx && i <= f.end_idx);
        let fn_end = owner.map_or(tokens.len() - 1, |f| f.end_idx);
        let in_test = owner.is_some_and(|f| f.in_test);
        // Guard name: `let <name> = ... publish_order.lock()`.
        let guard = (0..i)
            .rev()
            .take(8)
            .find(|&j| is_ident(tokens, j, "let"))
            .and_then(|j| tokens.get(j + 1))
            .map(|t| t.text.clone());
        let mut end = fn_end;
        let mut closed = false;
        if let Some(guard_name) = &guard {
            let mut j = i + 3;
            while j <= fn_end {
                if is_ident(tokens, j, "drop")
                    && is_punct(tokens, j + 1, "(")
                    && is_ident(tokens, j + 2, guard_name)
                {
                    end = j;
                    closed = true;
                    break;
                }
                j += 1;
            }
        }
        out.push(PublishSection { lock_idx: i, line: tokens[i].line, guard, end, closed, in_test });
        i = end + 1;
    }
    out
}

/// One `publish_order` critical section (see [`publish_sections`]).
#[derive(Debug)]
pub struct PublishSection {
    /// Token index of the `publish_order` identifier.
    pub lock_idx: usize,
    pub line: u32,
    /// `let` binding name of the guard, when bound.
    pub guard: Option<String>,
    /// Last token index inside the section (the `drop` call, or the
    /// function end when unterminated).
    pub end: usize,
    pub closed: bool,
    /// The section sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

fn check_l2(file: &str, lexed: &Lexed, rule: &RuleConfig, fns: &[FnItem]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    for section in publish_sections(tokens, fns) {
        let Some(guard) = &section.guard else {
            findings.push(Finding {
                rule: "l2".into(),
                file: file.into(),
                line: section.line,
                message: "publish_order guard must be bound with `let` so its scope is explicit"
                    .into(),
            });
            continue;
        };
        for t in tokens.iter().take(section.end + 1).skip(section.lock_idx + 3) {
            if t.kind == TokKind::Ident && rule.deny.iter().any(|d| d == &t.text) {
                findings.push(Finding {
                    rule: "l2".into(),
                    file: file.into(),
                    line: t.line,
                    message: format!(
                        "`{}` inside the publish_order critical section — it serializes every committer; hoist the work outside",
                        t.text
                    ),
                });
            }
        }
        if !section.closed {
            findings.push(Finding {
                rule: "l2".into(),
                file: file.into(),
                line: section.line,
                message: format!(
                    "publish_order section never reaches `drop({guard})` — end it explicitly"
                ),
            });
        }
    }
    findings
}

// ---- L3: shard locks only via the ascending-order helpers ----------------

fn check_l3(file: &str, lexed: &Lexed, rule: &RuleConfig, fns: &[FnItem]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let field = rule.triggers.first().map(String::as_str).unwrap_or("locks");
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, field) || !is_punct(tokens, i + 1, "[") {
            continue;
        }
        let owner = fns.iter().rfind(|f| i >= f.fn_idx && i <= f.end_idx);
        let sanctioned = owner.is_some_and(|f| rule.allow_in.iter().any(|a| a == &f.name));
        if !sanctioned {
            findings.push(Finding {
                rule: "l3".into(),
                file: file.into(),
                line: tokens[i].line,
                message: format!(
                    "direct `{field}[...]` access outside {:?} — shard locks must be taken through the ascending-order helpers",
                    rule.allow_in
                ),
            });
        }
    }
    findings
}

// ---- L4: no wall clock in virtual-time code ------------------------------

fn check_l4(file: &str, lexed: &Lexed, rule: &RuleConfig, skip: &[(usize, usize)]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        if in_regions(skip, i) {
            continue;
        }
        // Match `Type::method` against deny entries like "Instant::now".
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_path = is_punct(tokens, i + 1, ":")
            && is_punct(tokens, i + 2, ":")
            && tokens.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident);
        if !is_path {
            continue;
        }
        let path = format!("{}::{}", t.text, tokens[i + 3].text);
        if rule.deny.iter().any(|d| d == &path) {
            findings.push(Finding {
                rule: "l4".into(),
                file: file.into(),
                line: t.line,
                message: format!(
                    "`{path}` in virtual-clock code — simulated components must read the simulator's clock"
                ),
            });
        }
    }
    findings
}

// ---- L5: commit-path functions document their lock order -----------------

fn check_l5(
    file: &str,
    lexed: &Lexed,
    rule: &RuleConfig,
    fns: &[FnItem],
    skip: &[(usize, usize)],
) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let marker = rule.marker.as_deref().unwrap_or("Lock order");
    let mut findings = Vec::new();
    for f in fns {
        if f.in_test || in_regions(skip, f.fn_idx) {
            continue;
        }
        let triggered = (f.fn_idx..=f.end_idx).any(|i| {
            tokens
                .get(i)
                .is_some_and(|t| t.kind == TokKind::Ident && rule.triggers.contains(&t.text))
        });
        if triggered && !f.doc.contains(marker) {
            findings.push(Finding {
                rule: "l5".into(),
                file: file.into(),
                line: f.line,
                message: format!(
                    "`{}` touches the commit path but its doc comment has no `{marker}` note — state which locks it takes, in which position",
                    f.name
                ),
            });
        }
    }
    findings
}

// ---- L8: crash paths must not silently drop I/O errors -------------------

/// `.method()` chains that discard a `Result`'s error silently.
const DROP_CHAIN: [&str; 3] = ["ok", "unwrap_or_default", "unwrap_or"];

fn check_l8(file: &str, lexed: &Lexed, rule: &RuleConfig, skip: &[(usize, usize)]) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if in_regions(skip, i) {
            i += 1;
            continue;
        }
        // Pattern A: `let _ = <stmt containing an I/O call>;` — the
        // classic silent drop. Reported once per statement, at the
        // first denied call it contains.
        if is_ident(tokens, i, "let")
            && tokens.get(i + 1).is_some_and(|t| t.text == "_" && t.kind == TokKind::Ident)
            && is_punct(tokens, i + 2, "=")
        {
            let end = statement_end(tokens, i + 3);
            if let Some((name, line)) = first_denied_call(tokens, i + 3, end, &rule.deny) {
                findings.push(Finding {
                    rule: "l8".into(),
                    file: file.into(),
                    line,
                    message: format!(
                        "`let _ =` discards the `{name}` result — a crash-path I/O error must be handled or propagated"
                    ),
                });
            }
            i = end + 1;
            continue;
        }
        // Patterns B/C/D anchor on the denied call itself.
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && rule.deny.iter().any(|d| d == &t.text)
            && is_punct(tokens, i + 1, "(")
            && !(i >= 1 && is_ident(tokens, i - 1, "fn"))
        {
            if let Some(close) = matching(tokens, i + 1, "(", ")") {
                // B/C: `io_call(..).ok()` / `.unwrap_or_default()` /
                // `.unwrap_or(..)` — converts the error away silently.
                if is_punct(tokens, close + 1, ".")
                    && tokens.get(close + 2).is_some_and(|m| {
                        m.kind == TokKind::Ident && DROP_CHAIN.contains(&m.text.as_str())
                    })
                    && is_punct(tokens, close + 3, "(")
                {
                    findings.push(Finding {
                        rule: "l8".into(),
                        file: file.into(),
                        line: t.line,
                        message: format!(
                            "`.{}()` on the `{}` result silently drops the I/O error — crash-path errors must be handled or propagated",
                            tokens[close + 2].text, t.text
                        ),
                    });
                }
                // D: bare `write(..)?` — propagates the error but drops
                // the *count*: a short write is silent data loss on the
                // crash path. Only `write` is short-write-prone.
                if t.text == "write"
                    && i >= 1
                    && is_punct(tokens, i - 1, ".")
                    && is_punct(tokens, close + 1, "?")
                    && !statement_binds_result(tokens, i)
                {
                    findings.push(Finding {
                        rule: "l8".into(),
                        file: file.into(),
                        line: t.line,
                        message: "`write(..)?` ignores the bytes-written count — a short write is silent truncation; use `write_all` or check the returned length".into(),
                    });
                }
            }
        }
        i += 1;
    }
    findings
}

/// First call to a denied name in `[from, to]`, as `(name, line)`.
fn first_denied_call(
    tokens: &[Tok],
    from: usize,
    to: usize,
    deny: &[String],
) -> Option<(String, u32)> {
    for i in from..=to.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && deny.iter().any(|d| d == &t.text)
            && is_punct(tokens, i + 1, "(")
        {
            return Some((t.text.clone(), t.line));
        }
    }
    None
}

/// Whether the statement containing `site` binds its value to a named
/// place (`let name = ...` with `name != _`) — in which case the caller
/// is presumed to inspect the result.
fn statement_binds_result(tokens: &[Tok], site: usize) -> bool {
    let mut j = site;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return false;
        }
        if t.kind == TokKind::Ident && t.text == "let" {
            return tokens.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident && n.text != "_");
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_file, test_regions};

    #[test]
    fn globs() {
        assert!(glob_match("crates/storage/src/*.rs", "crates/storage/src/wal.rs"));
        assert!(!glob_match("crates/storage/src/*.rs", "crates/storage/src/sub/x.rs"));
        assert!(glob_match("crates/**/*.rs", "crates/core/src/pass.rs"));
        assert!(glob_match("**/sim.rs", "crates/net/src/sim.rs"));
        assert!(!glob_match("crates/net/src/sim.rs", "crates/net/src/time.rs"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let lexed = crate::lexer::lex(
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }",
        );
        let findings = check_l1("f.rs", &lexed, &test_regions(&lexed.tokens));
        assert_eq!(findings.len(), 1, "only the live unwrap is flagged: {findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn asserts_do_not_count_as_indexing() {
        let lexed =
            crate::lexer::lex("fn f(w: &[u8]) { debug_assert!(w[0] < w[1]); let x = w[0]; }");
        let findings = check_l1("f.rs", &lexed, &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn publish_section_extents() {
        let lexed = crate::lexer::lex(
            "fn good(&self) { let order = self.publish_order.lock(); work(); drop(order); after(); }\n\
             fn bad(&self) { let order = self.publish_order.lock(); work(); }",
        );
        let syms = parse_file(&lexed);
        let sections = publish_sections(&lexed.tokens, &syms.fns);
        assert_eq!(sections.len(), 2);
        assert!(sections[0].closed);
        let after_idx = lexed.tokens.iter().position(|t| t.text == "after").unwrap();
        assert!(sections[0].end < after_idx, "section ends at drop(order)");
        assert!(!sections[1].closed);
    }

    fn l8(src: &str, deny: &[&str]) -> Vec<Finding> {
        let lexed = crate::lexer::lex(src);
        let rule = RuleConfig {
            deny: deny.iter().map(|s| s.to_string()).collect(),
            ..RuleConfig::default()
        };
        check_l8("f.rs", &lexed, &rule, &test_regions(&lexed.tokens))
    }

    #[test]
    fn l8_let_underscore_drop() {
        let findings = l8("fn f(&mut self) { let _ = self.file.flush(); }", &["flush"]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`let _ =` discards the `flush` result"));
        // A named binding is fine — the caller can inspect it.
        assert!(
            l8("fn f(&mut self) { let r = self.file.flush(); r.unwrap(); }", &["flush"]).is_empty()
        );
    }

    #[test]
    fn l8_ok_and_unwrap_or_chains() {
        let findings = l8("fn f(&mut self) { self.file.sync_all().ok(); }", &["sync_all", "flush"]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`.ok()` on the `sync_all` result"));
        let findings = l8("fn f(&mut self) { w.write(buf).unwrap_or_default(); }", &["write"]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        // `?` propagation is the sanctioned pattern.
        assert!(
            l8("fn f(&mut self) -> R { self.file.sync_all()?; Ok(()) }", &["sync_all"]).is_empty()
        );
    }

    #[test]
    fn l8_short_write() {
        let findings = l8("fn f(w: &mut W) -> R { w.write(&buf)?; Ok(()) }", &["write"]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("short write"));
        assert!(l8("fn f(w: &mut W) -> R { let n = w.write(&buf)?; Ok(n) }", &["write"]).is_empty());
        assert!(l8("fn f(w: &mut W) -> R { w.write_all(&buf)?; Ok(()) }", &["write"]).is_empty());
    }

    #[test]
    fn l8_skips_test_code() {
        let findings = l8(
            "#[cfg(test)]\nmod t { fn f(&mut self) { let _ = self.file.flush(); } }",
            &["flush"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
