//! Machine-readable output: a versioned JSON report (pinned by a
//! snapshot test) and SARIF 2.1.0 for GitHub code-scanning
//! annotations. Hand-rolled serialization — the linter has no serde.

use crate::RunReport;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The pass-lint JSON report, schema version 1:
///
/// ```json
/// {
///   "schema": 1,
///   "files_checked": N,
///   "findings": [{"rule": "...", "file": "...", "line": N, "message": "..."}],
///   "waivers": [{"rule": "...", "file": "...", "line": N}],
///   "summary": {"findings": N, "waivers": N}
/// }
/// ```
///
/// Stale-waiver findings (from `--audit-waivers`) appear in `findings`
/// under the rule id `stale-waiver`. Changing any field name or shape
/// requires bumping `schema` and the ui snapshot.
pub fn to_json(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    let _ = writeln!(out, "  \"files_checked\": {},", report.files_checked);
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 < report.findings.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{sep}",
            esc(&f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message)
        );
    }
    out.push_str(if report.findings.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"waivers\": [");
    for (i, (file, rule, line)) in report.waivers.iter().enumerate() {
        let sep = if i + 1 < report.waivers.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {line}}}{sep}",
            esc(rule),
            esc(file)
        );
    }
    out.push_str(if report.waivers.is_empty() { "],\n" } else { "\n  ],\n" });
    let _ = writeln!(
        out,
        "  \"summary\": {{\"findings\": {}, \"waivers\": {}}}",
        report.findings.len(),
        report.waivers.len()
    );
    out.push_str("}\n");
    out
}

/// Rule metadata for the SARIF `tool.driver.rules` array.
const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("l1", "no unwrap/expect/slice-index panics in crash-safety modules"),
    ("l2", "no fsync/blocking-I/O/bulk-encode calls in the publish_order section"),
    ("l3", "shard locks only via the ascending-order helpers"),
    ("l4", "no wall-clock reads in simulator/virtual-clock code"),
    ("l5", "commit-path functions document their lock-ordering position"),
    ("l6", "no fsync-class call reachable from the publish_order section through the call graph"),
    ("l7", "the held-while-acquiring graph over lock domains is acyclic and follows the declared order"),
    ("l8", "crash-path modules must not silently drop I/O errors"),
    ("waiver", "malformed pass-lint waiver comment"),
    ("stale-waiver", "waiver no longer suppresses any finding"),
];

/// Minimal SARIF 2.1.0: one run, one result per finding, `error` level
/// (the lint is deny-by-default — anything surviving waivers fails CI).
pub fn to_sarif(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"pass-lint\",\n");
    out.push_str("          \"informationUri\": \"tools/pass-lint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        let sep = if i + 1 < RULE_DESCRIPTIONS.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{sep}",
            esc(desc)
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 < report.findings.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]\n        }}{sep}",
            esc(&f.rule),
            esc(&f.message),
            esc(&f.file),
            f.line.max(1)
        );
    }
    out.push_str(if report.findings.is_empty() { "]\n" } else { "\n      ]\n" });
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn sample() -> RunReport {
        RunReport {
            files_checked: 2,
            findings: vec![Finding {
                rule: "l8".into(),
                file: "crates/storage/src/wal.rs".into(),
                line: 7,
                message: "`.ok()` silently drops the `flush` result — \"quoted\"".into(),
            }],
            waivers: vec![("crates/core/src/shard.rs".into(), "l1".into(), 79)],
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = to_json(&sample());
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains(r#"\"quoted\""#), "inner quotes escaped: {json}");
        assert!(json.contains("\"line\": 79"));
        // Crude structural check: balanced braces/brackets.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn sarif_lists_rules_and_results() {
        let sarif = to_sarif(&sample());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"l8\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("\"id\": \"l6\""));
        let opens = sarif.matches(['{', '[']).count();
        let closes = sarif.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{sarif}");
    }

    #[test]
    fn empty_report_stays_valid() {
        let report = RunReport::default();
        let json = to_json(&report);
        assert!(json.contains("\"findings\": [],"));
        let sarif = to_sarif(&report);
        assert!(sarif.contains("\"results\": []"));
    }
}
