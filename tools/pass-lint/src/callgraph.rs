//! The workspace call graph for the interprocedural rules (L6/L7).
//!
//! Resolution is deliberately simple — and its approximations are part
//! of the rule contract (see README "Checked invariants"):
//!
//! * **name-based**: a call `x.apply(..)` resolves to every function
//!   item named `apply` the caller could plausibly reach — no receiver
//!   types, no trait-object resolution;
//! * **crate-direction-scoped**: candidates are restricted to the
//!   caller's crate and its (transitive) `path`-dependency crates, read
//!   from the workspace `Cargo.toml`s, so `crates/storage` code never
//!   "calls into" `crates/core`;
//! * **generic names are ignored**: `[callgraph] ignore_calls` in
//!   `invariants.toml` drops names like `get`/`insert`/`clone` whose
//!   name-based resolution would wire unrelated types together;
//! * `#[cfg(test)]` functions are neither callers nor callees.
//!
//! Over-approximation is acceptable for deny rules (extra candidates
//! can only create findings a human reviews once), under-approximation
//! is the price of zero dependencies — the lexical rules L1–L5 still
//! backstop the directly-named sites.

use crate::lexer::Lexed;
use crate::parse::{self, FileSyms};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// A function in the workspace: `(file index, fn index within file)`.
pub type FnRef = (usize, usize);

/// One file in the call-graph corpus.
pub struct WsFile<'a> {
    /// Lint-root-relative path with `/` separators.
    pub path: &'a str,
    pub lexed: &'a Lexed,
    pub syms: FileSyms,
    /// Index into [`Workspace::crates`], `None` when the file sits
    /// outside every discovered crate (fixture trees, stray files).
    pub krate: Option<usize>,
}

/// A crate discovered from a `Cargo.toml`: its root directory and the
/// transitive closure of its path dependencies.
#[derive(Debug)]
pub struct CrateInfo {
    pub name: String,
    /// Lint-root-relative directory, `/`-separated, no trailing slash.
    pub dir: String,
    /// Transitive path-dependency crate indices (not including self).
    pub deps: BTreeSet<usize>,
}

/// The parsed workspace: files, crates, and the function name index.
pub struct Workspace<'a> {
    pub files: Vec<WsFile<'a>>,
    pub crates: Vec<CrateInfo>,
    /// fn name → every non-test definition site.
    fn_index: BTreeMap<String, Vec<FnRef>>,
    ignore_calls: BTreeSet<String>,
}

impl<'a> Workspace<'a> {
    /// Builds the graph corpus from the already-lexed files in call-graph
    /// scope. `root` is scanned for `Cargo.toml`s to recover the crate
    /// dependency direction; a tree without any (ui fixtures) becomes a
    /// single anonymous crate in which every name resolves.
    pub fn build(
        root: &Path,
        files: impl IntoIterator<Item = (&'a str, &'a Lexed)>,
        ignore_calls: &[String],
    ) -> Workspace<'a> {
        let crates = discover_crates(root);
        let mut ws = Workspace {
            files: Vec::new(),
            crates,
            fn_index: BTreeMap::new(),
            ignore_calls: ignore_calls.iter().cloned().collect(),
        };
        for (path, lexed) in files {
            let syms = parse::parse_file(lexed);
            let krate = ws
                .crates
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    // A root-level manifest (empty dir) owns everything
                    // not claimed by a deeper crate.
                    c.dir.is_empty()
                        || (path.starts_with(&c.dir) && path[c.dir.len()..].starts_with('/'))
                })
                .max_by_key(|(_, c)| c.dir.len())
                .map(|(i, _)| i);
            let file_idx = ws.files.len();
            for (fn_idx, f) in syms.fns.iter().enumerate() {
                if !f.in_test {
                    ws.fn_index.entry(f.name.clone()).or_default().push((file_idx, fn_idx));
                }
            }
            ws.files.push(WsFile { path, lexed, syms, krate });
        }
        ws
    }

    /// Candidate definitions for a call to `callee` made from
    /// `caller_file`: same crate or a transitive dependency; anonymous
    /// files resolve only within the anonymous pool.
    pub fn resolve(&self, caller_file: usize, callee: &str) -> Vec<FnRef> {
        if self.ignore_calls.contains(callee) {
            return Vec::new();
        }
        let Some(candidates) = self.fn_index.get(callee) else {
            return Vec::new();
        };
        let caller_crate = self.files[caller_file].krate;
        candidates
            .iter()
            .copied()
            .filter(|&(file, _)| {
                let callee_crate = self.files[file].krate;
                match (caller_crate, callee_crate) {
                    (None, None) => true,
                    (Some(from), Some(to)) => from == to || self.crates[from].deps.contains(&to),
                    _ => false,
                }
            })
            .collect()
    }

    /// `Type::name` / `name` for diagnostics.
    pub fn display(&self, (file, idx): FnRef) -> String {
        self.files[file].syms.fns[idx].display()
    }

    /// `(path, line)` of a function's definition.
    pub fn site(&self, (file, idx): FnRef) -> (&str, u32) {
        (self.files[file].path, self.files[file].syms.fns[idx].line)
    }
}

/// L6: no fsync-class call reachable from inside a `publish_order`
/// critical section through the call graph. The lexical L2 already
/// flags *directly named* denied identifiers inside the section; L6
/// follows resolved calls any number of hops and reports the entry call
/// with the full witness chain. Calls whose own name is denied are left
/// to L2 so the two rules never double-report one site.
pub fn check_l6(
    rule: &crate::config::RuleConfig,
    ws: &Workspace<'_>,
) -> Vec<crate::rules::Finding> {
    use crate::rules::{glob_match, publish_sections, Finding};

    /// Why a function is considered a sink.
    enum Sink {
        /// It calls a denied name itself.
        Direct { name: String, line: u32 },
        /// It calls a function that is a sink.
        Via(FnRef),
    }
    // Seed: functions that call a denied name directly.
    let mut sinks: BTreeMap<FnRef, Sink> = BTreeMap::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        for (fn_idx, f) in file.syms.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            if let Some(call) =
                file.syms.calls[fn_idx].iter().find(|c| rule.deny.iter().any(|d| d == &c.callee))
            {
                sinks.insert(
                    (file_idx, fn_idx),
                    Sink::Direct { name: call.callee.clone(), line: call.line },
                );
            }
        }
    }
    // Fixpoint: propagate sink-ness backwards along resolved calls.
    loop {
        let mut grew = false;
        for (file_idx, file) in ws.files.iter().enumerate() {
            for (fn_idx, f) in file.syms.fns.iter().enumerate() {
                if f.in_test || sinks.contains_key(&(file_idx, fn_idx)) {
                    continue;
                }
                'calls: for call in &file.syms.calls[fn_idx] {
                    for callee in ws.resolve(file_idx, &call.callee) {
                        if callee != (file_idx, fn_idx) && sinks.contains_key(&callee) {
                            sinks.insert((file_idx, fn_idx), Sink::Via(callee));
                            grew = true;
                            break 'calls;
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Witness text: follow the Via chain down to the denied call.
    let describe = |start: FnRef| -> String {
        let mut names = vec![format!("`{}`", ws.display(start))];
        let mut cur = start;
        let mut hops = 0;
        loop {
            match sinks.get(&cur) {
                Some(Sink::Via(next)) if hops < 16 => {
                    cur = *next;
                    names.push(format!("`{}`", ws.display(cur)));
                    hops += 1;
                }
                Some(Sink::Direct { name, line }) => {
                    let (f, _) = ws.site(cur);
                    return format!("reaches `{name}` ({f}:{line}) via {}", names.join(" -> "));
                }
                _ => return format!("reaches a denied call via {}", names.join(" -> ")),
            }
        }
    };
    // Flag resolved calls made inside each publish_order section of the
    // rule's files whose target is (or reaches) a sink.
    let mut findings = Vec::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        if !rule.files.iter().any(|g| glob_match(g, file.path)) {
            continue;
        }
        for section in publish_sections(&file.lexed.tokens, &file.syms.fns) {
            if section.in_test {
                continue;
            }
            let Some(fn_pos) = file
                .syms
                .fns
                .iter()
                .rposition(|f| section.lock_idx >= f.fn_idx && section.lock_idx <= f.end_idx)
            else {
                continue;
            };
            for call in &file.syms.calls[fn_pos] {
                // Strictly inside: after the `.lock(` tokens, before the
                // terminating `drop(guard)` (which sits at `section.end`).
                if call.tok_idx <= section.lock_idx + 2 || call.tok_idx >= section.end {
                    continue;
                }
                if rule.deny.iter().any(|d| d == &call.callee) {
                    continue; // L2's finding, not ours
                }
                let Some(sink) =
                    ws.resolve(file_idx, &call.callee).into_iter().find(|c| sinks.contains_key(c))
                else {
                    continue;
                };
                findings.push(Finding {
                    rule: "l6".into(),
                    file: file.path.to_string(),
                    line: call.line,
                    message: format!(
                        "calling `{}` inside the publish_order critical section {} — blocking I/O serializes every committer; hoist it outside the section",
                        call.callee,
                        describe(sink)
                    ),
                });
            }
        }
    }
    findings
}

/// Finds every `Cargo.toml` under `root` (skipping `target/` and hidden
/// directories) and extracts `[package] name` plus `path = "..."`
/// dependencies, then closes the dependency relation transitively.
/// IO errors are treated as "no crate there" — the graph degrades to
/// the anonymous pool rather than failing the lint run.
fn discover_crates(root: &Path) -> Vec<CrateInfo> {
    let mut manifests = Vec::new();
    collect_manifests(root, root, &mut manifests);
    manifests.sort();
    let mut crates: Vec<(CrateInfo, Vec<String>)> = Vec::new();
    for rel in &manifests {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else { continue };
        let dir = match rel.rfind('/') {
            Some(cut) => rel[..cut].to_string(),
            None => String::new(), // workspace-root manifest
        };
        if let Some((name, dep_paths)) = parse_manifest(&src) {
            let dep_dirs = dep_paths.iter().map(|p| normalize(&dir, p)).collect();
            crates.push((CrateInfo { name, dir, deps: BTreeSet::new() }, dep_dirs));
        }
    }
    // Dep paths → crate indices, then transitive closure.
    let dir_to_idx: BTreeMap<String, usize> =
        crates.iter().enumerate().map(|(i, (c, _))| (c.dir.clone(), i)).collect();
    let direct: Vec<BTreeSet<usize>> = crates
        .iter()
        .map(|(_, dep_dirs)| dep_dirs.iter().filter_map(|d| dir_to_idx.get(d).copied()).collect())
        .collect();
    let n = crates.len();
    let mut closed = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let mut add = BTreeSet::new();
            for &d in &closed[i] {
                for &dd in &closed[d] {
                    if dd != i && !closed[i].contains(&dd) {
                        add.insert(dd);
                    }
                }
            }
            if !add.is_empty() {
                closed[i].extend(add);
                changed = true;
            }
        }
    }
    crates
        .into_iter()
        .zip(closed)
        .map(|((mut c, _), deps)| {
            c.deps = deps;
            c
        })
        .collect()
}

fn collect_manifests(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_manifests(root, &path, out);
        } else if name == "Cargo.toml" {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Minimal `Cargo.toml` reader: `[package] name = "..."` plus every
/// `path = "..."` inside a `[*dependencies*]` section (inline dep
/// tables included). Returns `None` for manifests without a `[package]`
/// (pure workspace roots).
fn parse_manifest(src: &str) -> Option<(String, Vec<String>)> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for line in src.lines() {
        let line = line.trim();
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = header.trim().to_string();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                if let Some(v) = quoted_value(rest) {
                    name = Some(v);
                }
            }
        }
        if section.contains("dependencies") {
            // `foo = { path = "../bar" }` or, in a `[dependencies.foo]`
            // section, a bare `path = "../bar"` line.
            if let Some(at) = line.find("path") {
                if let Some(v) = quoted_value(&line[at + "path".len()..]) {
                    deps.push(v);
                }
            }
        }
    }
    name.map(|n| (n, deps))
}

/// The first `= "..."` value in `rest`, if it starts with `=` (after
/// whitespace) — rejects e.g. `name-suffix = ...` lines.
fn quoted_value(rest: &str) -> Option<String> {
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('=')?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next().map(str::to_string)
}

/// Joins `dir` and a relative `path`, resolving `.` and `..` textually.
fn normalize(dir: &str, path: &str) -> String {
    let mut parts: Vec<&str> = dir.split('/').filter(|p| !p.is_empty()).collect();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn manifest_parsing() {
        let (name, deps) = parse_manifest(
            "[package]\nname = \"pass-core\"\n\n[dependencies]\npass-model = { path = \"../model\" }\nparking_lot = \"0.12\"\n[dependencies.pass-storage]\npath = \"../storage\"\n",
        )
        .unwrap();
        assert_eq!(name, "pass-core");
        assert_eq!(deps, vec!["../model", "../storage"]);
        assert!(parse_manifest("[workspace]\nmembers = [\"a\"]\n").is_none());
    }

    #[test]
    fn normalize_resolves_dotdot() {
        assert_eq!(normalize("crates/core", "../model"), "crates/model");
        assert_eq!(normalize("crates/core", "./sub"), "crates/core/sub");
    }

    #[test]
    fn anonymous_pool_resolves_freely() {
        let a = lex("fn caller() { helper(); }");
        let b = lex("fn helper() { leaf(); }");
        let ws = Workspace::build(
            Path::new("/nonexistent-for-test"),
            vec![("a.rs", &a), ("b.rs", &b)],
            &[],
        );
        let targets = ws.resolve(0, "helper");
        assert_eq!(targets.len(), 1);
        assert_eq!(ws.display(targets[0]), "helper");
        assert_eq!(ws.site(targets[0]).0, "b.rs");
    }

    #[test]
    fn ignore_list_blocks_resolution() {
        let a = lex("fn caller() { get(); }");
        let b = lex("fn get() {}");
        let ws = Workspace::build(
            Path::new("/nonexistent-for-test"),
            vec![("a.rs", &a), ("b.rs", &b)],
            &["get".to_string()],
        );
        assert!(ws.resolve(0, "get").is_empty());
    }

    fn run_l6(sources: &[(&str, &str)], deny: &[&str]) -> Vec<crate::rules::Finding> {
        let lexed: Vec<(String, crate::lexer::Lexed)> =
            sources.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
        let ws = Workspace::build(
            Path::new("/nonexistent-for-test"),
            lexed.iter().map(|(p, l)| (p.as_str(), l)),
            &[],
        );
        let rule = crate::config::RuleConfig {
            files: vec!["**".to_string()],
            deny: deny.iter().map(|s| s.to_string()).collect(),
            ..crate::config::RuleConfig::default()
        };
        check_l6(&rule, &ws)
    }

    #[test]
    fn l6_two_hop_reachability_with_witness() {
        let findings = run_l6(
            &[
                (
                    "pass.rs",
                    "fn commit(&self) { let order = self.publish_order.lock(); helper(); drop(order); }",
                ),
                ("a.rs", "fn helper() { persist(); }"),
                ("b.rs", "fn persist(f: &File) { f.sync_all(); }"),
            ],
            &["sync_all"],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("calling `helper`"), "{findings:?}");
        assert!(
            findings[0].message.contains("reaches `sync_all` (b.rs:1) via `helper` -> `persist`"),
            "{findings:?}"
        );
    }

    #[test]
    fn l6_ignores_calls_outside_the_section() {
        let findings = run_l6(
            &[
                (
                    "pass.rs",
                    "fn commit(&self) { let order = self.publish_order.lock(); bump(); drop(order); persist(); }",
                ),
                ("b.rs", "fn persist(f: &File) { f.sync_all(); }\nfn bump() { counter_add(); }"),
            ],
            &["sync_all"],
        );
        assert!(findings.is_empty(), "persist() after drop(order) is fine: {findings:?}");
    }

    #[test]
    fn l6_leaves_directly_denied_names_to_l2() {
        let findings = run_l6(
            &[(
                "pass.rs",
                "fn commit(&self, f: &File) { let order = self.publish_order.lock(); f.sync_all(); drop(order); }",
            )],
            &["sync_all"],
        );
        assert!(findings.is_empty(), "direct denied call is L2's finding: {findings:?}");
    }

    #[test]
    fn test_fns_are_not_callees() {
        let a = lex("fn caller() { helper(); }");
        let b = lex("#[cfg(test)]\nmod t { fn helper() {} }");
        let ws = Workspace::build(
            Path::new("/nonexistent-for-test"),
            vec![("a.rs", &a), ("b.rs", &b)],
            &[],
        );
        assert!(ws.resolve(0, "helper").is_empty());
    }
}
