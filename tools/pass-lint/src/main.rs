//! CLI for the PASS invariant checker.
//!
//! ```text
//! pass-lint --workspace [--root DIR] [--config PATH]
//!           [--json PATH|-] [--sarif PATH] [--audit-waivers]
//! ```
//!
//! `--json -` replaces the human-readable report on stdout with the
//! versioned JSON report; `--json PATH`/`--sarif PATH` write the
//! machine-readable reports alongside the normal output. Exit codes:
//! `0` clean, `1` findings, `2` usage/config/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut workspace = false;
    let mut json_out: Option<String> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut options = pass_lint::RunOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--audit-waivers" => options.audit_waivers = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage("--config needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(p),
                None => return usage("--json needs a path (or `-` for stdout)"),
            },
            "--sarif" => match args.next() {
                Some(p) => sarif_out = Some(PathBuf::from(p)),
                None => return usage("--sarif needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "pass-lint --workspace [--root DIR] [--config PATH] [--json PATH|-] [--sarif PATH] [--audit-waivers]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass-lint currently only runs whole trees: pass --workspace");
    }

    let config_path = config_path.unwrap_or_else(|| root.join("invariants.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pass-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match pass_lint::config::Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pass-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match pass_lint::run(&root, &config, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pass-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &sarif_out {
        if let Err(e) = std::fs::write(path, pass_lint::sarif::to_sarif(&report)) {
            eprintln!("pass-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match json_out.as_deref() {
        Some("-") => print!("{}", pass_lint::sarif::to_json(&report)),
        Some(path) => {
            if let Err(e) = std::fs::write(path, pass_lint::sarif::to_json(&report)) {
                eprintln!("pass-lint: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => {}
    }
    if json_out.as_deref() != Some("-") {
        for finding in &report.findings {
            println!("{finding}");
        }
        for (file, rule, line) in &report.waivers {
            println!("note: waiver honored at {file}:{line} [{rule}]");
        }
        println!(
            "pass-lint: {} file(s) checked, {} finding(s), {} waiver(s) honored",
            report.files_checked,
            report.findings.len(),
            report.waivers.len()
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("pass-lint: {message}");
    eprintln!(
        "usage: pass-lint --workspace [--root DIR] [--config PATH] [--json PATH|-] [--sarif PATH] [--audit-waivers]"
    );
    ExitCode::from(2)
}
