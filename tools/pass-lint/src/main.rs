//! CLI for the PASS invariant checker.
//!
//! ```text
//! pass-lint --workspace [--root DIR] [--config PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/config/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage("--config needs a path"),
            },
            "--help" | "-h" => {
                println!("pass-lint --workspace [--root DIR] [--config PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass-lint currently only runs whole trees: pass --workspace");
    }

    let config_path = config_path.unwrap_or_else(|| root.join("invariants.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pass-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match pass_lint::config::Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pass-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match pass_lint::run(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pass-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    for (file, rule, line) in &report.waivers {
        println!("note: waiver honored at {file}:{line} [{rule}]");
    }
    println!(
        "pass-lint: {} file(s) checked, {} finding(s), {} waiver(s) honored",
        report.files_checked,
        report.findings.len(),
        report.waivers.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("pass-lint: {message}");
    eprintln!("usage: pass-lint --workspace [--root DIR] [--config PATH]");
    ExitCode::from(2)
}
