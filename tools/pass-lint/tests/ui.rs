//! ui-style fixture tests: every directory under `tests/ui/` is a tiny
//! source tree with its own `invariants.toml` and an `expected.txt` of
//! diagnostics the binary must emit. Empty (or note-only) expectations
//! mean the fixture must pass cleanly — so each rule is pinned from
//! both sides: it fires on its `*_fail` fixture and stays silent on its
//! `*_pass` twin.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code asserts by panicking

use std::path::Path;
use std::process::Command;

fn run_fixture(dir: &Path) -> (String, i32) {
    // A fixture may carry extra CLI flags (e.g. `--audit-waivers`) in an
    // optional args.txt, one or more whitespace-separated arguments.
    let extra = std::fs::read_to_string(dir.join("args.txt")).unwrap_or_default();
    let out = Command::new(env!("CARGO_BIN_EXE_pass-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(dir)
        .arg("--config")
        .arg(dir.join("invariants.toml"))
        .args(extra.split_whitespace())
        .output()
        .expect("running pass-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.is_empty(), "{}: unexpected stderr:\n{stderr}", dir.display());
    (stdout, out.status.code().expect("exit code"))
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let ui = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ui");
    let mut cases: Vec<_> = std::fs::read_dir(&ui)
        .expect("tests/ui exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(cases.len() >= 20, "expected the full fixture set, found {}", cases.len());

    for dir in cases {
        let name = dir.file_name().unwrap().to_string_lossy().into_owned();
        let expected = std::fs::read_to_string(dir.join("expected.txt"))
            .unwrap_or_else(|e| panic!("{name}: missing expected.txt: {e}"));
        let expected_lines: Vec<&str> =
            expected.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
        let expects_findings = expected_lines.iter().any(|l| !l.starts_with("note:"));

        let (stdout, code) = run_fixture(&dir);
        for line in &expected_lines {
            assert!(
                stdout.lines().any(|out| out.trim() == *line),
                "{name}: missing diagnostic:\n  want: {line}\n  got:\n{stdout}"
            );
        }
        if expects_findings {
            assert_eq!(code, 1, "{name}: findings must fail the run:\n{stdout}");
            // Exactly the expected findings — no extras. Finding lines
            // are `file:line: [rule] message` (note lines put the rule
            // tag after a space, not a `: `, so they don't match).
            let finding_count = stdout.lines().filter(|l| l.contains(": [")).count();
            let expected_count = expected_lines.iter().filter(|l| !l.starts_with("note:")).count();
            assert_eq!(
                finding_count, expected_count,
                "{name}: extra findings beyond expected.txt:\n{stdout}"
            );
        } else {
            assert_eq!(code, 0, "{name}: clean fixture must exit 0:\n{stdout}");
        }
    }
}

/// The `--json -` report is pinned byte-for-byte against a snapshot so
/// schema drift (renamed fields, reordered keys) fails loudly — bump
/// `schema` and the snapshot together.
#[test]
fn json_snapshot_pins_the_output_schema() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ui/l8_fail");
    let out = Command::new(env!("CARGO_BIN_EXE_pass-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(&dir)
        .arg("--config")
        .arg(dir.join("invariants.toml"))
        .arg("--json")
        .arg("-")
        .output()
        .expect("running pass-lint");
    assert_eq!(out.status.code(), Some(1), "l8_fail has findings");
    let got = String::from_utf8_lossy(&out.stdout);
    let want = std::fs::read_to_string(dir.join("expected.json")).expect("snapshot exists");
    assert_eq!(got, want, "JSON report drifted from the schema snapshot");
}

/// The binary's exit contract, pinned: 2 for unusable configs, not 0/1.
#[test]
fn bad_config_is_exit_code_2() {
    let dir = std::env::temp_dir().join(format!("pass-lint-badcfg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("invariants.toml"), "[rules.l1]\nfils = [\"x\"]\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pass-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(&dir)
        .arg("--config")
        .arg(dir.join("invariants.toml"))
        .output()
        .expect("running pass-lint");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
