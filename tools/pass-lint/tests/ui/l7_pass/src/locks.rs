//! Both paths acquire alpha before beta — consistent with the order.
fn forward(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}

fn also_forward(&self) {
    let a = self.alpha.lock();
    self.touch();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
