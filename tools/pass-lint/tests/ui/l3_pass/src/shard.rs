//! Locks taken only through the helpers; other uses of the field
//! (len, construction) are free.
impl Sharding {
    fn lock_one(&self, shard: usize) -> Guard {
        self.locks[shard].lock()
    }
    fn lock_many(&self, shards: &[usize]) -> Vec<Guard> {
        shards.iter().map(|&s| self.locks[s].lock()).collect()
    }
    fn count(&self) -> usize {
        self.locks.len()
    }
}
