//! Publish under the lock calls a helper that fsyncs two hops away.
fn commit(&self) {
    let order = self.publish_order.lock();
    self.publish(version);
    persist_index(&self.dir);
    drop(order);
}
