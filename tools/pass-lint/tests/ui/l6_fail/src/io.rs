//! Helpers the publish path reaches transitively.
fn persist_index(dir: &Path) {
    write_snapshot(dir);
}

fn write_snapshot(dir: &Path) {
    let file = open_index(dir);
    file.sync_all();
}
