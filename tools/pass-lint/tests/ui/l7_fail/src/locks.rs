//! Two paths acquire the same pair of locks in opposite orders.
fn forward(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}

fn backward(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    drop(a);
    drop(b);
}
