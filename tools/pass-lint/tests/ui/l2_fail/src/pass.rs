//! Storage work smuggled inside the publish_order section.
fn commit(&self) {
    let order = self.publish_order.lock();
    self.store.apply(batch);
    let bytes = record.encode_to_vec();
    self.wal.sync_data();
    self.publish(bytes);
    drop(order);
}

fn leaky(&self) {
    let order = self.publish_order.lock();
    self.publish(x);
}
