//! A reasoned waiver silences the finding and is counted.
fn constant_table(&self, i: usize) -> u8 {
    // pass-lint: allow(l1, reason="i is a compile-time constant index into a fixed-size table")
    self.table[i]
}
