//! Ad-hoc shard lock acquisition outside the sanctioned helpers.
impl Sharding {
    fn sneaky_commit(&self, a: usize, b: usize) {
        let ga = self.locks[a].lock();
        let gb = self.locks[b].lock();
        work(ga, gb);
    }
}
