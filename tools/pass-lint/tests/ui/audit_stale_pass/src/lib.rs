//! A live waiver suppresses a real finding and is not stale.
fn table_probe(&self, i: usize) -> u8 {
    // pass-lint: allow(l1, reason="index is masked to the table size by the caller")
    self.table[i]
}
