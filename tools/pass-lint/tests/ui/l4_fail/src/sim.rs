//! Wall-clock reads inside the simulator.
fn step(&mut self) {
    let started = std::time::Instant::now();
    let wall = SystemTime::now();
    self.advance(started, wall);
}
