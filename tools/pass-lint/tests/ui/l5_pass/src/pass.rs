//! The same function, documented.

/// Attaches an annotation.
///
/// Lock order: one shard commit lock, then the publish write lock.
pub fn annotate(&self, id: Id) {
    let _commit = self.sharding.lock_one(self.sharding.shard_of(id));
    self.publish(id);
}

/// No triggers in the body: no note required.
pub fn read_only(&self) -> usize {
    self.state.read().len()
}
