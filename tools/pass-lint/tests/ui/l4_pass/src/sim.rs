//! Virtual time only; `Instant` as a *type* (e.g. stored deadlines)
//! stays legal, and tests may read the wall clock.
fn step(&mut self, clock: &VirtualClock) {
    let now = clock.now();
    self.advance(now);
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
