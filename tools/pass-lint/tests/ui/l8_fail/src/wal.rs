//! A WAL that drops flush and sync errors on the floor.
fn append(&mut self, rec: &[u8]) -> io::Result<()> {
    self.file.write_all(rec)?;
    let _ = self.file.flush();
    self.file.sync_data().ok();
    Ok(())
}

fn append_header(&mut self, hdr: &[u8]) -> io::Result<()> {
    self.file.write(hdr)?;
    Ok(())
}
