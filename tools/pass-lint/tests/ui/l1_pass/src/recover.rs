//! The same path written honestly: errors, asserts, and test-only
//! unwraps are all fine.
fn recover(buf: &[u8]) -> Option<u32> {
    debug_assert!(buf.len() < MAX, "caller bounds the buffer");
    let len = read_len(buf)?;
    let first = *buf.get(0)?;
    let arr: [u8; 2] = [1, 2]; // array literal, not indexing
    Some(len + u32::from(first) + u32::from(arr.len() as u8))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_recover() {
        let buf = vec![1, 2, 3];
        assert_eq!(buf[0], 1);
        recover(&buf).unwrap();
    }
}
