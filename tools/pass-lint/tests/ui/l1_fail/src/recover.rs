//! A recovery path that panics on corrupt bytes — every construct here
//! is an l1 finding.
fn recover(buf: &[u8]) -> u32 {
    let len = read_len(buf).unwrap();
    let crc = read_crc(buf).expect("valid header");
    let first = buf[0];
    len + crc + u32::from(first)
}
