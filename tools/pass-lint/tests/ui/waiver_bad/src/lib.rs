//! A waiver with no reason is itself a finding, and does not waive.
fn constant_table(&self, i: usize) -> u8 {
    // pass-lint: allow(l1)
    self.table[i]
}
