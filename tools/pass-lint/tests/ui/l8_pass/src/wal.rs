//! Every I/O result on the crash path is propagated or inspected.
fn append(&mut self, rec: &[u8]) -> io::Result<()> {
    self.file.write_all(rec)?;
    self.file.flush()?;
    self.file.sync_data()?;
    let n = self.file.write(rec)?;
    ensure_full_write(n, rec.len())?;
    Ok(())
}
