//! A commit-path function with no lock-order documentation.

/// Attaches an annotation.
pub fn annotate(&self, id: Id) {
    let _commit = self.sharding.lock_one(self.sharding.shard_of(id));
    self.publish(id);
}
