//! The section as it should be: publish + broadcast only; the apply
//! and the encoding happen before the lock.
fn commit(&self) {
    self.store.apply(batch);
    let delta = IndexDelta::prepare(&records);
    let order = self.publish_order.lock();
    let version = self.publish(delta);
    self.hub.broadcast(version, make_logs);
    drop(order);
}
