//! A waiver left behind after the indexing it once silenced was fixed.
fn first_byte(&self, buf: &[u8]) -> Option<u8> {
    // pass-lint: allow(l1, reason="length is checked by the caller")
    buf.first().copied()
}
