//! The same helper called outside the section is not a finding.
fn commit(&self) {
    let order = self.publish_order.lock();
    self.publish(version);
    drop(order);
    persist_index(&self.dir);
}
